"""Unit tests for replacement policies."""

import pytest

from repro.cache.replacement import FIFOPolicy, LRUPolicy, make_policy, policy_factory


class TestLRU:
    def test_insert_and_contains(self):
        p = LRUPolicy()
        p.insert(10)
        assert 10 in p
        assert 11 not in p
        assert len(p) == 1

    def test_evicts_least_recent(self):
        p = LRUPolicy()
        for line in (1, 2, 3):
            p.insert(line)
        assert p.victim() == 1
        assert p.evict() == 1
        assert len(p) == 2

    def test_touch_moves_to_mru(self):
        p = LRUPolicy()
        for line in (1, 2, 3):
            p.insert(line)
        p.touch(1)
        assert p.evict() == 2

    def test_remove_specific_line(self):
        p = LRUPolicy()
        p.insert(1)
        p.insert(2)
        assert p.remove(1)
        assert not p.remove(1)
        assert p.evict() == 2

    def test_lines_iterates_lru_first(self):
        p = LRUPolicy()
        for line in (5, 6, 7):
            p.insert(line)
        p.touch(5)
        assert list(p.lines()) == [6, 7, 5]


class TestFIFO:
    def test_evicts_in_insertion_order_despite_touches(self):
        p = FIFOPolicy()
        for line in (1, 2, 3):
            p.insert(line)
        p.touch(1)  # FIFO ignores recency
        assert p.victim() == 1
        assert p.evict() == 1
        assert p.evict() == 2

    def test_remove_is_lazy_but_correct(self):
        p = FIFOPolicy()
        for line in (1, 2, 3):
            p.insert(line)
        assert p.remove(2)
        assert 2 not in p
        assert len(p) == 2
        assert p.evict() == 1
        assert p.evict() == 3

    def test_remove_head_then_victim_skips_stale(self):
        p = FIFOPolicy()
        p.insert(1)
        p.insert(2)
        p.remove(1)
        assert p.victim() == 2


class TestFactory:
    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("fifo"), FIFOPolicy)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru")

    def test_policy_factory_returns_class(self):
        assert policy_factory("lru") is LRUPolicy
        with pytest.raises(ValueError):
            policy_factory("bad")
