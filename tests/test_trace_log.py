"""Tests for the request-timeline trace."""

import pytest

from repro.core.designs import DesignSpec
from repro.gpu.request import AccessKind
from repro.sim.system import GPUSystem
from repro.sim.trace_log import RequestTrace


@pytest.fixture
def traced_run(tiny_config, shared_profile):
    system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4), tiny_config)
    trace = RequestTrace.attach(system, sample_every=1)
    res = system.run()
    return trace, res


class TestTrace:
    def test_records_every_load(self, traced_run):
        trace, res = traced_run
        assert len(trace) == res.loads

    def test_latencies_match_result_mean(self, traced_run):
        trace, res = traced_run
        lats = trace.latencies()
        assert sum(lats) / len(lats) == pytest.approx(res.load_rtt_mean, rel=1e-9)

    def test_percentiles_monotone(self, traced_run):
        trace, _ = traced_run
        p = trace.percentiles([0.1, 0.5, 0.9, 0.99])
        assert p[0.1] <= p[0.5] <= p[0.9] <= p[0.99]
        assert p[0.99] >= trace.percentiles([1.0])[1.0] * 0.5

    def test_served_at_accounting(self, traced_run):
        trace, res = traced_run
        counts = trace.served_at_counts()
        assert sum(counts.values()) == len(trace)
        assert counts["L1"] > 0  # shared profile gets DC-L1 hits

    def test_sampling_reduces_volume(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.baseline(), tiny_config)
        trace = RequestTrace.attach(system, sample_every=8)
        res = system.run()
        assert len(trace) == res.loads // 8

    def test_store_tracing_optional(self, tiny_config, streaming_profile):
        system = GPUSystem(streaming_profile, DesignSpec.baseline(), tiny_config)
        trace = RequestTrace.attach(
            system, kinds=(AccessKind.LOAD, AccessKind.STORE)
        )
        res = system.run()
        assert len(trace) == res.loads + res.stores

    def test_csv_round_trip(self, traced_run, tmp_path):
        trace, _ = traced_run
        path = trace.to_csv(tmp_path / "trace.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("core,line,kind")
        assert len(lines) == len(trace) + 1

    def test_empty_trace_percentiles_raise(self):
        with pytest.raises(ValueError):
            RequestTrace().percentiles([0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestTrace(sample_every=0)
        t = RequestTrace()
        t.records.append(type("R", (), {"latency": 1.0})())
        with pytest.raises(ValueError):
            t.percentiles([1.5])

    def test_run_still_audits_clean(self, tiny_config, shared_profile):
        from repro.sim.validation import audit

        system = GPUSystem(shared_profile, DesignSpec.shared(8), tiny_config)
        RequestTrace.attach(system)
        system.run()
        assert audit(system) == []
