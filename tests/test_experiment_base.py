"""Tests for experiment-report rendering and runner configuration."""

import warnings

import pytest

import repro.experiments.base as base
from repro.experiments.base import (
    BASELINE,
    ExperimentReport,
    Runner,
    default_runner,
    env_jobs,
    env_scale,
)
from repro.sim.config import SimConfig


class TestEnvScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0
        assert env_scale(0.3) == 0.3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert env_scale() == 0.25

    def test_garbage_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.2.5")
        with pytest.warns(RuntimeWarning, match="REPRO_SCALE='0.2.5'"):
            assert env_scale(0.7) == 0.7

    def test_valid_value_does_not_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_scale() == 0.25


class TestEnvJobs:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert env_jobs() == 1
        assert env_jobs(4) == 4

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert env_jobs() == 8

    def test_garbage_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS='many'"):
            assert env_jobs() == 1

    def test_clamped_to_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert env_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "-3")
        assert env_jobs() == 1


class TestDefaultRunner:
    def test_cached_between_calls(self, monkeypatch):
        monkeypatch.setattr(base, "_DEFAULT", None)
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert default_runner() is default_runner()

    def test_rebuilt_when_env_scale_changes(self, monkeypatch):
        monkeypatch.setattr(base, "_DEFAULT", None)
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        stale = default_runner()
        assert stale.config.scale == 0.25
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        fresh = default_runner()
        assert fresh is not stale
        assert fresh.config.scale == 0.5
        # Stable again at the new scale.
        assert default_runner() is fresh


class TestExperimentReport:
    def make(self):
        return ExperimentReport(
            experiment="figX",
            title="demo",
            columns=["app", "speedup"],
            rows=[{"app": "a", "speedup": 1.5}, {"app": "b", "speedup": 0.9}],
            summary={"mean": 1.2},
            paper={"mean": 1.3},
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "[figX] demo" in text
        assert "app" in text and "speedup" in text
        assert "measured: mean=1.200" in text
        assert "paper:    mean=1.300" in text

    def test_render_without_summary(self):
        rep = ExperimentReport("e", "t", ["c"], rows=[{"c": 1}])
        text = rep.render()
        assert "measured:" not in text
        assert "paper:" not in text

    def test_render_non_float_values(self):
        """Summary/paper values that are not floats (labels, None, ...)
        must render, not crash the report."""
        rep = ExperimentReport(
            "e", "t", ["c"], rows=[{"c": 1}],
            summary={"best_app": "T-AlexNet", "speedup": 1.5, "count": 3},
            paper={"best_app": "T-AlexNet", "missing": None},
        )
        text = rep.render()
        assert "best_app=T-AlexNet" in text
        assert "speedup=1.500" in text
        assert "count=3.000" in text
        assert "missing=None" in text


class TestRunnerOverrides:
    def test_overrides_reach_config(self):
        runner = Runner(SimConfig(scale=0.05))
        a = runner.run("C-BLK", BASELINE)
        b = runner.run("C-BLK", BASELINE, overrides={"l1_policy": "fifo"})
        assert runner.sims_run == 2
        assert a is not b
        # Same overrides hit the cache.
        c = runner.run("C-BLK", BASELINE, overrides={"l1_policy": "fifo"})
        assert c is b

    def test_bad_override_key_raises(self):
        runner = Runner(SimConfig(scale=0.05))
        with pytest.raises(TypeError):
            runner.run("C-BLK", BASELINE, overrides={"not_a_field": 1})
