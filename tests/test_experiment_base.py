"""Tests for experiment-report rendering and runner configuration."""

import pytest

from repro.experiments.base import BASELINE, ExperimentReport, Runner, env_scale
from repro.sim.config import SimConfig


class TestEnvScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0
        assert env_scale(0.3) == 0.3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert env_scale() == 0.25

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert env_scale(0.7) == 0.7


class TestExperimentReport:
    def make(self):
        return ExperimentReport(
            experiment="figX",
            title="demo",
            columns=["app", "speedup"],
            rows=[{"app": "a", "speedup": 1.5}, {"app": "b", "speedup": 0.9}],
            summary={"mean": 1.2},
            paper={"mean": 1.3},
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "[figX] demo" in text
        assert "app" in text and "speedup" in text
        assert "measured: mean=1.200" in text
        assert "paper:    mean=1.300" in text

    def test_render_without_summary(self):
        rep = ExperimentReport("e", "t", ["c"], rows=[{"c": 1}])
        text = rep.render()
        assert "measured:" not in text
        assert "paper:" not in text


class TestRunnerOverrides:
    def test_overrides_reach_config(self):
        runner = Runner(SimConfig(scale=0.05))
        a = runner.run("C-BLK", BASELINE)
        b = runner.run("C-BLK", BASELINE, overrides={"l1_policy": "fifo"})
        assert runner.sims_run == 2
        assert a is not b
        # Same overrides hit the cache.
        c = runner.run("C-BLK", BASELINE, overrides={"l1_policy": "fifo"})
        assert c is b

    def test_bad_override_key_raises(self):
        runner = Runner(SimConfig(scale=0.05))
        with pytest.raises(TypeError):
            runner.run("C-BLK", BASELINE, overrides={"not_a_field": 1})
