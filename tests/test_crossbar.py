"""Unit tests for the crossbar timing model."""

import pytest

from repro.noc.crossbar import Crossbar


class TestTraversal:
    def test_latency_plus_serialization(self):
        xb = Crossbar("x", 4, 4, cycles_per_flit=2.0, latency=10.0)
        # 1 flit: 2 cycles on the input port, 2 on the output, +10 latency.
        assert xb.traverse(0.0, 0, 0, 1) == 14.0

    def test_multi_flit_serialization(self):
        xb = Crossbar("x", 4, 4, cycles_per_flit=2.0, latency=10.0)
        assert xb.traverse(0.0, 0, 0, 4) == 26.0  # 8 in + 8 out + 10

    def test_output_port_contention(self):
        xb = Crossbar("x", 4, 4, cycles_per_flit=2.0, latency=0.0)
        t0 = xb.traverse(0.0, 0, 3, 1)
        t1 = xb.traverse(0.0, 1, 3, 1)  # different input, same output
        assert t0 == 4.0
        assert t1 == 6.0  # queued behind t0 on the output port

    def test_input_port_contention(self):
        xb = Crossbar("x", 4, 4, cycles_per_flit=2.0, latency=0.0)
        xb.traverse(0.0, 0, 0, 1)
        t = xb.traverse(0.0, 0, 1, 1)  # same input, different output
        assert t == 6.0

    def test_disjoint_ports_are_parallel(self):
        xb = Crossbar("x", 4, 4, cycles_per_flit=2.0, latency=0.0)
        t0 = xb.traverse(0.0, 0, 0, 1)
        t1 = xb.traverse(0.0, 1, 1, 1)
        assert t0 == t1 == 4.0

    def test_flit_hops_accumulate(self):
        xb = Crossbar("x", 2, 2, 1.0, 0.0)
        xb.traverse(0.0, 0, 0, 3)
        xb.inject_out(0.0, 1, 2)
        assert xb.flit_hops == 5


class TestFrequencyScaling:
    def test_boosted_crossbar_halves_service(self):
        slow = Crossbar("s", 2, 2, cycles_per_flit=2.0, latency=8.0)
        fast = Crossbar("f", 2, 2, cycles_per_flit=1.0, latency=4.0)
        assert slow.traverse(0.0, 0, 0, 2) == 16.0
        assert fast.traverse(0.0, 0, 0, 2) == 8.0


class TestUtilization:
    def test_max_out_utilization(self):
        xb = Crossbar("x", 2, 2, 1.0, 0.0)
        xb.traverse(0.0, 0, 1, 4)
        assert xb.max_out_utilization(8.0) == pytest.approx(0.5)
        assert xb.max_in_utilization(8.0) == pytest.approx(0.5)

    def test_reset(self):
        xb = Crossbar("x", 2, 2, 1.0, 0.0)
        xb.traverse(0.0, 0, 0, 1)
        xb.reset()
        assert xb.flit_hops == 0
        assert xb.max_out_utilization(10.0) == 0.0


class TestValidation:
    def test_positive_ports(self):
        with pytest.raises(ValueError):
            Crossbar("x", 0, 2, 1.0, 0.0)

    def test_positive_service(self):
        with pytest.raises(ValueError):
            Crossbar("x", 2, 2, 0.0, 0.0)
