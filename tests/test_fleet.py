"""Tests for SimFleet: the persistent warm worker pool, the per-worker
stream cache, slim cache-key result transport, and adaptive scheduling.

The load-bearing property throughout is *identity*: fleet on/off, fork
vs spawn, cold vs warm pools, slim vs full transport are pure
orchestration choices — every path must produce bit-identical
``result_fingerprints()``.
"""

from __future__ import annotations

import multiprocessing
import warnings

import numpy as np
import pytest

from repro.experiments.base import BASELINE, PROPOSED_DESIGNS, Runner
from repro.sim.config import SimConfig
from repro.sim.fleet import (
    CHUNK_ENV,
    FLEET_ENV,
    SLIM_TAG,
    STREAM_CACHE_ENV,
    WorkerFleet,
    _STREAM_CACHE,
    adaptive_chunksize,
    chunksize_from_env,
    estimate_work,
    fleet_env_enabled,
    get_fleet,
    materialize_workload,
    order_by_estimated_work,
    shutdown_fleet,
    stream_cache_cap_from_env,
)
from repro.sim.store import DiskResultCache, sim_cache_key
from repro.sim.validation import audit_slim_transport
from repro.workloads.generator import generate_workload
from repro.workloads.suite import get_app

SCALE = 0.05
BOOST = PROPOSED_DESIGNS[-1]
GRID = [
    ("C-BLK", BASELINE), ("C-BLK", BOOST),
    ("T-AlexNet", BASELINE), ("T-AlexNet", BOOST),
]


def fresh_runner(**kwargs) -> Runner:
    kwargs.setdefault("cache", False)
    return Runner(SimConfig(scale=SCALE), **kwargs)


def sweep(runner: Runner, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("par_min_points", 2)
    return runner.run_many(GRID, **kwargs)


# ------------------------------------------------------------- scheduling


class TestScheduling:
    def test_adaptive_chunksize_bounds(self):
        assert adaptive_chunksize(0, 4) == 1
        assert adaptive_chunksize(1, 4) == 1
        assert adaptive_chunksize(24, 4) == 2      # ~4 waves of 4 workers
        assert adaptive_chunksize(24, 0) == 1      # degenerate width
        assert adaptive_chunksize(10_000, 2) == 8  # hard cap

    def test_order_by_estimated_work_largest_first(self):
        runner = fresh_runner()
        points = runner.resolve_points(GRID)
        ordered = order_by_estimated_work(points)
        costs = [estimate_work(p) for p in ordered]
        assert costs == sorted(costs, reverse=True)
        assert sorted(map(id, ordered)) == sorted(map(id, points))

    def test_order_is_deterministic_on_ties(self):
        runner = fresh_runner()
        points = runner.resolve_points([("C-BLK", BASELINE), ("C-BLK", BOOST)])
        # Same profile and scale -> identical estimates; submission order
        # must break the tie.
        assert order_by_estimated_work(points) == list(points)


# ----------------------------------------------------------- env resolvers


class TestEnvResolvers:
    def test_fleet_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(FLEET_ENV, raising=False)
        assert fleet_env_enabled() is True
        monkeypatch.setenv(FLEET_ENV, "0")
        assert fleet_env_enabled() is False
        monkeypatch.setenv(FLEET_ENV, "1")
        assert fleet_env_enabled() is True

    def test_chunksize_malformed_warns(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "banana")
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert chunksize_from_env() is None
        monkeypatch.setenv(CHUNK_ENV, "-3")
        assert chunksize_from_env() == 1  # clamped
        monkeypatch.setenv(CHUNK_ENV, "5")
        assert chunksize_from_env() == 5

    def test_stream_cache_cap(self, monkeypatch):
        monkeypatch.delenv(STREAM_CACHE_ENV, raising=False)
        assert stream_cache_cap_from_env() == 8
        monkeypatch.setenv(STREAM_CACHE_ENV, "0")
        assert stream_cache_cap_from_env() == 0
        monkeypatch.setenv(STREAM_CACHE_ENV, "oops")
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert stream_cache_cap_from_env() == 8


# ------------------------------------------------------- stream cache


class TestStreamCache:
    def setup_method(self):
        _STREAM_CACHE.clear()

    def teardown_method(self):
        _STREAM_CACHE.clear()

    def test_hit_is_bit_identical_to_fresh_generation(self):
        prof = get_app("C-BLK")
        cached = materialize_workload(prof, SCALE)
        again = materialize_workload(prof, SCALE)
        assert again is cached  # LRU hit, not a regeneration
        fresh = generate_workload(prof, SCALE)
        assert len(fresh.streams) == len(cached.streams)
        for a, b in zip(fresh.streams, cached.streams):
            assert np.array_equal(a.lines, b.lines)
            assert np.array_equal(a.kinds, b.kinds)

    def test_distinct_profiles_do_not_contaminate(self):
        a = materialize_workload(get_app("C-BLK"), SCALE)
        b = materialize_workload(get_app("T-AlexNet"), SCALE)
        assert len(_STREAM_CACHE) == 2
        assert a.profile.name == "C-BLK"
        assert b.profile.name == "T-AlexNet"
        # A's entry is untouched by B's materialization.
        assert materialize_workload(get_app("C-BLK"), SCALE) is a

    def test_scale_is_part_of_the_key(self):
        prof = get_app("C-BLK")
        a = materialize_workload(prof, SCALE)
        b = materialize_workload(prof, SCALE * 2)
        assert a is not b
        assert len(_STREAM_CACHE) == 2

    def test_cap_zero_disables_caching(self, monkeypatch):
        monkeypatch.setenv(STREAM_CACHE_ENV, "0")
        prof = get_app("C-BLK")
        a = materialize_workload(prof, SCALE)
        b = materialize_workload(prof, SCALE)
        assert a is not b
        assert len(_STREAM_CACHE) == 0

    def test_lru_eviction(self, monkeypatch):
        monkeypatch.setenv(STREAM_CACHE_ENV, "1")
        prof = get_app("C-BLK")
        a = materialize_workload(prof, SCALE)
        materialize_workload(get_app("T-AlexNet"), SCALE)  # evicts a
        assert len(_STREAM_CACHE) == 1
        assert materialize_workload(prof, SCALE) is not a


# --------------------------------------------------------- the fleet itself


class TestWorkerFleet:
    def test_cold_then_warm_acquire(self):
        fleet = WorkerFleet()
        try:
            pool = fleet.acquire(1)
            assert fleet.cold_starts == 1
            assert fleet.warm_acquires == 0
            assert fleet.spinup_wall_s > 0
            assert fleet.acquire(1) is pool
            assert fleet.warm_acquires == 1
        finally:
            fleet.shutdown()
        assert fleet.stats()["live_pools"] == 0

    def test_distinct_widths_get_distinct_pools(self):
        fleet = WorkerFleet()
        try:
            assert fleet.acquire(1) is not fleet.acquire(2)
            assert fleet.cold_starts == 2
        finally:
            fleet.shutdown()

    def test_invalidate_forces_recreation(self):
        fleet = WorkerFleet()
        try:
            pool = fleet.acquire(1)
            fleet.invalidate(1)
            assert fleet.acquire(1) is not pool
            assert fleet.cold_starts == 2
        finally:
            fleet.shutdown()

    def test_global_fleet_is_a_singleton(self):
        assert get_fleet() is get_fleet()
        shutdown_fleet()
        shutdown_fleet()  # idempotent


# ----------------------------------------------- identity across all paths


class TestFleetIdentity:
    def test_serial_vs_fleet_fork_vs_warm_reuse(self):
        serial = fresh_runner()
        serial.run_many(GRID, jobs=1)
        reference = serial.result_fingerprints()

        shutdown_fleet()
        cold = fresh_runner()
        sweep(cold)
        assert cold.sweep_paths.get("parallel[fleet:fork]") == 1
        assert cold.fleet_stats.get("cold_starts") == 1
        assert cold.result_fingerprints() == reference

        warm = fresh_runner()
        sweep(warm)
        assert warm.fleet_stats.get("warm_acquires") == 1
        assert not warm.fleet_stats.get("cold_starts")
        assert warm.result_fingerprints() == reference
        assert "[fleet:" in warm.throughput_summary()

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_fleet_spawn_identical_to_serial(self):
        serial = fresh_runner()
        serial.run_many(GRID, jobs=1)
        spawned = fresh_runner()
        sweep(spawned, mp_context="spawn")
        assert spawned.sweep_paths.get("parallel[fleet:spawn]") == 1
        assert spawned.result_fingerprints() == serial.result_fingerprints()

    def test_fleet_env_opt_out_uses_legacy_pool(self, monkeypatch):
        monkeypatch.setenv(FLEET_ENV, "0")
        serial = fresh_runner()
        serial.run_many(GRID, jobs=1)
        legacy = fresh_runner()
        sweep(legacy)
        assert legacy.sweep_paths.get("parallel[fork]") == 1
        assert not legacy.fleet_stats
        assert legacy.result_fingerprints() == serial.result_fingerprints()

    def test_fleet_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FLEET_ENV, "1")
        runner = fresh_runner(fleet=False)
        sweep(runner)
        assert runner.sweep_paths.get("parallel[fork]") == 1

    def test_explicit_chunksize_is_identity_neutral(self, monkeypatch):
        serial = fresh_runner()
        serial.run_many(GRID, jobs=1)
        monkeypatch.setenv(CHUNK_ENV, "3")
        chunked = fresh_runner()
        sweep(chunked)
        assert chunked.result_fingerprints() == serial.result_fingerprints()


# ------------------------------------------------------- slim transport


class TestSlimTransport:
    def test_slim_equals_full_pickle_transport(self, tmp_path):
        serial = fresh_runner()
        serial.run_many(GRID, jobs=1)
        reference = serial.result_fingerprints()

        # No disk cache: workers pickle full SimResults back.
        full = fresh_runner()
        sweep(full)
        assert full.result_fingerprints() == reference

        # Disk cache: workers persist, only cache keys cross the pipe.
        slim = fresh_runner(cache=str(tmp_path / "cache"))
        sweep(slim)
        assert slim.result_fingerprints() == reference
        assert slim.sims_run == len(GRID)

    def test_workers_persist_results_themselves(self, tmp_path):
        cache = DiskResultCache(tmp_path / "cache")
        runner = fresh_runner(cache=cache)
        sweep(runner)
        assert len(cache) == len(GRID)
        for point in runner.resolve_points(GRID):
            assert cache.get(sim_cache_key(*point)) is not None

    def test_slim_results_carry_observability(self, tmp_path):
        runner = fresh_runner(cache=str(tmp_path / "cache"))
        results = sweep(runner)
        # wall_time_s/events_per_s are excluded from the disk payload, so
        # only the slim tuple can deliver them; _store_miss accounting
        # must still see real values.
        assert all(r.wall_time_s > 0 for r in results)
        assert all(r.events_per_s > 0 for r in results)
        assert runner.sim_wall_s > 0
        assert runner.sim_events > 0

    def test_rehydration_failure_falls_back_to_resimulation(self, tmp_path):
        serial = fresh_runner()
        serial.run_many(GRID, jobs=1)

        class VanishingCache(DiskResultCache):
            def get(self, key):  # parent-side read-back always misses
                self.misses += 1
                return None

        runner = fresh_runner(cache=VanishingCache(tmp_path / "cache"))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            sweep(runner)
        assert runner.result_fingerprints() == serial.result_fingerprints()


class TestAuditSlimTransport:
    def test_clean(self):
        res = fresh_runner().run("C-BLK", BASELINE)
        sha = res.fingerprint_sha256()
        assert audit_slim_transport("k1", "k1", sha, res) == []

    def test_key_mismatch(self):
        res = fresh_runner().run("C-BLK", BASELINE)
        problems = audit_slim_transport(
            "expected", "other", res.fingerprint_sha256(), res
        )
        assert any("key" in p for p in problems)

    def test_missing_rehydration(self):
        problems = audit_slim_transport("k1", "k1", "deadbeef", None)
        assert any("no readable cache entry" in p for p in problems)

    def test_fingerprint_mismatch(self):
        res = fresh_runner().run("C-BLK", BASELINE)
        problems = audit_slim_transport("k1", "k1", "0" * 64, res)
        assert any("fingerprint differs" in p for p in problems)


# SLIM_TAG is a stable wire-format constant: changing it silently breaks
# mixed-version parent/worker combinations, so pin it.
def test_slim_tag_is_stable():
    assert SLIM_TAG == "__simfleet_slim__"
