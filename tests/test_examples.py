"""Smoke tests: every example script runs end-to-end (tiny scales)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "0.05")
        assert "Speedup:" in out
        assert "replication ratio" in out

    def test_design_space_sweep(self):
        out = run_example("design_space_sweep.py", "C-NN", "0.05")
        assert "Aggregation sweep" in out
        assert "Pr40" in out and "Sh40+C10" in out

    def test_workload_characterization(self):
        out = run_example("workload_characterization.py", "0.05")
        assert "Classification agreement" in out
        assert "T-AlexNet" in out

    def test_noc_explorer(self):
        out = run_example("noc_explorer.py")
        assert "80x32" in out
        assert "CDXBar" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py", "0.6", "0.0")
        assert "Sh40+C10+Boost" in out

    def test_paper_figures_cli(self):
        out = run_example("paper_figures.py", "tab1", "--scale", "0.05")
        assert "peak_bw" in out
        out = run_example("paper_figures.py", "--list")
        assert "fig14" in out

    def test_render_figures(self, tmp_path, monkeypatch):
        out = run_example("render_figures.py", "fig06")
        assert "fig06_private_area_power.svg" in out
        svg = (EXAMPLES.parent / "figures" / "fig06_private_area_power.svg")
        assert svg.exists()
        assert svg.read_text().startswith("<svg")
