"""Unit tests for Table I peak-bandwidth analytics."""

import pytest

from repro.core.designs import DesignSpec
from repro.core.peak_bw import peak_l1_bandwidth, table1_rows


class TestPeakBandwidth:
    def test_baseline_full_line_ports(self):
        bw = peak_l1_bandwidth(DesignSpec.baseline(), num_cores=80)
        assert bw.bytes_per_cycle == 128 * 80
        assert bw.drop_vs_baseline == 1.0

    @pytest.mark.parametrize(
        "y,drop", [(80, 4.0), (40, 8.0), (20, 16.0), (10, 32.0)]
    )
    def test_private_drops_match_table1(self, y, drop):
        bw = peak_l1_bandwidth(DesignSpec.private(y), num_cores=80)
        assert bw.bytes_per_cycle == 32 * y
        assert bw.drop_vs_baseline == drop

    def test_boost_halves_the_drop(self):
        plain = peak_l1_bandwidth(DesignSpec.clustered(40, 10), 80)
        boosted = peak_l1_bandwidth(DesignSpec.clustered(40, 10, boost=2.0), 80)
        assert plain.drop_vs_baseline == 8.0
        assert boosted.drop_vs_baseline == 4.0

    def test_single_l1_preserves_bandwidth(self):
        bw = peak_l1_bandwidth(DesignSpec.single_l1(), 80)
        assert bw.drop_vs_baseline == 1.0

    def test_cdxbar_keeps_core_ports(self):
        bw = peak_l1_bandwidth(DesignSpec.cdxbar(), 80)
        assert bw.bytes_per_cycle == 128 * 80

    def test_str_rendering(self):
        assert "8x" in str(peak_l1_bandwidth(DesignSpec.private(40), 80))
        assert "drop -" in str(peak_l1_bandwidth(DesignSpec.baseline(), 80))


class TestTable1Rows:
    def test_row_structure(self):
        rows = table1_rows()
        assert [r["config"] for r in rows] == ["Baseline", "Pr80", "Pr40", "Pr20", "Pr10"]
        assert rows[0]["noc1"] == "NA"
        assert rows[1]["noc1"].startswith("80 direct")
        assert rows[2]["noc1"] == "40x (2x1)"
        assert rows[2]["drop"] == "8x"

    def test_scales_with_platform(self):
        rows = table1_rows(num_cores=120, num_l2=48, node_counts=(60,))
        assert rows[1]["config"] == "Pr60"
        assert "60x32" not in rows[1]["noc2"]
        assert "(60x48)" in rows[1]["noc2"]
