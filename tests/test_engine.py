"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim.engine import Engine


def test_runs_events_in_time_order():
    order = []
    eng = Engine()
    eng.schedule(5.0, order.append, "c")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(3.0, order.append, "b")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 5.0


def test_ties_break_fifo():
    order = []
    eng = Engine()
    for tag in range(10):
        eng.schedule(2.0, order.append, tag)
    eng.run()
    assert order == list(range(10))


def test_schedule_in_is_relative():
    seen = []
    eng = Engine()

    def later(_):
        eng.schedule_in(4.0, seen.append, eng.now + 4.0)

    eng.schedule(2.0, later, None)
    eng.run()
    assert seen == [6.0]
    assert eng.now == 6.0


def test_events_can_schedule_more_events():
    count = [0]
    eng = Engine()

    def chain(n):
        count[0] += 1
        if n > 0:
            eng.schedule_in(1.0, chain, n - 1)

    eng.schedule(0.0, chain, 9)
    eng.run()
    assert count[0] == 10
    assert eng.now == 9.0


def test_scheduling_in_the_past_raises():
    eng = Engine()
    eng.schedule(5.0, lambda _: None, None)
    eng.run()
    with pytest.raises(ValueError):
        eng.schedule(1.0, lambda _: None, None)


def test_event_budget_guards_livelock():
    eng = Engine(max_events=100)

    def forever(_):
        eng.schedule_in(1.0, forever, None)

    eng.schedule(0.0, forever, None)
    with pytest.raises(RuntimeError, match="event budget"):
        eng.run()


def test_run_until_stops_at_deadline():
    seen = []
    eng = Engine()
    for t in (1.0, 2.0, 3.0, 4.0):
        eng.schedule(t, seen.append, t)
    eng.run_until(2.5)
    assert seen == [1.0, 2.0]
    assert eng.now == 2.5
    eng.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_empty_property():
    eng = Engine()
    assert eng.empty()
    eng.schedule(1.0, lambda _: None, None)
    assert not eng.empty()
    eng.run()
    assert eng.empty()


def test_priority_breaks_timestamp_ties():
    order = []
    eng = Engine()
    eng.schedule(2.0, order.append, "late", priority=1)
    eng.schedule(2.0, order.append, "default")
    eng.schedule(2.0, order.append, "early", priority=-1)
    eng.run()
    assert order == ["early", "default", "late"]


def test_equal_priority_stays_fifo():
    order = []
    eng = Engine()
    for tag in range(6):
        eng.schedule(2.0, order.append, tag, priority=-1)
    eng.run()
    assert order == list(range(6))


def test_priority_does_not_cross_timestamps():
    order = []
    eng = Engine()
    eng.schedule(1.0, order.append, "t1", priority=5)
    eng.schedule(2.0, order.append, "t2", priority=-5)
    eng.run()
    assert order == ["t1", "t2"]


def test_run_until_full_drain_sets_drained_flag():
    eng = Engine()
    eng.schedule(1.0, lambda _: None, None)
    eng.run_until(10.0)
    assert eng._drained


def test_run_until_partial_drain_clears_drained_flag():
    eng = Engine()
    eng.schedule(1.0, lambda _: None, None)
    eng.run()
    assert eng._drained
    eng.schedule(5.0, lambda _: None, None)
    eng.run_until(3.0)  # leaves the 5.0 event queued
    assert not eng._drained
    eng.run()
    assert eng._drained


def test_run_until_inf_drains_fully_without_bricking():
    """Regression: ``run_until(float("inf"))`` used to assign ``now = inf``,
    after which every later ``schedule()`` raised "must be finite and not
    in the past" — the engine was permanently bricked.  A non-finite
    deadline now means "no deadline": full drain, ``now`` left at the
    last event time, engine still schedulable."""
    seen = []
    eng = Engine()
    for t in (1.0, 2.0, 3.0):
        eng.schedule(t, seen.append, t)
    end = eng.run_until(float("inf"))
    assert seen == [1.0, 2.0, 3.0]
    assert end == 3.0 and eng.now == 3.0
    assert math.isfinite(eng.now)
    # the brick: this schedule used to raise
    eng.schedule(4.0, seen.append, 4.0)
    eng.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_run_until_inf_on_empty_engine_keeps_time_finite():
    eng = Engine()
    assert eng.run_until(float("inf")) == 0.0
    assert eng.now == 0.0
    eng.schedule(1.0, lambda _: None, None)  # must not raise
    eng.run()


@pytest.mark.parametrize("deadline", [float("nan"), float("-inf")])
def test_run_until_other_nonfinite_deadlines_mean_no_deadline(deadline):
    """The other half of the normalization: ``nan`` and ``-inf`` can't be
    meaningful deadlines either (``now <= nan`` is always false, and a
    ``-inf`` deadline would "complete" without processing anything while
    claiming time went backwards) — both get run() semantics instead of
    being assigned to ``now``."""
    seen = []
    eng = Engine()
    for t in (1.0, 2.0):
        eng.schedule(t, seen.append, t)
    end = eng.run_until(deadline)
    assert seen == [1.0, 2.0]
    assert end == 2.0 and eng.now == 2.0
    eng.schedule(3.0, seen.append, 3.0)
    eng.run()
    assert seen == [1.0, 2.0, 3.0]


def test_run_until_finite_deadline_still_advances_now():
    """The normalization must not leak into the finite case: a finite
    deadline past the last event still fast-forwards ``now`` to it."""
    eng = Engine()
    eng.schedule(1.0, lambda _: None, None)
    assert eng.run_until(10.0) == 10.0
    assert eng.now == 10.0


def test_shuffle_mode_is_deterministic_per_seed():
    def outcome(seed):
        order = []
        eng = Engine(shuffle_seed=seed)

        def a(_):
            order.append("a")

        def b(_):
            order.append("b")

        def c(_):
            order.append("c")

        for cb in (a, b, c):
            eng.schedule(1.0, cb)
        eng.run()
        return order

    assert outcome(3) == outcome(3)
    assert sorted(outcome(3)) == ["a", "b", "c"]
    # Some seed must produce a non-FIFO order, else shuffle is a no-op.
    assert any(outcome(s) != ["a", "b", "c"] for s in range(8))


def test_shuffle_respects_priority_boundaries():
    order = []
    eng = Engine(shuffle_seed=1)

    def first(_):
        order.append("first")

    def other(_):
        order.append("other")

    eng.schedule(1.0, other)
    eng.schedule(1.0, first, priority=-1)
    eng.run()
    assert order == ["first", "other"]
    assert eng.shuffled_batches == 0  # both batches are singletons


def test_shuffle_counts_batches_and_pairs():
    eng = Engine(shuffle_seed=1)

    def a(_):
        pass

    def b(_):
        pass

    eng.schedule(1.0, a)
    eng.schedule(1.0, b)
    eng.schedule(2.0, a)  # singleton: not a batch
    eng.run()
    assert eng.shuffled_batches == 1
    assert sum(eng.batch_pairs.values()) == 1


# ------------------------------------------------ run_until instrumentation

class _CountingWatchdog:
    """Minimal watchdog double: records every engine callback."""

    def __init__(self):
        self.events = 0
        self.advances = 0

    def advanced(self, time):
        self.advances += 1

    def event(self, time):
        self.events += 1


def test_run_until_feeds_the_watchdog():
    """Deadline-bounded drains must route through the watchdog loop;
    run_until used to silently bypass every instrumentation layer."""
    wd = _CountingWatchdog()
    eng = Engine()
    eng.attach_watchdog(wd)
    for t in (1.0, 2.0, 3.0, 4.0):
        eng.schedule(t, lambda _: None, None)
    eng.run_until(2.5)
    assert wd.events == 2
    assert wd.advances == 2
    eng.run()
    assert wd.events == 4


def test_run_until_feeds_the_profiler():
    from repro.sim.profiler import EventProfiler

    prof = EventProfiler()
    eng = Engine()
    eng.attach_profiler(prof)
    for t in (1.0, 2.0, 3.0):
        eng.schedule(t, lambda _: None, None)
    eng.run_until(2.5)
    assert prof.total_events == 2
    eng.run()
    assert prof.total_events == 3


def test_run_until_feeds_the_shuffle_rng():
    eng = Engine(shuffle_seed=7)
    a = []
    b = []
    eng.schedule(1.0, a.append, 1)
    eng.schedule(1.0, b.append, 1)
    eng.run_until(2.0)
    assert eng.shuffled_batches == 1
    assert len(eng.batch_pairs) == 1


@pytest.mark.parametrize(
    "instrument", ["plain", "watchdog", "profiler", "shuffle"]
)
def test_event_budget_is_enforced_in_every_drain_loop(instrument):
    """One budget check, one message, all four loops (including under a
    deadline — run_until used to carry its own diverging copy)."""
    eng = Engine(
        max_events=50, shuffle_seed=3 if instrument == "shuffle" else None
    )
    if instrument == "watchdog":
        eng.attach_watchdog(_CountingWatchdog())
    elif instrument == "profiler":
        from repro.sim.profiler import EventProfiler

        eng.attach_profiler(EventProfiler())

    def forever(_):
        eng.schedule_in(1.0, forever, None)

    eng.schedule(0.0, forever, None)
    with pytest.raises(RuntimeError, match="event budget"):
        eng.run_until(1e9)
    assert eng.events_processed == 51  # counter survives the raise


def test_instrumented_drains_preserve_event_order():
    """Watchdog and profiler loops must not change dispatch order."""

    def trace(make_engine):
        order = []
        eng = make_engine()
        eng.schedule(2.0, order.append, "b")
        eng.schedule(1.0, order.append, "a")
        eng.schedule(2.0, order.append, "c", priority=-1)
        eng.run()
        return order

    def watched():
        eng = Engine()
        eng.attach_watchdog(_CountingWatchdog())
        return eng

    def profiled():
        from repro.sim.profiler import EventProfiler

        eng = Engine()
        eng.attach_profiler(EventProfiler())
        return eng

    plain = trace(Engine)
    assert trace(watched) == plain
    assert trace(profiled) == plain
