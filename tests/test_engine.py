"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


def test_runs_events_in_time_order():
    order = []
    eng = Engine()
    eng.schedule(5.0, order.append, "c")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(3.0, order.append, "b")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 5.0


def test_ties_break_fifo():
    order = []
    eng = Engine()
    for tag in range(10):
        eng.schedule(2.0, order.append, tag)
    eng.run()
    assert order == list(range(10))


def test_schedule_in_is_relative():
    seen = []
    eng = Engine()

    def later(_):
        eng.schedule_in(4.0, seen.append, eng.now + 4.0)

    eng.schedule(2.0, later, None)
    eng.run()
    assert seen == [6.0]
    assert eng.now == 6.0


def test_events_can_schedule_more_events():
    count = [0]
    eng = Engine()

    def chain(n):
        count[0] += 1
        if n > 0:
            eng.schedule_in(1.0, chain, n - 1)

    eng.schedule(0.0, chain, 9)
    eng.run()
    assert count[0] == 10
    assert eng.now == 9.0


def test_scheduling_in_the_past_raises():
    eng = Engine()
    eng.schedule(5.0, lambda _: None, None)
    eng.run()
    with pytest.raises(ValueError):
        eng.schedule(1.0, lambda _: None, None)


def test_event_budget_guards_livelock():
    eng = Engine(max_events=100)

    def forever(_):
        eng.schedule_in(1.0, forever, None)

    eng.schedule(0.0, forever, None)
    with pytest.raises(RuntimeError, match="event budget"):
        eng.run()


def test_run_until_stops_at_deadline():
    seen = []
    eng = Engine()
    for t in (1.0, 2.0, 3.0, 4.0):
        eng.schedule(t, seen.append, t)
    eng.run_until(2.5)
    assert seen == [1.0, 2.0]
    assert eng.now == 2.5
    eng.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_empty_property():
    eng = Engine()
    assert eng.empty()
    eng.schedule(1.0, lambda _: None, None)
    assert not eng.empty()
    eng.run()
    assert eng.empty()
