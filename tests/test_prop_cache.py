"""Property-based tests for the cache substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.directory import ReplicationDirectory
from repro.cache.replacement import FIFOPolicy, LRUPolicy

lines = st.integers(min_value=0, max_value=1 << 30)

# An operation stream: (op, line) where op selects load/store/install/invalidate.
ops = st.lists(st.tuples(st.sampled_from("lsiv"), lines), max_size=300)


def apply_ops(cache, stream):
    for op, line in stream:
        if op == "l":
            hit = cache.access_load(line)
            if not hit:
                cache.install(line)
        elif op == "s":
            cache.access_store(line)
        elif op == "i":
            cache.install(line)
        else:
            cache.invalidate(line)


class TestCacheInvariants:
    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, stream):
        cache = SetAssociativeCache("p", 2048, 4, 128)
        apply_ops(cache, stream)
        assert cache.occupancy() <= cache.num_lines
        for s in cache._sets:
            assert len(s) <= cache.assoc

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_load_after_install_hits(self, stream):
        cache = SetAssociativeCache("p", 2048, 4, 128)
        apply_ops(cache, stream)
        # Whatever the history, installing then immediately loading hits.
        cache.install(123)
        assert cache.access_load(123)

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_stats_balance(self, stream):
        cache = SetAssociativeCache("p", 2048, 4, 128)
        apply_ops(cache, stream)
        s = cache.stats
        assert s.accesses == s.hits + s.misses
        assert s.store_hits == s.write_evicts  # write-evict policy
        assert s.replicated_misses == 0  # no directory attached

    @given(ops, st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_index_divisor_preserves_semantics(self, stream, divisor):
        """A sliced cache behaves identically to an unsliced one when fed
        the slice's own lines (hit/miss sequence must match)."""
        plain = SetAssociativeCache("p", 2048, 4, 128)
        sliced = SetAssociativeCache("q", 2048, 4, 128, index_divisor=divisor)
        outcomes_plain, outcomes_sliced = [], []
        for op, line in stream:
            if op != "l":
                continue
            # Feed the plain cache line k and the sliced cache line k*divisor
            # (slice 0's lines); set mappings then coincide.
            outcomes_plain.append(plain.access_load(line))
            if not outcomes_plain[-1]:
                plain.install(line)
            outcomes_sliced.append(sliced.access_load(line * divisor))
            if not outcomes_sliced[-1]:
                sliced.install(line * divisor)
        assert outcomes_plain == outcomes_sliced


class TestPolicyEquivalence:
    @given(st.lists(st.integers(0, 10), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_lru_victim_is_least_recent(self, touches):
        p = LRUPolicy()
        last_use = {}
        for t, line in enumerate(touches):
            if line in p:
                p.touch(line)
            else:
                if len(p) >= 4:
                    victim = p.victim()
                    expected = min(
                        (ln for ln in last_use if ln in p), key=lambda ln: last_use[ln]
                    )
                    assert victim == expected
                    p.evict()
                p.insert(line)
            last_use[line] = t

    @given(st.lists(st.integers(0, 10), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_fifo_victim_is_oldest_insert(self, touches):
        p = FIFOPolicy()
        insert_time = {}
        for t, line in enumerate(touches):
            if line in p:
                p.touch(line)
                continue
            if len(p) >= 4:
                victim = p.victim()
                expected = min(
                    (ln for ln in insert_time if ln in p),
                    key=lambda ln: insert_time[ln],
                )
                assert victim == expected
                p.evict()
            p.insert(line)
            insert_time[line] = t


class TestDirectoryInvariants:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 20), st.integers(0, 7)),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_directory_matches_reference_model(self, events):
        d = ReplicationDirectory()
        ref = {}
        for install, line, cache_id in events:
            if install:
                d.on_install(line, cache_id)
                ref.setdefault(line, set()).add(cache_id)
            else:
                d.on_evict(line, cache_id)
                if line in ref:
                    ref[line].discard(cache_id)
                    if not ref[line]:
                        del ref[line]
        assert d.distinct_lines() == len(ref)
        assert d.total_copies() == sum(len(h) for h in ref.values())
        for line, holders in ref.items():
            assert d.holders(line) == frozenset(holders)
            for c in range(8):
                assert d.held_elsewhere(line, c) == bool(holders - {c})
