"""Tests for the closed-form bottleneck model, including cross-validation
of the simulator against its analytical ceilings."""

import pytest

from repro.analysis.analytical import (
    measured_rate,
    throughput_bounds,
    validate_against,
)
from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.system import simulate
from repro.workloads.profile import AppProfile
from repro.workloads.suite import get_app


class TestBounds:
    def prof(self, **kw):
        defaults = dict(name="b", compute_gap=4.0, wavefront_slots=8, mlp=3,
                        request_bytes=32, shared_lines=100, shared_fraction=0.5)
        defaults.update(kw)
        return AppProfile(**defaults)

    def test_issue_bound(self):
        b = throughput_bounds(DesignSpec.baseline(), self.prof())
        assert b.issue == pytest.approx(80 / 5.0)

    def test_baseline_l1_ports(self):
        b = throughput_bounds(DesignSpec.baseline(), self.prof())
        assert b.l1_ports == 80.0

    def test_dcl1_ports_follow_table1(self):
        # Pr40, 32B requests: 32B x 40 per cycle / 32B per access = 40/cycle.
        b = throughput_bounds(DesignSpec.private(40), self.prof())
        assert b.l1_ports == pytest.approx(40.0)
        # Boost doubles it.
        b2 = throughput_bounds(DesignSpec.clustered(40, 10, boost=2.0), self.prof())
        assert b2.l1_ports == pytest.approx(80.0)
        # 128B requests quarter it.
        b3 = throughput_bounds(
            DesignSpec.private(40), self.prof(request_bytes=128)
        )
        assert b3.l1_ports == pytest.approx(10.0)

    def test_miss_rates_scale_memory_bounds(self):
        full = throughput_bounds(DesignSpec.baseline(), self.prof(),
                                 l1_miss_rate=1.0, l2_miss_rate=1.0)
        filtered = throughput_bounds(DesignSpec.baseline(), self.prof(),
                                     l1_miss_rate=0.1, l2_miss_rate=1.0)
        assert filtered.l2_service == pytest.approx(full.l2_service * 10)
        assert filtered.dram == pytest.approx(full.dram * 10)

    def test_latency_bound_from_littles_law(self):
        b = throughput_bounds(DesignSpec.baseline(), self.prof(), round_trip=100.0)
        assert b.latency == pytest.approx(80 * 8 * 3 / 100.0)
        b2 = throughput_bounds(DesignSpec.baseline(), self.prof())
        assert b2.latency == float("inf")

    def test_binding_resource_name(self):
        b = throughput_bounds(DesignSpec.baseline(), self.prof(),
                              l1_miss_rate=1.0, l2_miss_rate=1.0)
        assert b.binding == "dram"  # 16*4/16 / 1 = 4/cycle is the floor
        assert b.tightest == pytest.approx(4.0)

    def test_invalid_miss_rates(self):
        with pytest.raises(ValueError):
            throughput_bounds(DesignSpec.baseline(), self.prof(), l1_miss_rate=1.5)


class TestCrossValidation:
    """The simulator must respect its analytical ceilings."""

    @pytest.mark.parametrize("design", [
        DesignSpec.baseline(),
        DesignSpec.private(8),
        DesignSpec.shared(8),
        DesignSpec.clustered(8, 4, boost=2.0),
    ], ids=lambda d: d.label)
    def test_tiny_platform_within_bounds(self, design, tiny_gpu, shared_profile):
        res = simulate(shared_profile, design, SimConfig(gpu=tiny_gpu))
        check = validate_against(res, design, shared_profile, gpu=tiny_gpu)
        assert check["within_tolerance"] == 1.0, check

    def test_full_platform_apps_within_bounds(self):
        cfg = SimConfig(scale=0.2)
        for app in ("T-AlexNet", "P-2DCONV", "C-SCAN"):
            prof = get_app(app)
            for design in (DesignSpec.baseline(),
                           DesignSpec.clustered(40, 10, boost=2.0)):
                res = simulate(prof, design, cfg)
                check = validate_against(res, design, prof, gpu=GPUConfig())
                assert check["within_tolerance"] == 1.0, (app, design.label, check)

    def test_measured_rate(self):
        from repro.sim.results import SimResult

        r = SimResult()
        r.cycles = 100.0
        r.loads, r.stores = 150, 50
        assert measured_rate(r) == 2.0
        r.cycles = 0.0
        assert measured_rate(r) == 0.0
