"""Unit tests for the CDXBar geometry helper."""

import pytest

from repro.noc.hierarchical import CDXBarGeometry


class TestGeometry:
    def test_default_shape(self):
        g = CDXBarGeometry()
        assert g.num_groups == 10
        assert g.l2_per_column == 4
        s1, s2 = g.stage1_shape(), g.stage2_shape()
        assert (s1.count, s1.n_in, s1.n_out) == (10, 8, 8)
        assert (s2.count, s2.n_in, s2.n_out) == (8, 10, 4)

    def test_inventory_has_both_stages(self):
        inv = CDXBarGeometry().inventory()
        assert len(inv) == 2
        assert inv[0].link_mm < inv[1].link_mm  # short then long links

    def test_str(self):
        assert "10x(8x8)" in str(CDXBarGeometry())

    def test_validation(self):
        with pytest.raises(ValueError):
            CDXBarGeometry(num_cores=81)
        with pytest.raises(ValueError):
            CDXBarGeometry(num_l2=33)

    def test_scaled_system(self):
        g = CDXBarGeometry(num_cores=120, num_l2=48, group_size=8, columns=8)
        assert g.num_groups == 15
        assert g.l2_per_column == 6
