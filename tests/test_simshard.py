"""SimShard: distribution-safety analysis (SD501–SD506) and its
serial/fork/spawn replay confirmer."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.simlint import Severity
from repro.analysis.simshard import (
    WORKER_SAFE_GLOBALS,
    confirm_shard,
    shard_rule_table,
    shard_source,
    run_shard,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: A minimal module skeleton with one pool boundary: fixtures splice a
#: worker body and a payload into it.
POOL = """
from concurrent.futures import ProcessPoolExecutor
"""


def _analyze(src, **kw):
    # "<string>" counts as sweep-layer, so fixtures are checked by default.
    return shard_source(textwrap.dedent(src), **kw)


# ------------------------------------------ SD501 (non-picklable payloads)


def test_lambda_in_run_many_points_is_flagged():
    findings = _analyze(
        """
        def build(runner, specs):
            return runner.run_many([(lambda: 1, spec) for spec in specs])
        """
    )
    assert [f.rule_id for f in findings] == ["SD501"]
    assert findings[0].severity is Severity.ERROR
    assert "lambda" in findings[0].message


def test_open_file_handle_into_pool_map_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        def sweep(items):
            fh = open("log.txt")
            with ProcessPoolExecutor() as pool:
                return list(pool.map(work, items, fh))
        """
    )
    assert [f.rule_id for f in findings] == ["SD501"]
    assert "file handle" in findings[0].message


def test_locally_defined_class_in_payload_is_flagged():
    findings = _analyze(
        """
        def build(runner, specs):
            class Probe:
                pass
            return runner.run_many([(Probe, spec) for spec in specs])
        """
    )
    assert [f.rule_id for f in findings] == ["SD501"]
    assert "Probe" in findings[0].message


def test_worker_returning_lambda_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        def _work(p):
            return lambda: p

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD501"]
    assert "_work" in findings[0].message


def test_frozen_tuple_payload_is_fine():
    findings = _analyze(
        """
        def build(runner, apps, specs):
            return runner.run_many([(a, s) for a in apps for s in specs])
        """
    )
    assert findings == []


# ------------------------------------------- SD502 (mutable module globals)


def test_worker_mutating_module_global_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        RESULTS = []

        def _work(p):
            RESULTS.append(p)
            return p

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD502"]
    assert findings[0].severity is Severity.ERROR
    assert "RESULTS" in findings[0].message


def test_worker_reading_mutable_global_warns():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        TABLE = {"a": 1}

        def _work(p):
            return TABLE[p]

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD502"]
    assert findings[0].severity is Severity.WARNING
    assert "WORKER_SAFE_GLOBALS" in findings[0].message


def test_global_declaration_in_worker_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        COUNT = []

        def _work(p):
            global COUNT
            COUNT = [p]

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD502"]


def test_transitively_reachable_global_use_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        SEEN = []

        def _record(p):
            SEEN.append(p)

        def _work(p):
            _record(p)
            return p

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD502"]
    assert "_record" in findings[0].message


def test_declared_safe_global_read_is_allowed():
    name = next(iter(WORKER_SAFE_GLOBALS))
    findings = _analyze(
        f"""
        from concurrent.futures import ProcessPoolExecutor

        {name} = {{}}

        def _work(p):
            return {name}.get(p)

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert findings == []


def test_non_worker_global_use_is_out_of_scope():
    # Mutating a module global from *parent-side* code is SimPure/SimLint
    # territory, not a distribution hazard.
    findings = _analyze(
        """
        CACHE = {}

        def remember(k, v):
            CACHE[k] = v
        """
    )
    assert findings == []


def test_declared_memo_global_writes_are_allowed():
    # _STREAM_CACHE is in WORKER_MEMO_GLOBALS: a per-process memoization
    # cache whose hits are bit-identical to recomputation, so worker-side
    # writes are sound by declaration.
    from repro.analysis.simshard import WORKER_MEMO_GLOBALS

    assert "_STREAM_CACHE" in WORKER_MEMO_GLOBALS
    assert WORKER_MEMO_GLOBALS <= set(WORKER_SAFE_GLOBALS)
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        _STREAM_CACHE = {}

        def _work(p):
            if p not in _STREAM_CACHE:
                _STREAM_CACHE[p] = p * 2
            return _STREAM_CACHE[p]

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert findings == []


def test_undeclared_memo_like_global_is_still_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        _MY_CACHE = {}

        def _work(p):
            _MY_CACHE[p] = p * 2
            return _MY_CACHE[p]

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert "SD502" in {f.rule_id for f in findings}
    assert any(
        f.severity is Severity.ERROR and "_MY_CACHE" in f.message
        for f in findings
    )


def test_fleet_acquired_pool_is_a_boundary():
    # `pool = fleet.acquire(...)` must be recognized as a pool binding so
    # its .map() worker enters the reachability closure.
    findings = _analyze(
        """
        from repro.sim.fleet import get_fleet

        RESULTS = []

        def _work(p):
            RESULTS.append(p)
            return p

        def sweep(items):
            pool = get_fleet().acquire(4)
            return list(pool.map(_work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD502"]
    assert "RESULTS" in findings[0].message


def test_manifest_workers_seed_reachability():
    # A module that only *exports* its worker (the boundary call lives in
    # another module) declares it via SIMSHARD_WORKERS and is still
    # analyzed.
    findings = _analyze(
        """
        SIMSHARD_WORKERS = ("_work",)

        RESULTS = []

        def _work(p):
            RESULTS.append(p)
            return p
        """
    )
    assert [f.rule_id for f in findings] == ["SD502"]
    assert "RESULTS" in findings[0].message


def test_manifest_with_unknown_names_is_ignored():
    findings = _analyze(
        """
        SIMSHARD_WORKERS = ("_not_defined_here",)

        def helper(p):
            return p
        """
    )
    assert findings == []


# -------------------------------------------------- SD503 (fork-unsafety)


def test_lock_construction_in_worker_is_flagged():
    findings = _analyze(
        """
        import threading
        from concurrent.futures import ProcessPoolExecutor

        def _work(p):
            lock = threading.Lock()
            return p

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD503"]
    assert "threading.Lock" in findings[0].message


def test_nested_pool_in_worker_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        def _work(p):
            with ProcessPoolExecutor() as inner:
                return list(inner.map(str, p))

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert "SD503" in [f.rule_id for f in findings]
    assert any("nested" in f.message for f in findings)


def test_module_rng_in_worker_warns():
    findings = _analyze(
        """
        import random
        from concurrent.futures import ProcessPoolExecutor

        def _work(p):
            return random.random()

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD503"]
    assert findings[0].severity is Severity.WARNING


def test_nested_def_worker_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        def sweep(items):
            def work(p):
                return p
            with ProcessPoolExecutor() as pool:
                return list(pool.map(work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD503"]
    assert "module scope" in findings[0].message


def test_bound_method_worker_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        class Sweeper:
            def work(self, p):
                return p

            def sweep(self, items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(self.work, items))
        """
    )
    assert [f.rule_id for f in findings] == ["SD503"]
    assert "bound method" in findings[0].message


def test_module_level_worker_is_fine():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        def _work(p):
            return p * 2

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(_work, items))
        """
    )
    assert findings == []


# --------------------------------------------- SD504 (grid construction)


def test_unknown_simconfig_field_is_flagged():
    findings = _analyze(
        """
        from repro.sim.config import SimConfig

        def build():
            return SimConfig(scale=0.5, l1_latnecy=3)
        """
    )
    assert [f.rule_id for f in findings] == ["SD504"]
    assert "l1_latnecy" in findings[0].message


def test_unknown_appprofile_field_is_flagged():
    findings = _analyze(
        """
        from repro.workloads.profile import AppProfile

        def build():
            return AppProfile(name="x", num_cta=4)
        """
    )
    assert [f.rule_id for f in findings] == ["SD504"]
    assert "num_cta" in findings[0].message


def test_unknown_run_kwarg_in_sweep_point_is_flagged():
    findings = _analyze(
        """
        def grid(runner, apps, spec):
            return runner.run_many(
                [(a, spec, {"schedular": "rr"}) for a in apps])
        """
    )
    assert [f.rule_id for f in findings] == ["SD504"]
    assert "schedular" in findings[0].message


def test_unknown_overrides_key_is_flagged():
    findings = _analyze(
        """
        def grid(runner, apps, spec):
            return runner.run_many(
                [(a, spec, {"overrides": {"l1_polcy": "f"}}) for a in apps])
        """
    )
    assert [f.rule_id for f in findings] == ["SD504"]
    assert "l1_polcy" in findings[0].message


def test_overrides_keyword_outside_run_many_is_checked():
    # The ablation modules pass overrides= to helpers; keys are validated
    # wherever the keyword appears.
    findings = _analyze(
        """
        def ablate(runner, app, spec):
            return runner.run(app, spec, overrides={"not_a_field": 1})
        """
    )
    assert [f.rule_id for f in findings] == ["SD504"]


def test_malformed_point_shape_is_flagged():
    findings = _analyze(
        """
        def grid(runner, apps):
            return runner.run_many([(a,) for a in apps])
        """
    )
    assert [f.rule_id for f in findings] == ["SD504"]
    assert "(app, spec)" in findings[0].message


def test_valid_grid_construction_is_fine():
    findings = _analyze(
        """
        from repro.sim.config import SimConfig

        def grid(runner, apps, spec):
            cfg = SimConfig(scale=0.5, l1_policy="lru")
            return runner.run_many(
                [(a, spec, {"scheduler": "round_robin",
                            "overrides": {"l1_bypass": True}}) for a in apps])
        """
    )
    assert findings == []


def test_locally_defined_class_shadow_is_not_checked():
    # A module defining its *own* SimConfig class (e.g. a test fixture)
    # is not held to the real dataclass's field domain.
    findings = _analyze(
        """
        class SimConfig:
            pass

        def build():
            return SimConfig(whatever=1)
        """
    )
    assert findings == []


# ----------------------------------------------- SD505 (merge ordering)


def test_as_completed_merge_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor, as_completed

        def sweep(items):
            out = []
            with ProcessPoolExecutor() as pool:
                futs = [pool.submit(work, i) for i in items]
                for fut in as_completed(futs):
                    out.append(fut.result())
            return out
        """
    )
    assert "SD505" in [f.rule_id for f in findings]
    assert any("as_completed" in f.message for f in findings)


def test_set_iteration_merge_is_flagged():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        def sweep(items):
            out = []
            with ProcessPoolExecutor() as pool:
                res = set(pool.map(work, items))
            for r in res:
                out.append(r)
            return out
        """
    )
    assert [f.rule_id for f in findings] == ["SD505"]


def test_submission_order_merge_is_fine():
    findings = _analyze(
        """
        from concurrent.futures import ProcessPoolExecutor

        def sweep(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(work, items))
        """
    )
    assert findings == []


# ------------------------------------------------ SD506 (payload drift)


def test_undeclared_payload_field_is_flagged():
    findings = _analyze(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SimConfig:
            scale: float = 1.0
            brand_new_knob: int = 0
        """
    )
    drift = [f for f in findings if f.rule_id == "SD506"]
    assert any("brand_new_knob" in f.message for f in drift)
    # 'scale' is declared (keyed), so only the new field drifts.
    assert not any("'SimConfig.scale'" in f.message for f in drift)


def test_declared_fields_do_not_drift():
    # Mirror the real SimConfig fields for a couple of knobs: no drift.
    findings = _analyze(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class DesignSpec:
            pass
        """
    )
    # An empty scanned class is *missing* fields, but the stale-manifest
    # direction only anchors at the canonical defining file.
    assert findings == []


def test_shipped_payload_classes_have_no_drift():
    findings = run_shard([str(SRC_ROOT / "sim"), str(SRC_ROOT / "workloads"),
                          str(SRC_ROOT / "core")], select=["SD506"])
    assert findings == []


# ------------------------------------------------------------- mechanics


def test_suppression_comment_silences_a_rule():
    findings = _analyze(
        """
        def build(runner, specs):
            return runner.run_many(
                [(lambda: 1, s) for s in specs])  # simshard: disable=SD501
        """
    )
    assert findings == []


def test_select_restricts_rules():
    src = """
    from concurrent.futures import ProcessPoolExecutor

    RESULTS = []

    def _work(p):
        RESULTS.append(p)
        return lambda: p

    def sweep(items):
        with ProcessPoolExecutor() as pool:
            return list(pool.map(_work, items))
    """
    assert {f.rule_id for f in _analyze(src)} == {"SD501", "SD502"}
    assert {f.rule_id for f in _analyze(src, select=["SD502"])} == {"SD502"}


def test_syntax_error_is_reported_not_raised():
    findings = shard_source("def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule_id == "SD001"


def test_rule_table_lists_all_rules():
    ids = [rid for rid, _, _ in shard_rule_table()]
    assert ids == ["SD501", "SD502", "SD503", "SD504", "SD505", "SD506"]


def test_non_sweep_layer_paths_are_out_of_scope():
    findings = shard_source(
        "def f(runner):\n    return runner.run_many([(lambda: 1, s)])\n",
        path="somewhere/else/tool.py",
    )
    assert findings == []


def test_shipped_tree_is_clean_strict():
    findings = run_shard([str(SRC_ROOT)])
    assert findings == [], "\n".join(f.format() for f in findings)


# ------------------------------------------------------------- confirmer


class TestConfirmShard:
    @pytest.fixture(scope="class")
    def report(self):
        return confirm_shard(
            grid=[("C-BLK", "Baseline"), ("C-NN", "Sh40")], scale=0.05)

    def test_report_is_sound(self, report):
        assert report.ok, report.render()

    def test_probe_families_all_ran(self, report):
        counts = report.counts()
        assert counts["pre-flight"] == (1, 1)
        assert counts["pickle-roundtrip"] == (2, 2)
        assert counts["result-roundtrip"] == (2, 2)
        # One context-identity probe per available start method.
        kinds = counts["context-identity"]
        assert kinds[0] == kinds[1] >= 1
        # A warm re-acquire of the fleet must have been probed too.
        assert counts["fleet-reuse"] == (1, 1)

    def test_render_mentions_verdict(self, report):
        text = report.render()
        assert "overall: SOUND" in text
        assert "bit-identical" in text

    def test_findings_graded(self, report):
        from repro.analysis.simshard import ShardFinding

        exercised = ShardFinding(
            "src/repro/experiments/base.py", 1, 0, "SD501",
            Severity.ERROR, "x")
        elsewhere = ShardFinding(
            "src/repro/analysis/simshard.py", 1, 0, "SD501",
            Severity.ERROR, "x")
        assert report.verdict_for(exercised) == "BENIGN"
        assert report.verdict_for(elsewhere) == "UNOBSERVED"


# ------------------------------------------------------------------- CLI


class TestCli:
    def test_static_clean_exit(self, capsys):
        from repro.cli import main

        assert main(["shard", "--strict", str(SRC_ROOT)]) == 0
        assert capsys.readouterr().out == ""

    def test_list_rules(self, capsys):
        from repro.cli import main

        assert main(["shard", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SD501" in out and "SD506" in out

    def test_unknown_select_rejected(self, capsys):
        from repro.cli import main

        assert main(["shard", "--select", "SD999", str(SRC_ROOT)]) == 2
        assert "SD999" in capsys.readouterr().err

    def test_bad_grid_entry_rejected(self, capsys):
        from repro.cli import main

        assert main(["shard", "--confirm", "--grid", "nope"]) == 2
        assert "APP/DESIGN" in capsys.readouterr().err

    def test_analyze_includes_simshard_row(self, capsys):
        from repro.cli import main

        assert main(["analyze", str(SRC_ROOT / "experiments")]) == 0
        out = capsys.readouterr().out
        assert "simshard" in out and "distribution safety" in out

    def test_analyze_json_has_schema_version_and_shard(self, capsys):
        from repro.cli import ANALYZE_SCHEMA_VERSION, main

        assert main(["analyze", "--json", str(SRC_ROOT / "experiments")]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == ANALYZE_SCHEMA_VERSION
        assert "simshard" in {t["tool"] for t in doc["tools"]}
