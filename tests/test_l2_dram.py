"""Unit tests for L2 slices and memory controllers."""

import pytest

from repro.mem.dram import MemoryController
from repro.mem.l2 import L2Slice


class TestL2Slice:
    def make(self, **kw):
        defaults = dict(slice_id=3, size_bytes=16 * 1024, assoc=8,
                        line_bytes=128, num_slices=8)
        defaults.update(kw)
        return L2Slice(**defaults)

    def test_load_miss_then_install_then_hit(self):
        s = self.make()
        line = 8 * 5 + 3  # congruent to slice id
        assert not s.access_load(line)
        s.install(line)
        assert s.access_load(line)

    def test_store_allocates_in_place(self):
        s = self.make()
        line = 3
        assert not s.access_store(line)  # write miss allocates
        assert s.cache.contains(line)
        assert s.access_store(line)  # now a write hit
        assert s.cache.contains(line)
        assert s.is_dirty(line)

    def test_dirty_victim_queues_writeback(self):
        s = self.make()
        # Fill one set (8-way) with dirty lines, then overflow it.
        set_lines = [8 * (k * s.cache.num_sets) + 3 for k in range(9)]
        for line in set_lines[:8]:
            s.access_store(line)
        assert s.drain_writebacks() == []
        s.install(set_lines[8])  # evicts the LRU dirty line
        wb = s.drain_writebacks()
        assert wb == [set_lines[0]]
        assert s.writebacks == 1
        assert not s.is_dirty(set_lines[0])

    def test_clean_victim_is_not_written_back(self):
        s = self.make()
        set_lines = [8 * (k * s.cache.num_sets) + 3 for k in range(9)]
        for line in set_lines[:8]:
            s.install(line)  # clean fills
        s.install(set_lines[8])
        assert s.drain_writebacks() == []
        assert s.writebacks == 0

    def test_sliced_index_uses_all_sets(self):
        s = self.make()
        # Slice 3 of 8 only ever sees lines = 8k + 3.
        sets = {s.cache.set_index(8 * k + 3) for k in range(64)}
        assert sets == set(range(s.cache.num_sets))

    def test_stats_property(self):
        s = self.make()
        s.access_load(3)
        assert s.stats.load_misses == 1


class TestMemoryController:
    def test_bank_group_selection_by_line(self):
        mc = MemoryController(0, service_cycles=8.0, latency_cycles=100.0,
                              num_bank_groups=4)
        assert mc.bank_of(0) is mc.banks[0]
        assert mc.bank_of(5) is mc.banks[1]

    def test_parallel_banks_do_not_queue_each_other(self):
        mc = MemoryController(0, 8.0, 100.0, num_bank_groups=4)
        t0 = mc.access(0.0, line=0)
        t1 = mc.access(0.0, line=1)
        assert t0 == t1 == 108.0  # different bank groups

    def test_same_bank_serializes(self):
        mc = MemoryController(0, 8.0, 100.0, num_bank_groups=4)
        t0 = mc.access(0.0, line=0)
        t1 = mc.access(0.0, line=4)  # same group
        assert t1 == t0 + 8.0

    def test_utilization(self):
        mc = MemoryController(0, 8.0, 0.0, num_bank_groups=2)
        mc.access(0.0, 0)
        mc.access(0.0, 1)
        assert mc.utilization(8.0) == pytest.approx(1.0)
        assert mc.utilization(16.0) == pytest.approx(0.5)
        assert mc.busy_cycles() == 16.0
        assert mc.accesses == 2

    def test_needs_positive_banks(self):
        with pytest.raises(ValueError):
            MemoryController(0, 8.0, 100.0, num_bank_groups=0)
