"""Unit tests for cluster geometry."""

import pytest

from repro.core.clusters import ClusterGeometry
from repro.core.designs import DesignSpec


def geo(y=40, z=10, cores=80, l2=32):
    return ClusterGeometry(cores, y, z, l2)


class TestShape:
    def test_sh40_c10(self):
        g = geo()
        assert g.cores_per_cluster == 8
        assert g.dcl1_per_cluster == 4
        assert g.home_bits == 2
        assert g.max_replicas == 10

    def test_pr40_endpoint(self):
        g = geo(40, 40)
        assert g.cores_per_cluster == 2
        assert g.dcl1_per_cluster == 1
        assert g.home_bits == 0

    def test_sh40_endpoint(self):
        g = geo(40, 1)
        assert g.cores_per_cluster == 80
        assert g.dcl1_per_cluster == 40
        assert g.home_bits == 6  # ceil(log2(40))

    def test_from_design(self):
        g = ClusterGeometry.from_design(DesignSpec.clustered(40, 10), 80, 32)
        assert g.num_clusters == 10
        g1 = ClusterGeometry.from_design(DesignSpec.single_l1(), 80, 32)
        assert g1.num_dcl1 == 1
        with pytest.raises(ValueError):
            ClusterGeometry.from_design(DesignSpec.baseline(), 80, 32)

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            ClusterGeometry(80, 40, 7, 32)
        with pytest.raises(ValueError):
            ClusterGeometry(81, 40, 10, 32)


class TestMembership:
    def test_cluster_of_core_contiguous(self):
        g = geo()
        assert g.cluster_of_core(0) == 0
        assert g.cluster_of_core(7) == 0
        assert g.cluster_of_core(8) == 1
        assert g.cluster_of_core(79) == 9

    def test_cluster_of_dcl1(self):
        g = geo()
        assert g.cluster_of_dcl1(0) == 0
        assert g.cluster_of_dcl1(4) == 1
        assert g.cluster_of_dcl1(39) == 9

    def test_ranges(self):
        g = geo()
        assert list(g.dcl1s_of_cluster(1)) == [4, 5, 6, 7]
        assert list(g.cores_of_cluster(9)) == list(range(72, 80))

    def test_port_indices(self):
        g = geo()
        assert g.core_port_in_cluster(9) == 1
        assert g.dcl1_port_in_cluster(6) == 2

    def test_range_of_dcl1(self):
        g = geo()
        assert g.dcl1_range_of(0) == 0
        assert g.dcl1_range_of(7) == 3
        assert g.dcl1_range_of(4) == 0  # same range, next cluster


class TestNoC2Partitioning:
    def test_clustered_is_partitioned(self):
        g = geo()  # M=4 divides 32
        assert g.noc2_partitioned
        assert g.l2_per_range == 8
        assert g.noc2_shapes() == [(4, 10, 8)]

    def test_sh40_falls_back_to_full_crossbar(self):
        g = geo(40, 1)  # M=40 > 32
        assert not g.noc2_partitioned
        assert g.noc2_shapes() == [(1, 40, 32)]

    def test_private_uses_full_crossbar(self):
        g = geo(40, 40)  # M=1
        assert not g.noc2_partitioned
        assert g.noc2_shapes() == [(1, 40, 32)]

    def test_noc1_shapes(self):
        assert geo().noc1_shapes() == [(10, 8, 4)]
        assert geo(40, 40).noc1_shapes() == [(40, 2, 1)]
        assert geo(40, 1).noc1_shapes() == [(1, 80, 40)]

    def test_120_core_system(self):
        g = ClusterGeometry(120, 60, 10, 48)
        assert g.cores_per_cluster == 12
        assert g.dcl1_per_cluster == 6
        assert g.noc2_partitioned
        assert g.l2_per_range == 8
