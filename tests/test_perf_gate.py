"""Tests for ``benchmarks/check_perf_baseline.py`` — the CI perf gate.

The gate is a standalone script (not part of the ``repro`` package), so
it is loaded by file path.  Every hardened failure mode gets a test:
silent passes are exactly what the gate exists to prevent, so each hole
that was closed (skipped-missing points, zero baselines, inverted
thresholds, schema drift) is pinned here.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "check_perf_baseline.py"
_spec = importlib.util.spec_from_file_location("check_perf_baseline", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _point(app="T-AlexNet", design="Sh40", scale=1.0, eps=200_000.0,
           fp="f" * 64, **extra):
    p = {
        "app": app, "design": design, "scale": scale,
        "events": 432468, "wall_s": 2.0,
        "events_per_s": eps, "fingerprint_sha256": fp,
    }
    p.update(extra)
    return p


def _doc(points, schema_version=1):
    return {"schema_version": schema_version, "points": points}


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    return str(path)


def _run(tmp_path, base_doc, fresh_doc, *extra_args):
    base = _write(tmp_path, "base.json", base_doc)
    fresh = _write(tmp_path, "fresh.json", fresh_doc)
    return gate.main([base, fresh, *extra_args])


def test_equal_docs_pass(tmp_path, capsys):
    rc = _run(tmp_path, _doc([_point()]), _doc([_point()]))
    assert rc == 0
    assert "[ok]" in capsys.readouterr().out


def test_drop_beyond_fail_pct_fails(tmp_path, capsys):
    rc = _run(tmp_path, _doc([_point(eps=200_000)]),
              _doc([_point(eps=100_000)]))  # -50% vs default --fail-pct 25
    assert rc == 1
    assert "[FAIL]" in capsys.readouterr().out


def test_drop_in_warn_band_passes_with_warning(tmp_path, capsys):
    rc = _run(tmp_path, _doc([_point(eps=200_000)]),
              _doc([_point(eps=170_000)]))  # -15%: warn, not fail
    assert rc == 0
    assert "[warn]" in capsys.readouterr().out


def test_speedup_passes(tmp_path, capsys):
    rc = _run(tmp_path, _doc([_point(eps=200_000)]),
              _doc([_point(eps=500_000)]))
    assert rc == 0
    assert "[ok]" in capsys.readouterr().out


def test_fingerprint_mismatch_is_config_error(tmp_path):
    rc = _run(tmp_path, _doc([_point(fp="a" * 64)]),
              _doc([_point(fp="b" * 64)]))
    assert rc == 2


def test_schema_version_mismatch_is_config_error(tmp_path, capsys):
    rc = _run(tmp_path, _doc([_point()], schema_version=1),
              _doc([_point()], schema_version=2))
    assert rc == 2
    assert "schema_version" in capsys.readouterr().err


def test_missing_in_fresh_fails(tmp_path, capsys):
    """A baseline point the fresh run skipped must FAIL, not '[skip]'."""
    two = [_point(), _point(app="C-SP", eps=100_000)]
    rc = _run(tmp_path, _doc(two), _doc([_point()]))
    assert rc == 1
    assert "not measured in fresh run" in capsys.readouterr().out


def test_allow_missing_restores_skip(tmp_path, capsys):
    two = [_point(), _point(app="C-SP", eps=100_000)]
    rc = _run(tmp_path, _doc(two), _doc([_point()]), "--allow-missing")
    assert rc == 0
    assert "[skip]" in capsys.readouterr().out


def test_all_points_missing_is_error_even_with_allow_missing(tmp_path):
    """--allow-missing can skip points, but comparing nothing never passes."""
    rc = _run(tmp_path, _doc([_point()]),
              _doc([_point(app="C-SP")]), "--allow-missing")
    assert rc == 2


@pytest.mark.parametrize("eps", [0, 0.0, -5.0, None])
def test_zero_or_bad_baseline_events_per_s_is_config_error(tmp_path, eps, capsys):
    """events_per_s == 0 in the baseline made every drop compute as 0%
    — the gate could never fire.  Now it's a gate-configuration error."""
    base = _doc([_point(eps=eps)])
    rc = _run(tmp_path, base, _doc([_point(eps=100.0)]))
    assert rc == 2
    assert "events_per_s" in capsys.readouterr().err


def test_missing_events_per_s_field_is_config_error(tmp_path):
    p = _point()
    del p["events_per_s"]
    rc = _run(tmp_path, _doc([p]), _doc([_point()]))
    assert rc == 2


def test_warn_pct_above_fail_pct_rejected(tmp_path, capsys):
    rc = _run(tmp_path, _doc([_point()]), _doc([_point()]),
              "--warn-pct", "30", "--fail-pct", "25")
    assert rc == 2
    assert "--warn-pct" in capsys.readouterr().err


def test_warn_pct_equal_fail_pct_allowed(tmp_path):
    rc = _run(tmp_path, _doc([_point()]), _doc([_point()]),
              "--warn-pct", "25", "--fail-pct", "25")
    assert rc == 0


def test_no_common_points_missing_keeps_perf_failure_code(tmp_path):
    # the baseline point is missing-in-fresh: that perf failure (exit 1)
    # is not relabelled by the nothing-compared check
    rc = _run(tmp_path, _doc([_point()]), _doc([_point(app="C-SP")]))
    assert rc == 1


def test_no_common_points_without_failures_is_config_error(tmp_path):
    # both docs empty: nothing failed, but comparing nothing never passes
    rc = _run(tmp_path, _doc([]), _doc([]))
    assert rc == 2


def test_fresh_only_point_reported_not_failed(tmp_path, capsys):
    rc = _run(tmp_path, _doc([_point()]),
              _doc([_point(), _point(app="C-SP")]))
    assert rc == 0
    assert "[new]" in capsys.readouterr().out


def test_unreadable_input_is_config_error(tmp_path):
    fresh = _write(tmp_path, "fresh.json", _doc([_point()]))
    with pytest.raises(SystemExit) as exc:
        gate.main([str(tmp_path / "nope.json"), fresh])
    assert exc.value.code == 2


def test_non_engine_document_is_config_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
    fresh = _write(tmp_path, "fresh.json", _doc([_point()]))
    with pytest.raises(SystemExit) as exc:
        gate.main([str(bad), fresh])
    assert exc.value.code == 2
