"""Property-based tests for the event engine, servers and MSHRs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.mshr import MSHRFile
from repro.sim.engine import Engine
from repro.sim.resources import Server


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_events_observed_in_nondecreasing_time(self, times):
        eng = Engine()
        observed = []
        for t in times:
            eng.schedule(t, lambda _t: observed.append(eng.now), None)
        eng.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_final_time_is_max(self, times):
        eng = Engine()
        for t in times:
            eng.schedule(t, lambda _x: None, None)
        assert eng.run() == max(times)


class TestServerProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e4),
                st.integers(min_value=1, max_value=8),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_service_conservation(self, arrivals):
        """Completions are spaced by at least the service time, and total
        busy time equals the sum of occupancies."""
        s = Server("s", service=2.0, latency=5.0)
        arrivals = sorted(arrivals)
        completions = []
        total_size = 0
        for t, size in arrivals:
            completions.append(s.reserve(t, size))
            total_size += size
        assert s.busy_cycles == 2.0 * total_size
        for (t0, sz0), (c0, c1) in zip(arrivals, zip(completions, completions[1:])):
            assert c1 >= c0  # FIFO order preserved for sorted arrivals
        for (t, size), c in zip(arrivals, completions):
            assert c >= t + 2.0 * size + 5.0  # never faster than unloaded


class TestMSHRProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 10)), min_size=1, max_size=300
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_waiter_conservation(self, events):
        """Every allocated waiter is returned by exactly one release, and
        stalled waiters are all recoverable."""
        m = MSHRFile(4, max_merged=4)
        token = 0
        accepted, released, stalled_out = [], [], []
        outstanding = set()
        for is_alloc, line in events:
            if is_alloc:
                outcome = m.allocate(line, token)
                if outcome in ("new", "merged"):
                    accepted.append(token)
                    outstanding.add(line)
                token += 1
            else:
                if line in outstanding and m.outstanding(line):
                    released.extend(m.release(line))
                    outstanding.discard(line)
        # Drain remaining entries and the stall queue.
        for line in list(outstanding):
            if m.outstanding(line):
                released.extend(m.release(line))
        while m.has_stalled():
            stalled_out.append(m.pop_stalled())
        assert sorted(released) == sorted(accepted)
        assert len(set(stalled_out) & set(accepted)) == 0
        assert m.primary_misses + m.secondary_misses == len(accepted)

    @given(st.integers(1, 8), st.lists(st.integers(0, 6), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_bounded(self, entries, lines):
        m = MSHRFile(entries)
        for tok, line in enumerate(lines):
            m.allocate(line, tok)
            assert len(m) <= entries
        assert m.peak_occupancy <= entries
