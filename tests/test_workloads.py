"""Unit tests for workload profiles, regions, generation and the suite."""

import numpy as np
import pytest

from repro.gpu.request import AccessKind
from repro.workloads import regions
from repro.workloads.generator import generate_workload
from repro.workloads.profile import AppProfile
from repro.workloads.suite import (
    APP_NAMES,
    POOR_PERFORMING,
    REPLICATION_SENSITIVE,
    all_apps,
    get_app,
    replication_insensitive_apps,
    replication_sensitive_apps,
)


class TestProfileValidation:
    def base(self, **kw):
        defaults = dict(name="p", shared_lines=100, shared_fraction=0.5)
        defaults.update(kw)
        return AppProfile(**defaults)

    def test_valid_profile(self):
        p = self.base()
        assert p.total_accesses == p.num_ctas * p.accesses_per_cta

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            self.base(shared_fraction=1.2)
        with pytest.raises(ValueError):
            self.base(shared_fraction=0.7, neighbor_fraction=0.5)
        with pytest.raises(ValueError):
            self.base(store_fraction=0.5, atomic_fraction=0.4, bypass_fraction=0.2)

    def test_shared_needs_lines(self):
        with pytest.raises(ValueError):
            AppProfile(name="p", shared_fraction=0.5, shared_lines=0)

    def test_name_required(self):
        with pytest.raises(ValueError):
            AppProfile(name="")

    def test_seed_deterministic_per_name(self):
        assert self.base().seed == self.base().seed
        assert self.base(name="a").seed != self.base(name="b").seed

    def test_trace_variants_change_seed_only(self):
        p = self.base()
        v1 = p.variant(1)
        assert v1.seed != p.seed
        assert v1.name == p.name
        assert v1.shared_lines == p.shared_lines
        assert p.variant(0) == p
        with pytest.raises(ValueError):
            p.variant(-1)

    def test_variant_traces_differ_but_share_shape(self):
        from repro.workloads.generator import generate_workload
        import numpy as np

        p = self.base(num_ctas=8)
        w0 = generate_workload(p)
        w1 = generate_workload(p.variant(1))
        assert w0.total_accesses == w1.total_accesses
        assert any(
            not np.array_equal(a.lines, b.lines)
            for a, b in zip(w0.streams, w1.streams)
        )

    def test_scaled(self):
        p = self.base(num_ctas=100)
        assert p.scaled(0.5).num_ctas == 50
        assert p.scaled(1.0) is p
        assert p.scaled(0.001).num_ctas == 1  # never zero
        with pytest.raises(ValueError):
            p.scaled(0.0)

    def test_imbalance_bounds(self):
        with pytest.raises(ValueError):
            self.base(imbalance=1.0)


class TestRegions:
    def test_regions_are_disjoint(self):
        shared = regions.shared_line(10**6)
        camp = regions.camp_line(10**4, 39, shared=True)
        campp = regions.camp_line(10**4, 39, shared=False)
        nb = regions.neighbor_window(10**4, 64)
        priv = regions.private_window(10**4, 1024)
        values = [shared, camp, campp, nb, priv]
        assert len(set(values)) == len(values)
        assert shared < regions.CAMP_BASE <= camp < regions.CAMP_PRIVATE_BASE
        assert campp < regions.NEIGHBOR_BASE <= nb < regions.PRIVATE_BASE <= priv

    def test_neighbor_windows_overlap_halfway(self):
        a = regions.neighbor_window(0, 64)
        b = regions.neighbor_window(1, 64)
        assert b - a == 32

    def test_camp_lines_restrict_residues(self):
        lines = [regions.camp_line(k, r, True) for k in range(10) for r in range(4)]
        assert {l % regions.CAMP_MODULUS for l in lines} == {0, 1, 2, 3}


class TestGenerator:
    def prof(self, **kw):
        defaults = dict(
            name="gen", num_ctas=16, accesses_per_cta=64,
            shared_lines=100, shared_fraction=0.5,
            private_lines=64, block_lines=8, block_repeats=2,
        )
        defaults.update(kw)
        return AppProfile(**defaults)

    def test_deterministic(self):
        w1 = generate_workload(self.prof())
        w2 = generate_workload(self.prof())
        for s1, s2 in zip(w1.streams, w2.streams):
            assert np.array_equal(s1.lines, s2.lines)
            assert np.array_equal(s1.kinds, s2.kinds)

    def test_stream_lengths(self):
        w = generate_workload(self.prof())
        assert all(len(s) == 64 for s in w.streams)
        assert w.total_accesses == 16 * 64

    def test_scale_cuts_ctas(self):
        w = generate_workload(self.prof(), scale=0.5)
        assert w.num_ctas == 8

    def test_block_repeats_create_reuse(self):
        w = generate_workload(self.prof(block_repeats=4))
        s = w.streams[0]
        unique = len(np.unique(s.lines))
        assert unique < len(s) / 2  # heavy intra-stream reuse

    def test_addresses_in_expected_regions(self):
        w = generate_workload(self.prof())
        for s in w.streams:
            for line in s.lines:
                in_shared = 0 <= line < 100
                priv_base = regions.private_window(s.cta_id, 64)
                in_private = priv_base <= line < priv_base + 64
                assert in_shared or in_private

    def test_store_fraction_roughly_respected(self):
        w = generate_workload(self.prof(store_fraction=0.3, num_ctas=64))
        kinds = np.concatenate([s.kinds for s in w.streams])
        frac = np.mean(kinds == int(AccessKind.STORE))
        assert 0.2 < frac < 0.4

    def test_camping_restricts_home_residues(self):
        w = generate_workload(
            self.prof(camp_fraction=1.0, camp_width=4, camp_shared=True,
                      shared_fraction=1.0)
        )
        lines = np.concatenate([s.lines for s in w.streams])
        camp_lines = lines[lines >= regions.CAMP_BASE]
        assert len(camp_lines) > 0
        assert set(np.unique(camp_lines % regions.CAMP_MODULUS)) <= {0, 1, 2, 3}

    def test_private_camping_disjoint_across_ctas(self):
        w = generate_workload(
            self.prof(camp_fraction=1.0, camp_width=4, camp_shared=False,
                      shared_fraction=0.0)
        )
        sets = [set(s.lines.tolist()) for s in w.streams[:4]]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (sets[i] & sets[j])

    def test_shared_locality_stays_in_region(self):
        w = generate_workload(self.prof(shared_locality=0.8, private_lines=8,
                                        shared_fraction=0.9))
        for s in w.streams:
            shared = s.lines[s.lines < 100]
            assert len(shared) > 0
            assert (shared >= 0).all() and (shared < 100).all()

    def test_shared_locality_correlates_neighbors(self):
        """Adjacent CTAs overlap more than distant CTAs in their shared
        footprints when locality is on."""
        prof = self.prof(shared_locality=0.9, num_ctas=32, accesses_per_cta=96,
                         shared_fraction=1.0, shared_lines=400)
        w = generate_workload(prof)

        def shared_set(k):
            return set(w.streams[k].lines[w.streams[k].lines < 400].tolist())

        def overlap(a, b):
            return len(a & b) / max(1, len(a | b))

        near = overlap(shared_set(0), shared_set(1))
        far = overlap(shared_set(0), shared_set(31))
        assert near > far

    def test_shared_locality_validation(self):
        with pytest.raises(ValueError):
            self.prof(shared_locality=1.0)

    def test_core_weights(self):
        w = generate_workload(self.prof(imbalance=0.5))
        weights = w.core_weights(4)
        assert len(weights) == 4
        assert weights[0] == pytest.approx(0.5)
        assert weights[-1] == pytest.approx(1.5)
        assert generate_workload(self.prof()).core_weights(4) is None

    def test_distinct_lines(self):
        w = generate_workload(self.prof())
        assert 0 < w.distinct_lines() <= w.total_accesses


class TestSuite:
    def test_28_applications(self):
        assert len(APP_NAMES) == 28
        assert len(all_apps()) == 28
        assert len(set(APP_NAMES)) == 28

    def test_12_sensitive_16_insensitive(self):
        assert len(REPLICATION_SENSITIVE) == 12
        assert len(replication_sensitive_apps()) == 12
        assert len(replication_insensitive_apps()) == 16

    def test_poor_performers_are_insensitive(self):
        assert len(POOR_PERFORMING) == 5
        assert not set(POOR_PERFORMING) & set(REPLICATION_SENSITIVE)

    def test_five_suites_present(self):
        prefixes = {n.split("-")[0] for n in APP_NAMES}
        assert prefixes == {"C", "R", "S", "P", "T"}

    def test_get_app(self):
        assert get_app("T-AlexNet").name == "T-AlexNet"
        with pytest.raises(KeyError):
            get_app("Z-Nope")

    def test_all_profiles_generate(self):
        for prof in all_apps():
            w = generate_workload(prof, scale=0.02)
            assert w.total_accesses > 0
