"""Property-based end-to-end tests: random small workloads through random
designs must conserve requests and satisfy every audit invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.system import GPUSystem
from repro.sim.validation import audit
from repro.workloads.profile import AppProfile

TINY_GPU = GPUConfig(num_cores=8, num_l2_slices=4, num_channels=2)

designs = st.sampled_from(
    [
        DesignSpec.baseline(),
        DesignSpec.private(4),
        DesignSpec.shared(4),
        DesignSpec.clustered(4, 2),
        DesignSpec.clustered(4, 2, boost=2.0),
        DesignSpec.single_l1(),
    ]
)

profiles = st.builds(
    AppProfile,
    name=st.sampled_from(["prop-a", "prop-b"]),
    num_ctas=st.integers(1, 24),
    accesses_per_cta=st.integers(1, 48),
    wavefront_slots=st.integers(1, 4),
    compute_gap=st.sampled_from([1.0, 3.0]),
    mlp=st.integers(1, 3),
    shared_lines=st.integers(16, 128),
    shared_fraction=st.floats(0.0, 0.9),
    private_lines=st.integers(8, 64),
    block_lines=st.integers(1, 16),
    block_repeats=st.integers(1, 3),
    store_fraction=st.floats(0.0, 0.3),
    atomic_fraction=st.floats(0.0, 0.2),
    bypass_fraction=st.floats(0.0, 0.2),
    camp_fraction=st.floats(0.0, 1.0),
    camp_width=st.integers(1, 8),
    imbalance=st.floats(0.0, 0.8),
)


class TestSystemProperties:
    @given(profiles, designs)
    @settings(max_examples=40, deadline=None)
    def test_every_run_audits_clean(self, profile, spec):
        system = GPUSystem(profile, spec, SimConfig(gpu=TINY_GPU))
        system.run()
        assert audit(system) == []

    @given(profiles)
    @settings(max_examples=15, deadline=None)
    def test_shared_never_slower_to_zero(self, profile):
        """Sanity: every design completes with finite, positive IPC."""
        for spec in (DesignSpec.baseline(), DesignSpec.shared(4)):
            res = GPUSystem(profile, spec, SimConfig(gpu=TINY_GPU)).run()
            assert res.ipc > 0
            assert res.cycles < 10_000_000

    @given(profiles, designs)
    @settings(max_examples=15, deadline=None)
    def test_determinism_across_runs(self, profile, spec):
        cfg = SimConfig(gpu=TINY_GPU)
        a = GPUSystem(profile, spec, cfg).run()
        b = GPUSystem(profile, spec, cfg).run()
        assert a.cycles == b.cycles
        assert a.l1.misses == b.l1.misses
        assert a.total_flit_hops == b.total_flit_hops
