"""Unit tests for the CACTI-like cache-area and NoC energy models."""

import pytest

from repro.core.designs import DesignSpec
from repro.power.cacti import (
    cache_area_mm2,
    dcl1_node_queue_bytes,
    l1_level_area_report,
)
from repro.power.energy import EnergyModel
from repro.sim.results import SimResult

TOTAL_L1 = 80 * 16 * 1024


class TestCacti:
    def test_fewer_banks_save_paper_fraction(self):
        base = cache_area_mm2(TOTAL_L1, 80, TOTAL_L1)
        agg = cache_area_mm2(TOTAL_L1, 40, TOTAL_L1)
        assert agg / base == pytest.approx(0.92, abs=0.005)

    def test_area_monotone_in_capacity(self):
        assert cache_area_mm2(2 * TOTAL_L1, 80, TOTAL_L1) > cache_area_mm2(
            TOTAL_L1, 80, TOTAL_L1
        )

    def test_queue_bytes_match_paper_overhead(self):
        # 40 nodes x 4 queues x 4 entries x 128 B = 80 KiB = 6.25% of 1.25 MiB.
        q = dcl1_node_queue_bytes(40)
        assert q / TOTAL_L1 == pytest.approx(0.0625)

    def test_report_fields(self):
        rep = l1_level_area_report(TOTAL_L1, 80, 40)
        assert rep["cache_savings_fraction"] == pytest.approx(0.08, abs=0.005)
        assert rep["queue_overhead_fraction"] == pytest.approx(0.0625)
        assert rep["net_vs_baseline"] < 1.0  # savings beat queue overhead

    def test_validation(self):
        with pytest.raises(ValueError):
            cache_area_mm2(0, 10)
        with pytest.raises(ValueError):
            cache_area_mm2(1024, 0)


class TestEnergyModel:
    def _result(self, cycles=1000.0, hops_short=1000, hops_long=500):
        r = SimResult(app="x", design="d")
        r.cycles = cycles
        r.instructions = 10_000
        r.noc_traffic = [(hops_short, 3.3, 1.0), (hops_long, 12.3, 1.0)]
        return r

    def test_requires_calibration(self):
        m = EnergyModel()
        with pytest.raises(RuntimeError):
            m.dynamic_power(self._result())

    def test_calibration_sets_baseline_ratio(self):
        m = EnergyModel()
        base = self._result()
        m.calibrate_dyn_scale(base, DesignSpec.baseline())
        b = m.breakdown(base, DesignSpec.baseline())
        assert b.dynamic / b.static == pytest.approx(0.64, rel=1e-6)

    def test_dynamic_scales_with_traffic(self):
        m = EnergyModel()
        base = self._result()
        m.calibrate_dyn_scale(base, DesignSpec.baseline())
        busy = self._result(hops_short=4000, hops_long=2000)
        assert m.dynamic_power(busy) > m.dynamic_power(base)

    def test_energy_is_power_times_time(self):
        m = EnergyModel()
        base = self._result()
        m.calibrate_dyn_scale(base, DesignSpec.baseline())
        b = m.breakdown(base, DesignSpec.baseline())
        assert b.energy == pytest.approx(b.total * base.cycles)

    def test_normalized_to(self):
        m = EnergyModel()
        base = self._result()
        m.calibrate_dyn_scale(base, DesignSpec.baseline())
        b0 = m.breakdown(base, DesignSpec.baseline())
        b1 = m.breakdown(self._result(cycles=500.0), DesignSpec.clustered(40, 10))
        norm = b1.normalized_to(b0)
        assert norm["static"] == pytest.approx(
            m.static_power(DesignSpec.clustered(40, 10))
            / m.static_power(DesignSpec.baseline())
        )
        assert norm["energy"] < norm["total"]  # shorter runtime

    def test_perf_metrics_positive(self):
        m = EnergyModel()
        base = self._result()
        m.calibrate_dyn_scale(base, DesignSpec.baseline())
        assert m.perf_per_watt(base, DesignSpec.baseline()) > 0
        assert m.perf_per_energy(base, DesignSpec.baseline()) > 0

    def test_calibration_rejects_idle_run(self):
        m = EnergyModel()
        idle = SimResult()
        idle.cycles = 100.0
        with pytest.raises(ValueError):
            m.calibrate_dyn_scale(idle, DesignSpec.baseline())
