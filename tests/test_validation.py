"""Tests for the post-run invariant auditor."""

import pytest

from repro.core.designs import DesignSpec
from repro.sim.system import GPUSystem
from repro.sim.validation import assert_clean, audit


class TestAudit:
    def test_clean_run_has_no_findings(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4), tiny_config)
        system.run()
        assert audit(system) == []
        assert_clean(system)

    def test_every_design_audits_clean(self, tiny_config, streaming_profile):
        for spec in (
            DesignSpec.baseline(),
            DesignSpec.private(8),
            DesignSpec.shared(8),
            DesignSpec.cdxbar(),
            DesignSpec.single_l1(),
            DesignSpec.baseline(perfect_l1=True),
        ):
            system = GPUSystem(streaming_profile, spec, tiny_config)
            system.run()
            assert audit(system) == [], spec.label

    def test_unrun_system_flagged(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.baseline(), tiny_config)
        findings = audit(system)
        assert any("has not run" in f for f in findings)
        with pytest.raises(AssertionError):
            assert_clean(system)

    def test_corrupted_counters_detected(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.baseline(), tiny_config)
        system.run()
        system.result.loads += 5  # fake a conservation bug
        findings = audit(system)
        assert any("issued" in f for f in findings)

    def test_replication_bound_violation_detected(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.shared(8), tiny_config)
        system.run()
        system.result.replication_ratio = 0.5  # impossible for Sh
        findings = audit(system)
        assert any("fully shared" in f for f in findings)
