"""Tests for the post-run invariant auditor and the sweep-grid
pre-flight validator."""

import dataclasses

import pytest

from repro.core.designs import DesignSpec
from repro.sim.system import GPUSystem
from repro.sim.validation import (
    GridValidationError,
    assert_clean,
    audit,
    validate_grid,
)


class TestAudit:
    def test_clean_run_has_no_findings(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4), tiny_config)
        system.run()
        assert audit(system) == []
        assert_clean(system)

    def test_every_design_audits_clean(self, tiny_config, streaming_profile):
        for spec in (
            DesignSpec.baseline(),
            DesignSpec.private(8),
            DesignSpec.shared(8),
            DesignSpec.cdxbar(),
            DesignSpec.single_l1(),
            DesignSpec.baseline(perfect_l1=True),
        ):
            system = GPUSystem(streaming_profile, spec, tiny_config)
            system.run()
            assert audit(system) == [], spec.label

    def test_unrun_system_flagged(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.baseline(), tiny_config)
        findings = audit(system)
        assert any("has not run" in f for f in findings)
        with pytest.raises(AssertionError):
            assert_clean(system)

    def test_corrupted_counters_detected(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.baseline(), tiny_config)
        system.run()
        system.result.loads += 5  # fake a conservation bug
        findings = audit(system)
        assert any("issued" in f for f in findings)

    def test_replication_bound_violation_detected(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.shared(8), tiny_config)
        system.run()
        system.result.replication_ratio = 0.5  # impossible for Sh
        findings = audit(system)
        assert any("fully shared" in f for f in findings)


class TestAuditFailurePaths:
    """Deliberately corrupt a finished system and assert each audit
    invariant fires — the auditor itself needs coverage, or a silently
    broken check hides real conservation bugs."""

    @pytest.fixture
    def finished(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4), tiny_config)
        system.run()
        return system

    def test_outstanding_requests_flagged(self, finished):
        finished.outstanding = 3
        findings = audit(finished)
        assert any("3 requests still outstanding" in f for f in findings)

    def test_undrained_event_queue_flagged(self, finished):
        # When the sanitizer is on (e.g. REPRO_SANITIZE=1 test runs) it flags
        # post-drain scheduling at the call site; detach it so this test
        # exercises the post-run audit path instead.
        finished.engine.attach_sanitizer(None)
        finished.engine.schedule(finished.engine.now + 10.0, lambda _: None)
        findings = audit(finished)
        assert any("event queue not drained" in f for f in findings)

    def test_conservation_mismatch_flagged(self, finished):
        finished.result.total_requests  # sanity: property exists
        finished.result.loads += 7  # inflate issued count past the trace
        findings = audit(finished)
        assert any("issued" in f and "trace" in f for f in findings)

    def test_missing_rtt_measurement_flagged(self, finished):
        finished.result.load_rtt_count -= 1
        findings = audit(finished)
        assert any("rtt measured for" in f for f in findings)

    def test_live_core_flagged(self, finished):
        finished.cores[0].active_wavefronts = 2
        findings = audit(finished)
        assert any("live wavefronts" in f for f in findings)

    def test_undrained_mshr_flagged(self, finished):
        from repro.cache.mshr import MSHREntry

        finished.l1_mshrs[0]._entries[0x123] = MSHREntry(0x123)
        findings = audit(finished)
        assert any("MSHR" in f and "not drained" in f for f in findings)

    def test_parked_node_request_flagged(self, tiny_config, shared_profile):
        from repro.sim.config import SimConfig

        cfg = SimConfig(gpu=tiny_config.gpu, scale=1.0, dcl1_queue_depth=4)
        system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4), cfg)
        system.run()
        system._node_waiters[0].append(object())
        findings = audit(system)
        assert any("parked requests" in f for f in findings)

    def test_write_evict_imbalance_flagged(self, finished):
        finished.result.l1.write_evicts += 1
        findings = audit(finished)
        assert any("write-evict accounting broken" in f for f in findings)

    def test_over_capacity_flagged(self, finished):
        cache = finished.l1_caches[0]
        for line in range(0, (cache.num_lines + cache.num_sets) * cache.num_sets,
                          cache.num_sets):
            cache._sets[0].insert(line)
        findings = audit(finished)
        assert any("over capacity" in f for f in findings)

    def test_utilization_out_of_range_flagged(self, finished):
        finished.result.dram_util_mean = 1.5
        findings = audit(finished)
        assert any("dram_util_mean out of [0,1]" in f for f in findings)

    def test_assert_clean_lists_every_finding(self, finished):
        finished.outstanding = 1
        finished.result.dram_util_mean = -0.1
        with pytest.raises(AssertionError) as exc:
            assert_clean(finished)
        msg = str(exc.value)
        assert "still outstanding" in msg
        assert "dram_util_mean" in msg


class TestValidateGrid:
    """Pre-flight validation of resolved (profile, spec, config) grids."""

    @pytest.fixture
    def point(self, tiny_config, shared_profile):
        return (shared_profile, DesignSpec.shared(8), tiny_config)

    def test_valid_grid_returns_keys(self, point, tiny_config, shared_profile):
        other = (shared_profile, DesignSpec.baseline(), tiny_config)
        keys = validate_grid([point, other])
        assert len(keys) == 2 and keys[0] != keys[1]
        assert all(isinstance(k, str) and len(k) == 64 for k in keys)

    def test_non_tuple_point_rejected(self, point):
        with pytest.raises(GridValidationError, match="triple"):
            validate_grid([point, "not-a-point"])

    def test_wrong_types_rejected(self, point, tiny_config, shared_profile):
        bad = (tiny_config, DesignSpec.shared(8), shared_profile)  # swapped
        with pytest.raises(GridValidationError) as exc:
            validate_grid([bad])
        msg = str(exc.value)
        assert "profile is SimConfig" in msg and "config is AppProfile" in msg

    def test_nonpositive_scale_rejected(self, point):
        profile, spec, cfg = point
        bad = (profile, spec, dataclasses.replace(cfg, scale=0.0))
        with pytest.raises(GridValidationError, match="scale must be > 0"):
            validate_grid([bad])

    def test_duplicates_rejected_with_indices(self, point, tiny_config,
                                              shared_profile):
        other = (shared_profile, DesignSpec.baseline(), tiny_config)
        with pytest.raises(GridValidationError) as exc:
            validate_grid([point, other, point])
        assert "point 2" in str(exc.value) and "duplicates point 0" in str(exc.value)
        assert "sim_cache_key" in str(exc.value)

    def test_collapse_mode_allows_duplicates(self, point):
        keys = validate_grid([point, point], on_duplicate="collapse")
        assert keys[0] == keys[1]

    def test_all_problems_accumulate(self, point, tiny_config, shared_profile):
        profile, spec, cfg = point
        bad_scale = (profile, DesignSpec.baseline(),
                     dataclasses.replace(cfg, scale=-1.0))
        with pytest.raises(GridValidationError) as exc:
            validate_grid([point, bad_scale, point, ()])
        problems = exc.value.problems
        assert len(problems) == 3  # bad scale + duplicate + bad shape
        assert any("scale" in p for p in problems)
        assert any("duplicates" in p for p in problems)

    def test_bad_mode_rejected(self, point):
        with pytest.raises(ValueError, match="on_duplicate"):
            validate_grid([point], on_duplicate="whatever")
