"""Unit tests for the set-associative cache (functional model)."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.directory import ReplicationDirectory


def make_cache(**kw):
    defaults = dict(name="c", size_bytes=4096, assoc=4, line_bytes=128)
    defaults.update(kw)
    return SetAssociativeCache(**defaults)


class TestGeometry:
    def test_sets_and_lines(self):
        c = make_cache()  # 4096 / (4*128) = 8 sets
        assert c.num_sets == 8
        assert c.num_lines == 32

    def test_set_index_wraps(self):
        c = make_cache()
        assert c.set_index(0) == 0
        assert c.set_index(9) == 1
        assert c.set_index(8) == 0

    def test_index_divisor_strips_slice_bits(self):
        # An address-sliced cache seeing only lines = 8k + 3.
        c = make_cache(index_divisor=8)
        seen = {c.set_index(8 * k + 3) for k in range(64)}
        assert seen == set(range(c.num_sets))  # all sets usable

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            make_cache(size_bytes=4000)  # not multiple of assoc*line
        with pytest.raises(ValueError):
            make_cache(line_bytes=100)
        with pytest.raises(ValueError):
            make_cache(assoc=0)
        with pytest.raises(ValueError):
            make_cache(size_bytes=3 * 4 * 128)  # 3 sets: not a power of two
        with pytest.raises(ValueError):
            make_cache(index_divisor=0)


class TestLoads:
    def test_miss_then_install_then_hit(self):
        c = make_cache()
        assert not c.access_load(5)
        assert c.install(5) is None
        assert c.access_load(5)
        assert c.stats.load_misses == 1
        assert c.stats.load_hits == 1

    def test_miss_does_not_install(self):
        c = make_cache()
        c.access_load(5)
        assert not c.contains(5)

    def test_eviction_on_full_set(self):
        c = make_cache()  # 4-way
        lines = [0, 8, 16, 24, 32]  # all map to set 0
        for line in lines[:4]:
            c.install(line)
        victim = c.install(lines[4])
        assert victim == 0  # LRU
        assert not c.contains(0)
        assert c.stats.evictions == 1

    def test_install_existing_line_is_noop(self):
        c = make_cache()
        c.install(5)
        assert c.install(5) is None
        assert c.stats.installs == 1

    def test_occupancy_never_exceeds_capacity(self):
        c = make_cache()
        for line in range(200):
            c.install(line)
        assert c.occupancy() <= c.num_lines


class TestStores:
    def test_write_evict_on_hit(self):
        c = make_cache()
        c.install(7)
        assert c.access_store(7)
        assert not c.contains(7)  # write-evict
        assert c.stats.store_hits == 1
        assert c.stats.write_evicts == 1

    def test_no_write_allocate_on_miss(self):
        c = make_cache()
        assert not c.access_store(7)
        assert not c.contains(7)
        assert c.stats.store_misses == 1


class TestPerfect:
    def test_perfect_cache_always_hits(self):
        c = make_cache(perfect=True)
        assert c.access_load(123456)
        assert c.access_store(999)
        assert c.stats.misses == 0
        assert c.install(1) is None
        assert c.occupancy() == 0


class TestInvalidateAndFlush:
    def test_invalidate(self):
        c = make_cache()
        c.install(3)
        assert c.invalidate(3)
        assert not c.invalidate(3)
        assert not c.contains(3)

    def test_flush_drops_everything(self):
        c = make_cache()
        for line in range(10):
            c.install(line)
        assert c.flush() == 10
        assert c.occupancy() == 0


class TestDirectoryIntegration:
    def test_install_and_evict_update_directory(self):
        d = ReplicationDirectory()
        c0 = make_cache(cache_id=0, directory=d)
        c1 = make_cache(cache_id=1, directory=d)
        c0.install(5)
        c1.install(5)
        assert d.copies(5) == 2
        c0.invalidate(5)
        assert d.copies(5) == 1

    def test_replicated_miss_counting(self):
        d = ReplicationDirectory()
        c0 = make_cache(cache_id=0, directory=d)
        c1 = make_cache(cache_id=1, directory=d)
        c0.install(5)
        c1.access_load(5)  # miss, but resident in c0
        assert c1.stats.replicated_misses == 1
        c1.access_load(6)  # miss, resident nowhere
        assert c1.stats.replicated_misses == 1

    def test_own_copy_does_not_count_as_replica(self):
        d = ReplicationDirectory()
        c0 = make_cache(cache_id=0, directory=d)
        c0.install(5)
        # Contrived: line resident in c0 itself only; a store miss on a
        # different line must not count it.
        c0.access_store(5)  # hit (write-evict)
        assert c0.stats.replicated_misses == 0


class TestStatsMerge:
    def test_merge_accumulates(self):
        c0, c1 = make_cache(), make_cache()
        c0.access_load(1)
        c1.access_load(1)
        c1.install(1)
        c1.access_load(1)
        c0.stats.merge(c1.stats)
        assert c0.stats.load_misses == 2
        assert c0.stats.load_hits == 1
        assert c0.stats.installs == 1

    def test_miss_rate_empty_cache(self):
        c = make_cache()
        assert c.stats.miss_rate == 0.0
        assert c.stats.load_miss_rate == 0.0
