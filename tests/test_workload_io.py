"""Unit tests for workload serialization and external-trace adapters."""

import numpy as np
import pytest

from repro.gpu.request import AccessKind
from repro.workloads.external import (
    timing_profile,
    workload_from_arrays,
    workload_from_streams,
)
from repro.workloads.generator import generate_workload
from repro.workloads.io import load_csv, load_npz, save_csv, save_npz
from repro.workloads.profile import AppProfile


@pytest.fixture
def workload():
    prof = AppProfile(
        name="io-test", num_ctas=12, accesses_per_cta=32,
        shared_lines=64, shared_fraction=0.6, store_fraction=0.2,
        private_lines=32, block_lines=4, block_repeats=2,
    )
    return generate_workload(prof)


def assert_same_workload(a, b):
    assert a.profile == b.profile
    assert a.num_ctas == b.num_ctas
    for sa, sb in zip(a.streams, b.streams):
        assert sa.cta_id == sb.cta_id
        assert np.array_equal(sa.lines, sb.lines)
        assert np.array_equal(sa.kinds, sb.kinds)


class TestNpzRoundTrip:
    def test_round_trip(self, workload, tmp_path):
        path = tmp_path / "w.npz"
        save_npz(workload, path)
        assert_same_workload(workload, load_npz(path))

    def test_preserves_profile_fields(self, workload, tmp_path):
        path = tmp_path / "w.npz"
        save_npz(workload, path)
        loaded = load_npz(path)
        assert loaded.profile.wavefront_slots == workload.profile.wavefront_slots
        assert loaded.profile.mlp == workload.profile.mlp


class TestCsvRoundTrip:
    def test_round_trip(self, workload, tmp_path):
        path = tmp_path / "w.csv"
        save_csv(workload, path)
        assert_same_workload(workload, load_csv(path))

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "w.csv"
        path.write_text("cta,index,line,kind\n0,0,1,0\n")
        with pytest.raises(ValueError, match="profile header"):
            load_csv(path)


class TestExternalStreams:
    def test_plain_line_streams(self):
        w = workload_from_streams([[1, 2, 3], [4, 5]], name="x")
        assert w.num_ctas == 2
        assert w.streams[0].lines.tolist() == [1, 2, 3]
        assert w.profile.name == "x"
        assert w.profile.num_ctas == 2

    def test_byte_addresses_converted(self):
        w = workload_from_streams([[256, 384]], unit="bytes", line_bytes=128)
        assert w.streams[0].lines.tolist() == [2, 3]

    def test_named_kinds(self):
        w = workload_from_streams([([1, 2, 3], ["load", "store", "atomic"])])
        assert w.streams[0].kinds.tolist() == [
            int(AccessKind.LOAD), int(AccessKind.STORE), int(AccessKind.ATOMIC)
        ]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            workload_from_streams([])
        with pytest.raises(ValueError):
            workload_from_streams([[]])
        with pytest.raises(ValueError):
            workload_from_streams([[-1]])
        with pytest.raises(ValueError):
            workload_from_streams([([1], ["fetch"])])
        with pytest.raises(ValueError):
            workload_from_streams([([1], [9])])
        with pytest.raises(ValueError):
            workload_from_streams([[1]], unit="pages")

    def test_timing_profile_carries_knobs(self):
        p = timing_profile("t", wavefront_slots=4, compute_gap=2.0, mlp=5,
                           request_bytes=64)
        assert (p.wavefront_slots, p.compute_gap, p.mlp, p.request_bytes) == (4, 2.0, 5, 64)


class TestExternalArrays:
    def test_groups_by_cta_preserving_order(self):
        lines = np.array([10, 20, 30, 40, 50])
        cta = np.array([1, 0, 1, 0, 1])
        w = workload_from_arrays(lines, cta)
        assert w.streams[0].lines.tolist() == [20, 40]
        assert w.streams[1].lines.tolist() == [10, 30, 50]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            workload_from_arrays(np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError):
            workload_from_arrays(np.array([1]), np.array([0]), kinds=np.array([0, 1]))


class TestExternalSimulation:
    def test_external_workload_simulates(self, tiny_config):
        """An externally built trace runs through the full system."""
        from repro.core.designs import DesignSpec
        from repro.sim.system import simulate

        rng = np.random.default_rng(7)
        streams = [rng.integers(0, 128, size=40).tolist() for _ in range(32)]
        w = workload_from_streams(streams, name="ext", wavefront_slots=4)
        res = simulate(w, DesignSpec.clustered(8, 4), tiny_config)
        assert res.total_requests == sum(len(s) for s in streams)
