"""Unit tests for the SimResult container."""

import pytest

from repro.sim.results import SimResult


def make(app="a", design="d", cycles=100.0, instructions=500, **kw):
    r = SimResult(app=app, design=design)
    r.cycles = cycles
    r.instructions = instructions
    for k, v in kw.items():
        setattr(r, k, v)
    return r


class TestDerivedMetrics:
    def test_ipc(self):
        assert make().ipc == 5.0
        assert make(cycles=0.0).ipc == 0.0

    def test_speedup(self):
        base = make()
        fast = make(cycles=50.0)
        assert fast.speedup_vs(base) == pytest.approx(2.0)

    def test_speedup_requires_same_app(self):
        with pytest.raises(ValueError):
            make(app="a").speedup_vs(make(app="b"))

    def test_speedup_zero_baseline(self):
        with pytest.raises(ZeroDivisionError):
            make().speedup_vs(make(cycles=0.0))

    def test_rtt_mean(self):
        r = make(load_rtt_sum=300.0, load_rtt_count=3)
        assert r.load_rtt_mean == 100.0
        assert make().load_rtt_mean == 0.0

    def test_miss_rate_vs(self):
        a, b = make(), make()
        a.l1.load_hits, a.l1.load_misses = 50, 50
        b.l1.load_hits, b.l1.load_misses = 75, 25
        assert b.miss_rate_vs(a) == pytest.approx(0.5)

    def test_miss_rate_vs_zero_baseline(self):
        a, b = make(), make()
        a.l1.load_hits = 10  # 0% miss
        b.l1.load_hits = 10
        assert b.miss_rate_vs(a) == 1.0
        b.l1.load_misses = 5
        assert b.miss_rate_vs(a) == float("inf")

    def test_total_requests_and_flit_hops(self):
        r = make(loads=10, stores=5, atomics=2, bypasses=1)
        r.noc_traffic = [(100, 3.3, 2.0), (50, 12.3, 1.0)]
        assert r.total_requests == 18
        assert r.total_flit_hops == 150

    def test_as_dict_and_str(self):
        d = make().as_dict()
        assert d["app"] == "a" and d["ipc"] == 5.0
        assert "ipc" in str(make())
