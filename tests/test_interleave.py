"""Unit tests for address interleaving."""

import pytest

from repro.mem.interleave import AddressMap


@pytest.fixture
def amap():
    return AddressMap(line_bytes=128, num_l2_slices=32, num_channels=16)


class TestLineMapping:
    def test_line_of_and_inverse(self, amap):
        assert amap.line_of(0) == 0
        assert amap.line_of(127) == 0
        assert amap.line_of(128) == 1
        assert amap.addr_of_line(5) == 640
        assert amap.line_of(amap.addr_of_line(12345)) == 12345

    def test_line_bits(self, amap):
        assert amap.line_bits == 7


class TestSliceMapping:
    def test_line_interleaved(self, amap):
        assert amap.l2_slice_of_line(0) == 0
        assert amap.l2_slice_of_line(31) == 31
        assert amap.l2_slice_of_line(32) == 0

    def test_addr_and_line_consistent(self, amap):
        for line in (0, 7, 100, 12345):
            assert amap.l2_slice_of(amap.addr_of_line(line)) == amap.l2_slice_of_line(line)

    def test_all_slices_reachable(self, amap):
        assert {amap.l2_slice_of_line(l) for l in range(64)} == set(range(32))


class TestChannelMapping:
    def test_contiguous_grouping(self, amap):
        # 32 slices / 16 channels = 2 slices per channel.
        assert amap.channel_of_slice(0) == 0
        assert amap.channel_of_slice(1) == 0
        assert amap.channel_of_slice(2) == 1
        assert amap.channel_of_slice(31) == 15

    def test_channel_of_addr(self, amap):
        addr = amap.addr_of_line(33)  # slice 1 -> channel 0
        assert amap.channel_of(addr) == 0


class TestValidation:
    def test_line_bytes_power_of_two(self):
        with pytest.raises(ValueError):
            AddressMap(100, 32, 16)

    def test_channels_divide_slices(self):
        with pytest.raises(ValueError):
            AddressMap(128, 32, 5)

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            AddressMap(128, 0, 1)
