"""Tests for the markdown comparison report."""

import pytest

from repro.analysis.report import comparison_report
from repro.core.designs import DesignSpec
from repro.sim.results import SimResult
from repro.sim.system import simulate


def make(app="a", design="d", cycles=100.0, instructions=1000):
    r = SimResult(app=app, design=design)
    r.cycles = cycles
    r.instructions = instructions
    r.l1.load_hits = 30
    r.l1.load_misses = 70
    r.mean_replicas = 5.0
    r.load_rtt_sum = 2000.0
    r.load_rtt_count = 10
    return r


class TestReport:
    def test_contains_all_designs_and_speedups(self):
        base = make(design="Baseline")
        fast = make(design="Boost", cycles=50.0)
        fast.l1.load_hits, fast.l1.load_misses = 90, 10
        fast.mean_replicas = 1.0
        text = comparison_report([base, fast])
        assert "# a: design comparison" in text
        assert "| Baseline | 1.00x" in text
        assert "| Boost | 2.00x" in text
        assert "## What moved" in text
        assert "miss rate fell" in text
        assert "Replication shrank" in text

    def test_rejects_mixed_apps(self):
        with pytest.raises(ValueError):
            comparison_report([make(app="a"), make(app="b")])

    def test_needs_two_runs(self):
        with pytest.raises(ValueError):
            comparison_report([make()])

    def test_zero_ipc_baseline_rejected(self):
        bad = make()
        bad.instructions = 0
        with pytest.raises(ValueError):
            comparison_report([bad, make()])

    def test_end_to_end_with_real_runs(self, tiny_config, shared_profile):
        base = simulate(shared_profile, DesignSpec.baseline(), tiny_config)
        sh = simulate(shared_profile, DesignSpec.shared(8), tiny_config)
        text = comparison_report([base, sh])
        assert "Sh8" in text
        assert "x |" in text
