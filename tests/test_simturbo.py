"""SimTurbo regression suite: the hot-path overhaul must be invisible.

Three layers of protection:

1. **Golden seed fingerprints** — SHA-256 hashes of
   :meth:`~repro.sim.results.SimResult.fingerprint` captured on the
   pre-SimTurbo tree (request pooling, prebound routes, batched counters
   and the fast drain loop did not exist yet).  Today's pooled fast path
   must reproduce them bit-exactly.
2. **Cross-instrumentation identity** — one real Figure-8 grid point run
   plain / sanitized / watchdog / shadow-shuffled / profiled must yield
   one fingerprint: instrumentation observes, it never steers.
3. **Fast/slow component equivalence** — ``reserve_fast`` /
   ``traverse_fast`` / ``make_fast_routes`` / ``make_fast_home_of``
   replicate their instrumented counterparts' float arithmetic exactly,
   not approximately.
"""

import hashlib
import json

import pytest

from repro.core.designs import DesignSpec
from repro.sim.config import SimConfig
from repro.sim.profiler import profile_simulation
from repro.sim.system import GPUSystem, simulate
from repro.workloads.suite import get_app

# SHA-256 of the canonical JSON fingerprint, captured on the seed tree
# (commit 23318a7, before the SimTurbo hot path existed).
GOLDEN = {
    ("T-AlexNet", "Baseline", 0.1):
        "346bb653f9389aa92f7a951cf0e5938258b6820ea0e9f7fa0e67dcd729afd147",
    ("T-AlexNet", "Sh40", 0.1):
        "c524fbec40fb167d91ffab96c349817b5834234fa8c862c1caaa802186b757a6",
    ("P-2MM", "Sh40", 0.1):
        "cf3e4827658dcd9bfd1244a073b898170d9e2b3d91ad4b35ac9f97279204e794",
    ("P-2MM", "Sh40+C10+Boost", 0.1):
        "41fd6bac713880cf23a42798c89f33ca9c4993d2b7ed7949b0db33c75cbf727a",
    ("C-NN", "Pr40", 0.1):
        "3d7420f339d77165d82b1d6bfd1e37a47a83d9921a589796dfa392d6cd8538e4",
    # Decoupled clustered point (exercises the closure-mode fast homing
    # and the clustered crossbar route twins); captured when SimHeat
    # landed, after force_slow_path() verified fast == slow bit-exactly.
    ("C-SP", "Sh40+C10", 0.1):
        "1ecc857dbe6d98ba36ad8122f1dce347a78e24c2679ddfc7938688327321a512",
}

DESIGNS = {
    "Baseline": DesignSpec.baseline(),
    "Sh40": DesignSpec.shared(40),
    "Pr40": DesignSpec.private(40),
    "Sh40+C10": DesignSpec.clustered(40, 10),
    "Sh40+C10+Boost": DesignSpec.clustered(40, 10, boost=2.0),
}


def fingerprint_hash(res) -> str:
    blob = json.dumps(res.fingerprint(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ------------------------------------------------- golden seed fingerprints


@pytest.mark.parametrize("app,design,scale", sorted(GOLDEN))
def test_pooled_fast_path_matches_seed_fingerprints(app, design, scale):
    res = simulate(get_app(app), DESIGNS[design], SimConfig(scale=scale))
    assert fingerprint_hash(res) == GOLDEN[(app, design, scale)]


# --------------------------------------------- cross-instrumentation identity


def _fig08_point(**cfg_kwargs):
    cfg = SimConfig(scale=0.1, **cfg_kwargs)
    return simulate(get_app("T-AlexNet"), DesignSpec.shared(40), cfg)


def test_instrumented_runs_are_bit_identical():
    """Sanitizer, watchdog and shadow shuffle all take the slow path —
    different allocation pattern, different schedule wrapper, no request
    pooling — yet the simulation they observe is the same simulation."""
    want = GOLDEN[("T-AlexNet", "Sh40", 0.1)]
    assert fingerprint_hash(_fig08_point()) == want
    assert fingerprint_hash(_fig08_point(sanitize=True)) == want
    assert fingerprint_hash(_fig08_point(watchdog=True)) == want
    assert fingerprint_hash(_fig08_point(race_check=True)) == want


def test_profiled_run_is_bit_identical_and_observes_everything():
    res, prof = profile_simulation(
        get_app("T-AlexNet"), DesignSpec.shared(40), SimConfig(scale=0.1)
    )
    assert fingerprint_hash(res) == GOLDEN[("T-AlexNet", "Sh40", 0.1)]
    # The profiler saw every drained event, attributed to real handlers.
    assert prof.total_events > 0
    names = {row.handler for row in prof.rows()}
    assert "GPUSystem._wf_issue" in names
    assert "GPUSystem._complete" in names
    assert prof.total_self_time >= 0.0


def test_observability_fields_are_populated_but_not_identity():
    res = _fig08_point()
    assert res.wall_time_s > 0.0
    assert res.events_per_s > 0.0
    flat = res.fingerprint()
    assert "wall_time_s" not in flat and "events_per_s" not in flat
    data = res.to_jsonable()
    assert "wall_time_s" not in data and "events_per_s" not in data
    # A cache round-trip (which drops the observability fields) preserves
    # the result's identity: same fingerprint, zeroed wall clock.
    from repro.sim.results import SimResult

    clone = SimResult.from_jsonable(data)
    assert clone.fingerprint() == flat
    assert clone.wall_time_s == 0.0


# ------------------------------------------------------ fast/slow equivalence


def test_reserve_fast_is_bit_equal_to_reserve():
    from repro.sim.resources import Server

    a = Server("a", service=0.5, latency=7.0)
    b = Server("b", service=0.5, latency=7.0)
    times = [0.0, 0.25, 0.25, 3.5, 3.5, 3.5, 10.0, 10.125, 50.0]
    sizes = [1.0, 2.0, 0.5, 1.0, 1.0, 4.0, 1.0, 1.0, 2.5]
    for t, s in zip(times, sizes):
        assert a.reserve(t, s) == b.reserve_fast(t, s)
    assert a.next_free == b.next_free
    assert a.busy_cycles == b.busy_cycles
    assert a.num_served == b.num_served


def test_traverse_fast_is_bit_equal_to_traverse():
    from repro.noc.crossbar import Crossbar

    a = Crossbar("a", 4, 4, cycles_per_flit=0.5, latency=3.0)
    b = Crossbar("b", 4, 4, cycles_per_flit=0.5, latency=3.0)
    hops = [
        (0.0, 0, 1, 4), (0.5, 0, 1, 4), (0.5, 2, 1, 1),
        (7.0, 3, 0, 2), (7.0, 3, 3, 8), (20.0, 1, 2, 1),
    ]
    for now, i, o, flits in hops:
        assert a.traverse(now, i, o, flits) == b.traverse_fast(now, i, o, flits)
    assert a.flit_hops == b.flit_hops


@pytest.mark.parametrize(
    "spec",
    [
        DesignSpec.baseline(),
        DesignSpec.private(40),
        DesignSpec.shared(40),
        DesignSpec.clustered(40, 10),
        DesignSpec.cdxbar(),
    ],
    ids=lambda s: s.label,
)
def test_fast_routes_match_topology_methods(spec):
    """The prebound route closures replicate the NoCTopology methods hop
    for hop — same ports, same float arithmetic — on fresh twin systems."""
    app = get_app("P-2MM")
    sys_a = GPUSystem(app, spec, SimConfig(scale=0.05))
    sys_b = GPUSystem(app, spec, SimConfig(scale=0.05))
    fast = sys_b.topo.make_fast_routes()
    slow = (
        sys_a.topo.core_to_dcl1, sys_a.topo.dcl1_to_core,
        sys_a.topo.to_l2, sys_a.topo.from_l2,
    )
    gpu = sys_a.cfg.gpu
    n_l1 = len(sys_a.l1_banks)
    n_l2 = gpu.num_l2_slices
    if fast[0] is not None:
        for t, core, dcl1 in [(0.0, 0, 0), (1.5, 7, n_l1 - 1), (1.5, 12, 3)]:
            assert slow[0](t, core, dcl1, 2) == fast[0](t, core, dcl1, 2)
            assert slow[1](t, dcl1, core, 2) == fast[1](t, dcl1, core, 2)
    for t, src, l2 in [(0.0, 0, 0), (2.0, 1, n_l2 - 1), (2.0, 1, n_l2 - 1)]:
        assert slow[2](t, src, l2, 3) == fast[2](t, src, l2, 3)
        assert slow[3](t, l2, src, 3) == fast[3](t, l2, src, 3)


def test_fast_home_of_matches_home_of():
    for spec in (DesignSpec.shared(40), DesignSpec.clustered(40, 10),
                 DesignSpec.private(40)):
        sys_ = GPUSystem(get_app("C-NN"), spec, SimConfig(scale=0.05))
        fast = sys_.home.make_fast_home_of()
        for core in (0, 3, sys_.cfg.gpu.num_cores - 1):
            for line in (0, 1, 39, 40, 41, 12345):
                assert fast(core, line) == sys_.home.home_of(core, line)


# ------------------------------------------------- forced slow-path parity
#
# GPUSystem.force_slow_path() is SimHeat's differential-confirmer knob:
# it unwires the hot path without touching SimConfig (so the cache key
# and fingerprint inputs are untouched) and the slow twins carry the
# whole simulation.  Fast and forced-slow runs must be bit-identical for
# every access kind the issue path dispatches on.


def _twin_hashes(app, spec, scale=0.05):
    cfg = SimConfig(scale=scale)
    fast = GPUSystem(app, spec, cfg).run()
    slow_sys = GPUSystem(app, spec, cfg)
    slow_sys.force_slow_path()
    slow = slow_sys.run()
    return fingerprint_hash(fast), fingerprint_hash(slow)


def test_forced_slow_path_parity_store_heavy():
    # C-SP's store fraction drives the STORE branch of _issue_cold.
    fast, slow = _twin_hashes(get_app("C-SP"), DesignSpec.shared(40))
    assert fast == slow


def test_forced_slow_path_parity_atomic_and_bypass():
    import dataclasses

    app = dataclasses.replace(
        get_app("P-2MM"), atomic_fraction=0.05, bypass_fraction=0.05
    )
    fast, slow = _twin_hashes(app, DesignSpec.clustered(40, 10))
    assert fast == slow


def test_forced_slow_path_parity_decoupled_design():
    fast, slow = _twin_hashes(get_app("T-AlexNet"), DesignSpec.cdxbar())
    assert fast == slow


def test_force_slow_path_rejected_after_run():
    sys_ = GPUSystem(get_app("P-2MM"), DesignSpec.shared(40),
                     SimConfig(scale=0.05))
    sys_.run()
    with pytest.raises(RuntimeError):
        sys_.force_slow_path()


def test_memory_request_reinit_resets_every_slot():
    from repro.gpu.request import AccessKind, MemoryRequest

    req = MemoryRequest(0x80, AccessKind.LOAD, 32, 3)
    req.wavefront = object()
    req.issue_time = 9.0
    req.line = 2
    req.dcl1_id = 4
    req.l2_id = 5
    req.mc_id = 1
    req.l1_hit = req.l2_hit = req.merged = True
    recycled = req.reinit(0x40, AccessKind.STORE, 16, 7)
    fresh = MemoryRequest(0x40, AccessKind.STORE, 16, 7)
    assert recycled is req
    for slot in MemoryRequest.__slots__:
        assert getattr(recycled, slot) == getattr(fresh, slot), slot


def test_wavefront_materializes_streams_to_plain_ints():
    """``next_access`` must hand back plain Python ints — NumPy scalar
    boxing on the hottest call site is what the bind-time ``tolist``
    conversion exists to avoid."""
    import numpy as np

    from repro.gpu.wavefront import Wavefront

    class FakeStream:
        lines = np.array([5, 6, 7], dtype=np.int64)
        kinds = np.array([0, 1, 0], dtype=np.int8)

        def __len__(self):
            return 3

    wf = Wavefront(0, 0, FakeStream(), compute_gap=0.0)
    line, kind = wf.next_access()
    assert type(line) is int and type(kind) is int
    assert (line, kind) == (5, 0)
    assert wf.next_access() == (6, 1)
    assert wf.next_access() == (7, 0)
    assert wf.next_access() is None


# ------------------------------------------------ SimVec batched dispatch
#
# GPUSystem.force_scalar_dispatch() is the SimVec differential confirmer:
# same fast wiring, but every event runs its scalar fast twin one call at
# a time instead of per-run through the batch twins.  Batched, scalar and
# forced-slow runs of one config must produce one fingerprint — that
# identity is the batch twins' (and the fused specialized twins') whole
# contract.  Sh40/T-AlexNet engages the specialized single-cluster fused
# twins; the other points cover the generic batch twins and designs where
# specialization declines.


def _three_way_hashes(app, spec, scale=0.1, **cfg_kw):
    cfg = SimConfig(scale=scale, **cfg_kw)
    batched = GPUSystem(app, spec, cfg).run()
    scalar_sys = GPUSystem(app, spec, cfg)
    scalar_sys.force_scalar_dispatch()
    scalar = scalar_sys.run()
    slow_sys = GPUSystem(app, spec, cfg)
    slow_sys.force_slow_path()
    slow = slow_sys.run()
    return (
        fingerprint_hash(batched), fingerprint_hash(scalar),
        fingerprint_hash(slow),
    )


@pytest.mark.parametrize(
    "app_name, design",
    [
        ("T-AlexNet", "Sh40"),       # specialized fused twins engage
        ("T-AlexNet", "Baseline"),   # coupled: no DC-L1 level
        ("T-ResNet", "Pr40"),        # private homes
        ("C-SP", "Sh40+C10"),        # clustered: generic twins only
    ],
)
def test_batched_dispatch_matches_scalar_and_slow(app_name, design):
    b, s, sl = _three_way_hashes(get_app(app_name), DESIGNS[design])
    assert b == s, f"batched != scalar on {app_name}/{design}"
    assert b == sl, f"batched != slow on {app_name}/{design}"


def test_batched_dispatch_matches_scalar_with_q1_credits():
    # Finite node queues route issue through _enter_node; the specialized
    # twins must decline and the generic twins must still be bit-exact.
    b, s, sl = _three_way_hashes(
        get_app("T-AlexNet"), DESIGNS["Sh40"], dcl1_queue_depth=4
    )
    assert b == s == sl


def test_specialized_twins_engage_on_the_headline_config():
    """Guard against the identity tests passing vacuously: on the
    Sh40/T-AlexNet shape the fused specialized twins must actually be
    registered (a silent eligibility regression would quietly hand the
    headline benchmark back to the scalar path)."""
    sys_ = GPUSystem(get_app("T-AlexNet"), DESIGNS["Sh40"],
                     SimConfig(scale=0.05))
    twins = sys_.engine._batch_handlers
    issue_fn = sys_._wf_issue.__func__
    assert issue_fn in twins
    # the registered twin is the fused closure, not the generic method
    assert twins[issue_fn].__qualname__.startswith(
        "GPUSystem._make_spec_twins"
    )
    assert sys_._l1_access.__func__ in twins
    assert sys_._complete.__func__ in twins


def test_specialized_twins_decline_on_clustered_shape():
    sys_ = GPUSystem(get_app("C-SP"), DESIGNS["Sh40+C10"],
                     SimConfig(scale=0.05))
    twins = sys_.engine._batch_handlers
    issue_twin = twins.get(sys_._wf_issue.__func__)
    assert issue_twin is not None  # generic batch twin still wired
    assert not issue_twin.__qualname__.startswith(
        "GPUSystem._make_spec_twins"
    )
