"""Shared fixtures.

Unit tests use a *tiny* platform (16 cores, 8 L2 slices, 4 channels) and
small custom profiles so each simulation runs in milliseconds; integration
tests that exercise the calibrated 28-app suite run it at a small scale
and assert only coarse, scale-robust invariants (orderings and directions,
not calibrated magnitudes).
"""

from __future__ import annotations

import pytest

from repro.sim.config import GPUConfig, SimConfig
from repro.workloads.profile import AppProfile


@pytest.fixture
def tiny_gpu() -> GPUConfig:
    """A 16-core platform: fast to simulate, same structure as the paper's."""
    return GPUConfig(num_cores=16, num_l2_slices=8, num_channels=4)


@pytest.fixture
def tiny_config(tiny_gpu) -> SimConfig:
    return SimConfig(gpu=tiny_gpu, scale=1.0)


@pytest.fixture
def shared_profile() -> AppProfile:
    """A small replication-heavy workload (Tango-like)."""
    return AppProfile(
        name="unit-shared",
        num_ctas=96,
        accesses_per_cta=64,
        wavefront_slots=4,
        compute_gap=2.0,
        mlp=2,
        shared_lines=200,
        shared_fraction=0.9,
        private_lines=64,
        block_lines=8,
        block_repeats=1,
    )


@pytest.fixture
def private_profile() -> AppProfile:
    """A small private-data workload with high reuse (no replication)."""
    return AppProfile(
        name="unit-private",
        num_ctas=64,
        accesses_per_cta=64,
        wavefront_slots=4,
        compute_gap=3.0,
        mlp=2,
        shared_fraction=0.0,
        private_lines=96,
        block_lines=8,
        block_repeats=6,
    )


@pytest.fixture
def streaming_profile() -> AppProfile:
    """A small streaming workload (no reuse at all)."""
    return AppProfile(
        name="unit-streaming",
        num_ctas=64,
        accesses_per_cta=48,
        wavefront_slots=8,
        compute_gap=2.0,
        mlp=3,
        shared_fraction=0.0,
        private_lines=1024,
        block_lines=16,
        block_repeats=1,
        store_fraction=0.2,
    )
