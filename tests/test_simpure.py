"""SimPure: cache-key & fingerprint soundness analysis (SP401–SP405)
and its mutate-and-replay confirmer."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.simlint import Severity
from repro.analysis.simpure import (
    DECLARED_ENV_INPUTS,
    mutated_value,
    purity_rule_table,
    purity_source,
    run_purity,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _analyze(src, **kw):
    # "<string>" counts as sim-core, so fixtures are checked by default.
    return purity_source(textwrap.dedent(src), **kw)


# ------------------------------------------------- SP401 (undeclared inputs)


def test_undeclared_env_read_is_flagged():
    findings = _analyze(
        """
        import os

        def tick(self):
            limit = os.environ.get("REPRO_LIMIT", "0")
        """
    )
    assert [f.rule_id for f in findings] == ["SP401"]
    assert findings[0].severity is Severity.ERROR
    assert "REPRO_LIMIT" in findings[0].message
    assert "sim_cache_key" in findings[0].message


def test_os_getenv_and_environ_subscript_are_flagged():
    findings = _analyze(
        """
        import os

        def a(self):
            return os.getenv("REPRO_A")

        def b(self):
            return os.environ["REPRO_B"]
        """
    )
    assert [f.rule_id for f in findings] == ["SP401", "SP401"]


def test_env_name_resolved_through_module_constant():
    findings = _analyze(
        """
        import os

        LIMIT_ENV = "REPRO_LIMIT"

        def tick(self):
            return os.environ.get(LIMIT_ENV, "0")
        """
    )
    assert len(findings) == 1
    assert "REPRO_LIMIT" in findings[0].message


def test_declared_input_in_resolver_is_allowed():
    findings = _analyze(
        """
        import os

        def watchdog_env_enabled():
            return os.environ.get("REPRO_WATCHDOG", "") not in ("", "0")

        def cache_from_env():
            return os.environ.get("REPRO_CACHE_DIR", "")
        """
    )
    assert findings == []


def test_declared_input_outside_resolver_is_flagged():
    findings = _analyze(
        """
        import os

        def run(self):
            if os.getenv("REPRO_WATCHDOG"):
                pass
        """
    )
    assert [f.rule_id for f in findings] == ["SP401"]
    assert "resolver" in findings[0].message


def test_import_alias_of_environ_is_resolved():
    findings = _analyze(
        """
        from os import environ

        def tick(self):
            return environ.get("REPRO_LIMIT")
        """
    )
    assert [f.rule_id for f in findings] == ["SP401"]


def test_global_declaration_is_flagged():
    findings = _analyze(
        """
        COUNTER = 0

        def bump():
            global COUNTER
            COUNTER += 1
        """
    )
    assert [f.rule_id for f in findings] == ["SP401"]
    assert "global" in findings[0].message


def test_runtime_class_attribute_assignment_is_flagged():
    findings = _analyze(
        """
        class Cache:
            capacity = 2

        def tune():
            Cache.capacity = 4
        """
    )
    assert [f.rule_id for f in findings] == ["SP401"]
    assert "Cache.capacity" in findings[0].message


def test_class_attribute_at_class_scope_is_fine():
    findings = _analyze(
        """
        class Cache:
            capacity = 2
        """
    )
    assert findings == []


def test_non_sim_core_paths_are_out_of_scope():
    src = textwrap.dedent(
        """
        import os

        def tick(self):
            return os.environ.get("REPRO_LIMIT")
        """
    )
    assert purity_source(src, path="src/repro/experiments/base.py") == []
    assert purity_source(src, path="src/repro/sim/system.py") != []


# ------------------------------------------------- SP403 (identity leaks)


_LEAKY_RESULT = """
    from dataclasses import dataclass, field

    @dataclass
    class R:
        cycles: float = 0.0
        wall_time_s: float = field(default=0.0, compare=False)

        def fingerprint(self):
            return (self.cycles, self.wall_time_s)
"""


def test_non_identity_read_in_fingerprint_is_flagged():
    findings = _analyze(_LEAKY_RESULT)
    assert [f.rule_id for f in findings] == ["SP403"]
    assert "wall_time_s" in findings[0].message


def test_blanket_asdict_without_exclusion_is_flagged():
    findings = _analyze(
        """
        from dataclasses import asdict, dataclass, field

        @dataclass
        class R:
            cycles: float = 0.0
            wall_time_s: float = field(default=0.0, compare=False)

            def to_jsonable(self):
                return asdict(self)

            @classmethod
            def from_jsonable(cls, data):
                return cls(**data)
        """
    )
    assert [f.rule_id for f in findings] == ["SP403"]
    assert "asdict" in findings[0].message


def test_exclusion_via_module_constant_loop_is_proven():
    findings = _analyze(
        """
        from dataclasses import asdict, dataclass, field

        _OBSERVABILITY_FIELDS = ("wall_time_s",)

        @dataclass
        class R:
            cycles: float = 0.0
            wall_time_s: float = field(default=0.0, compare=False)

            def to_jsonable(self):
                data = asdict(self)
                for name in _OBSERVABILITY_FIELDS:
                    data.pop(name, None)
                return data

            @classmethod
            def from_jsonable(cls, data):
                return cls(**data)
        """
    )
    assert findings == []


def test_literal_pop_exclusion_is_proven():
    findings = _analyze(
        """
        from dataclasses import asdict, dataclass, field

        @dataclass
        class R:
            cycles: float = 0.0
            wall_time_s: float = field(default=0.0, compare=False)

            def to_jsonable(self):
                data = asdict(self)
                data.pop("wall_time_s", None)
                return data

            @classmethod
            def from_jsonable(cls, data):
                return cls(**data)
        """
    )
    assert findings == []


def test_non_identity_read_outside_identity_methods_is_fine():
    findings = _analyze(
        """
        from dataclasses import dataclass, field

        @dataclass
        class R:
            cycles: float = 0.0
            wall_time_s: float = field(default=0.0, compare=False)

            def throughput(self):
                return self.cycles / self.wall_time_s
        """
    )
    assert findings == []


# ------------------------------------------------- SP404 (input mutation)


def test_attribute_write_into_config_is_flagged():
    findings = _analyze(
        """
        class Sys:
            def run(self):
                self.cfg.scale = 2.0
        """
    )
    assert [f.rule_id for f in findings] == ["SP404"]
    assert "dataclasses.replace" in findings[0].message


def test_parameter_write_into_profile_is_flagged():
    findings = _analyze(
        """
        def run(profile, spec):
            profile.num_ctas = 4
        """
    )
    assert [f.rule_id for f in findings] == ["SP404"]


def test_mutating_method_call_on_config_is_flagged():
    findings = _analyze(
        """
        class Sys:
            def run(self):
                self.cfg.overrides.append(1)
        """
    )
    assert [f.rule_id for f in findings] == ["SP404"]
    assert ".append()" in findings[0].message


def test_object_setattr_on_config_is_flagged():
    findings = _analyze(
        """
        class Sys:
            def run(self):
                object.__setattr__(self.cfg, "scale", 2.0)
        """
    )
    assert [f.rule_id for f in findings] == ["SP404"]


def test_alias_of_config_is_tracked():
    findings = _analyze(
        """
        class Sys:
            def run(self):
                c = self.cfg
                c.scale = 2.0
        """
    )
    assert [f.rule_id for f in findings] == ["SP404"]


def test_rebinding_self_cfg_is_allowed():
    # Assigning the *attribute itself* (``self.cfg = config``) stores a
    # reference; only writes *through* it mutate the caller's object.
    findings = _analyze(
        """
        class Sys:
            def __init__(self, config):
                self.cfg = config
        """
    )
    assert findings == []


def test_mutating_own_state_is_allowed():
    findings = _analyze(
        """
        class Sys:
            def run(self):
                self.queue.append(1)
                self.cycles = 4.0
        """
    )
    assert findings == []


# ------------------------------------------------- SP405 (roundtrip coverage)


def test_one_sided_serialization_is_flagged():
    findings = _analyze(
        """
        class R:
            def to_jsonable(self):
                return {}
        """
    )
    assert [f.rule_id for f in findings] == ["SP405"]
    assert "from_jsonable" in findings[0].message


def test_asymmetric_field_transform_is_flagged():
    findings = _analyze(
        """
        class R:
            def to_jsonable(self):
                data = {}
                data["l1"] = dict(self.l1)
                return data

            @classmethod
            def from_jsonable(cls, data):
                return cls()
        """
    )
    assert [f.rule_id for f in findings] == ["SP405"]
    assert "'l1'" in findings[0].message


def test_symmetric_transforms_are_fine():
    findings = _analyze(
        """
        class R:
            def to_jsonable(self):
                data = {}
                data["l1"] = dict(self.l1)
                return data

            @classmethod
            def from_jsonable(cls, data):
                data["l1"] = tuple(sorted(data["l1"].items()))
                return cls(**data)
        """
    )
    assert findings == []


def test_unkeyable_annotation_on_keyed_class_is_flagged():
    findings = _analyze(
        """
        from dataclasses import dataclass
        from typing import Set

        @dataclass
        class SimConfig:
            tags: Set[str] = None
        """
    )
    assert [f.rule_id for f in findings] == ["SP405"]
    assert "Set" in findings[0].message


def test_classvar_annotations_are_not_fields():
    findings = _analyze(
        """
        from dataclasses import dataclass
        from typing import ClassVar, FrozenSet

        @dataclass
        class SimConfig:
            NEUTRAL: ClassVar[FrozenSet[str]] = frozenset()
            scale: float = 1.0
        """
    )
    assert findings == []


def test_unkeyable_annotation_on_unkeyed_class_is_fine():
    findings = _analyze(
        """
        from dataclasses import dataclass
        from typing import Set

        @dataclass
        class ScratchState:
            tags: Set[str] = None
        """
    )
    assert findings == []


# -------------------------------------------- suppression / select / errors


def test_suppression_comment_silences_a_rule():
    findings = _analyze(
        """
        import os

        def tick(self):
            return os.environ.get("REPRO_LIMIT")  # simpure: disable=SP401
        """
    )
    assert findings == []


def test_select_restricts_rules():
    src = """
        import os

        def tick(self, profile):
            profile.num_ctas = 4
            return os.environ.get("REPRO_LIMIT")
    """
    assert {f.rule_id for f in _analyze(src)} == {"SP401", "SP404"}
    assert {f.rule_id for f in _analyze(src, select=["SP404"])} == {"SP404"}


def test_syntax_error_is_reported_not_raised():
    findings = purity_source("def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule_id == "SP001"


def test_rule_table_covers_sp401_to_sp405():
    ids = [rid for rid, _, _ in purity_rule_table()]
    assert ids == ["SP401", "SP402", "SP403", "SP404", "SP405"]


def test_declared_env_inputs_document_their_rationale():
    assert set(DECLARED_ENV_INPUTS) == {
        "REPRO_WATCHDOG", "REPRO_SANITIZE", "REPRO_CACHE_DIR",
        "REPRO_FLEET", "REPRO_CHUNK", "REPRO_STREAM_CACHE",
    }
    assert all(len(why) > 10 for why in DECLARED_ENV_INPUTS.values())


# -------------------------------------------------- SP402 (over-keying)


def _write_tree(tmp_path, read_fields):
    """A fake sim tree defining SimConfig and reading only ``read_fields``.

    SP402 diffs the *real* ``cache_key_manifest()`` against the reads in
    the scanned tree, anchored at the scanned ``SimConfig`` definition.
    """
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "config.py").write_text(
        "from dataclasses import dataclass\n\n\n"
        "@dataclass(frozen=True)\n"
        "class SimConfig:\n"
        "    scale: float = 1.0\n"
        "    max_events: int = 100\n"
    )
    body = "\n".join(f"    x = cfg.{name}" for name in read_fields) or "    pass"
    (pkg / "system.py").write_text(f"def run(cfg):\n{body}\n")
    return tmp_path


def test_unread_keyed_field_is_flagged(tmp_path):
    findings = run_purity([str(_write_tree(tmp_path, ["scale"]))])
    flagged = {f.message.split()[2] for f in findings if f.rule_id == "SP402"}
    # The fake tree reads only cfg.scale, so other keyed SimConfig fields
    # (from the real manifest) are reported as over-keying...
    assert "SimConfig.max_events" in flagged
    assert "SimConfig.scale" not in flagged
    # ...and declared-neutral fields are never over-keying candidates.
    assert "SimConfig.sanitize" not in flagged
    assert "SimConfig.watchdog" not in flagged


def test_sp402_needs_the_sim_core_in_scope(tmp_path):
    # Without sim/system.py in the scan, "never read" would be vacuous.
    lone = tmp_path / "module.py"
    lone.write_text("def run(cfg):\n    return cfg.scale\n")
    findings = run_purity([str(lone)])
    assert [f for f in findings if f.rule_id == "SP402"] == []


def test_getattr_string_constant_counts_as_a_read(tmp_path):
    tree = _write_tree(tmp_path, ["scale"])
    extra = tmp_path / "repro" / "sim" / "extra.py"
    extra.write_text('def peek(cfg):\n    return getattr(cfg, "max_events")\n')
    findings = run_purity([str(tree)])
    flagged = {f.message.split()[2] for f in findings if f.rule_id == "SP402"}
    assert "SimConfig.max_events" not in flagged


# ------------------------------------------------------ shipped tree is clean


def test_shipped_tree_is_purity_clean():
    findings = run_purity([str(SRC_ROOT)])
    assert findings == [], "\n".join(f.format() for f in findings)


# ------------------------------------------------------- dynamic confirmer


def test_mutated_value_covers_the_field_types():
    assert mutated_value(True) == [False]
    assert 7 in mutated_value(0)
    assert all(isinstance(v, float) for v in mutated_value(1.5))
    assert mutated_value("x")[0] == "xx"
    assert mutated_value(None)  # nullable fields get concrete candidates
    from repro.core.designs import DesignKind

    others = mutated_value(DesignKind.BASELINE)
    assert others and DesignKind.BASELINE not in others


def test_key_probes_pass_on_the_shipped_manifest():
    from repro.analysis.simpure import _key_probes
    from repro.cli import parse_design
    from repro.sim.config import SimConfig
    from repro.workloads.suite import get_app

    probes = _key_probes(
        get_app("P-2MM"), parse_design("Pr40"), SimConfig(scale=0.1)
    )
    bad = [p.format() for p in probes if not p.ok]
    assert bad == [], "\n".join(bad)
    kinds = {p.kind for p in probes}
    assert kinds == {"key-sensitivity", "key-neutrality"}
    # Every keyed + neutral field of every role got probed.
    import dataclasses

    from repro.core.designs import DesignSpec
    from repro.sim.config import GPUConfig
    from repro.workloads.profile import AppProfile

    field_count = sum(
        len(dataclasses.fields(cls))
        for cls in (AppProfile, DesignSpec, SimConfig, GPUConfig)
    )
    assert len(probes) == field_count - 1  # SimConfig.gpu covered field-wise


def test_confirm_purity_single_point_is_sound():
    from repro.analysis.simpure import confirm_purity

    report = confirm_purity(grid=[("P-2MM", "Pr40")], scale=0.05)
    assert report.ok, report.render()
    counts = report.counts()
    assert set(counts) == {
        "key-sensitivity", "key-neutrality", "fingerprint-invariance",
        "env-invariance", "roundtrip",
    }
    assert all(passed == total for passed, total in counts.values())
    assert "SOUND" in report.render()


def test_report_render_names_failures():
    from repro.analysis.simpure import PurityProbe, PurityReport

    report = PurityReport(grid=[("A", "B")], scale=0.1, probes=[
        PurityProbe("key-sensitivity", "SimConfig.scale", True),
        PurityProbe("env-invariance", "REPRO_X @ A/B", False, "cycles differ"),
    ])
    assert not report.ok
    text = report.render()
    assert "UNSOUND" in text
    assert "REPRO_X @ A/B" in text and "cycles differ" in text


# ------------------------------------------------------------------ CLI


def test_cli_purity_list_rules(capsys):
    from repro.cli import main

    assert main(["purity", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SP401" in out and "SP405" in out


def test_cli_purity_strict_on_shipped_tree(capsys):
    from repro.cli import main

    assert main(["purity", "--strict", str(SRC_ROOT)]) == 0


def test_cli_purity_flags_fixture(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "repro" / "sim" / "hot.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        'import os\n\ndef tick(self):\n    return os.getenv("REPRO_LIMIT")\n'
    )
    assert main(["purity", str(bad)]) == 1
    assert "SP401" in capsys.readouterr().out


def test_cli_purity_unknown_rule_is_usage_error(capsys):
    from repro.cli import main

    assert main(["purity", "--select", "SP999", "."]) == 2


def test_cli_purity_bad_grid_is_usage_error(capsys):
    from repro.cli import main

    assert main(["purity", "--confirm", "--grid", "nope"]) == 2


def test_cli_analyze_includes_simpure(tmp_path, capsys):
    from repro.cli import main

    (tmp_path / "clean.py").write_text("X = 1\n")
    assert main(["analyze", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "simpure" in out and "soundness" in out


def test_cli_analyze_json_artifact(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "repro" / "sim" / "hot.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        'import os\n\ndef tick(self):\n    return os.getenv("REPRO_LIMIT")\n'
    )
    assert main(["analyze", "--json", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    doc = json.loads(out)  # stdout is exactly one JSON document
    assert doc["exit_code"] == 1
    tools = {t["tool"]: t for t in doc["tools"]}
    assert set(tools) == {"simlint", "simrace", "simflow", "simpure",
                          "simshard", "simheat"}
    assert tools["simpure"]["status"] == "fail"
    finding = tools["simpure"]["findings"][0]
    assert finding["rule"] == "SP401"
    assert finding["severity"] == "error"
    assert finding["line"] == 4


def test_cli_analyze_json_is_deterministic(tmp_path, capsys):
    from repro.cli import main

    (tmp_path / "clean.py").write_text("X = 1\n")
    assert main(["analyze", "--json", str(tmp_path)]) == 0
    first = capsys.readouterr().out
    assert main(["analyze", "--json", str(tmp_path)]) == 0
    assert capsys.readouterr().out == first
