"""Unit tests for platform/simulation configuration."""

import pytest

from repro.sim.config import GPUConfig, SimConfig


class TestGPUConfig:
    def test_table2_defaults(self):
        gpu = GPUConfig()
        assert gpu.num_cores == 80
        assert gpu.num_l2_slices == 32
        assert gpu.num_channels == 16
        assert gpu.l1_size_bytes == 16 * 1024
        assert gpu.line_bytes == 128
        assert gpu.l1_latency == 28.0

    def test_total_l1_and_lines(self):
        gpu = GPUConfig()
        assert gpu.total_l1_bytes == 80 * 16 * 1024
        assert gpu.l1_lines == 128

    def test_dcl1_size_preserves_budget(self):
        gpu = GPUConfig()
        assert gpu.dcl1_size_bytes(40) == 32 * 1024
        assert gpu.dcl1_size_bytes(80) == 16 * 1024
        assert gpu.dcl1_size_bytes(10) == 128 * 1024
        # 80 x 16 KiB = 1.25 MiB is not a power-of-two set count; the
        # single-cache case rounds to the nearest valid geometry (1 MiB).
        assert gpu.dcl1_size_bytes(1) == 1024 * 1024

    def test_dcl1_size_rounds_to_pow2_sets(self):
        gpu = GPUConfig()
        size = gpu.dcl1_size_bytes(40)
        sets = size // (gpu.l1_assoc * gpu.line_bytes)
        assert sets & (sets - 1) == 0

    def test_latency_grows_with_capacity(self):
        gpu = GPUConfig()
        assert gpu.l1_level_latency(16 * 1024) == 28.0
        assert gpu.l1_level_latency(32 * 1024) == 30.0  # the paper's 30 cycles
        assert gpu.l1_level_latency(64 * 1024) == 32.0
        assert gpu.l1_level_latency(8 * 1024) == 28.0  # never below baseline

    def test_scaled_up_system(self):
        gpu = GPUConfig().scaled_up(1.5)
        assert gpu.num_cores == 120
        assert gpu.num_l2_slices == 48
        assert gpu.num_channels == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUConfig(num_l2_slices=30, num_channels=16)
        with pytest.raises(ValueError):
            GPUConfig(num_cores=0)

    def test_frozen_and_hashable(self):
        a, b = GPUConfig(), GPUConfig()
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.num_cores = 16


class TestSimConfig:
    def test_defaults(self):
        cfg = SimConfig()
        assert cfg.scale == 1.0
        assert cfg.cta_scheduler == "round_robin"
        assert cfg.l1_latency_override is None

    def test_with_scale_and_scheduler(self):
        cfg = SimConfig().with_scale(0.5).with_scheduler("distributed")
        assert cfg.scale == 0.5
        assert cfg.cta_scheduler == "distributed"

    def test_hashable_for_runner_cache(self):
        assert hash(SimConfig()) == hash(SimConfig())
