"""Tests for the experiment harness: runner caching + analytical experiments
at full fidelity + simulation experiments on a tiny platform/scale."""

import pytest

from repro.core.designs import DesignSpec
from repro.experiments.base import BASELINE, PROPOSED_DESIGNS, ExperimentReport, Runner
from repro.experiments.registry import ANALYTICAL, EXPERIMENTS, run_experiment
from repro.sim.config import SimConfig


@pytest.fixture
def tiny_runner():
    """80-core platform (experiments assume its geometry) at tiny scale."""
    return Runner(SimConfig(scale=0.05))


class TestRunner:
    def test_caches_identical_requests(self, tiny_runner):
        a = tiny_runner.run("C-BLK", BASELINE)
        b = tiny_runner.run("C-BLK", BASELINE)
        assert a is b
        assert tiny_runner.sims_run == 1

    def test_distinct_requests_not_conflated(self, tiny_runner):
        tiny_runner.run("C-BLK", BASELINE)
        tiny_runner.run("C-BLK", BASELINE, scheduler="distributed")
        tiny_runner.run("C-BLK", BASELINE, l1_latency_override=10.0)
        tiny_runner.run("C-BLK", DesignSpec.private(40))
        assert tiny_runner.sims_run == 4

    def test_speedup_helper(self, tiny_runner):
        s = tiny_runner.speedup("C-BLK", DesignSpec.clustered(40, 10, boost=2.0))
        assert s > 0

    def test_clear(self, tiny_runner):
        tiny_runner.run("C-BLK", BASELINE)
        tiny_runner.clear()
        tiny_runner.run("C-BLK", BASELINE)
        assert tiny_runner.sims_run == 2


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig01", "fig02", "sec2c", "tab1", "fig04", "fig06", "fig08",
            "fig09", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "fig18", "fig19", "sens-cta", "sens-size", "sens-base",
            "latency", "ablations", "ext-bypass", "ext-capacity", "ext-latency-dist",
            "ext-queues", "robustness",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self, tiny_runner):
        with pytest.raises(KeyError):
            run_experiment("fig99", tiny_runner)

    def test_proposed_designs_order(self):
        assert [d.label for d in PROPOSED_DESIGNS] == [
            "Pr40", "Sh40", "Sh40+C10", "Sh40+C10+Boost",
        ]


class TestAnalyticalExperiments:
    """These run no simulations, so they are checked at full fidelity."""

    def test_tab1_matches_paper_exactly(self, tiny_runner):
        rep = run_experiment("tab1", tiny_runner)
        assert rep.summary["pr40_drop"] == 8.0
        assert rep.summary["pr10_drop"] == 32.0
        assert tiny_runner.sims_run == 0

    def test_fig06_area_within_tolerance(self, tiny_runner):
        rep = run_experiment("fig06", tiny_runner)
        assert rep.summary["pr40_area"] == pytest.approx(0.72, abs=0.03)
        assert rep.summary["pr40_static"] == pytest.approx(0.96, abs=0.03)

    def test_fig12_clustered_area(self, tiny_runner):
        rep = run_experiment("fig12", tiny_runner)
        assert rep.summary["c10_area"] == pytest.approx(0.50, abs=0.04)
        assert rep.summary["c1_area"] == pytest.approx(1.69, abs=0.08)
        assert rep.summary["c10_static"] == pytest.approx(0.84, abs=0.03)


class TestSimulationExperiments:
    """Tiny-scale smoke tests: structure + direction, not magnitudes."""

    def test_fig01_produces_all_apps(self, tiny_runner):
        rep = run_experiment("fig01", tiny_runner)
        assert len(rep.rows) == 28
        assert rep.rows == sorted(rep.rows, key=lambda r: r["replication_ratio"])

    def test_fig08_sh40_reduces_misses(self, tiny_runner):
        rep = run_experiment("fig08", tiny_runner)
        assert rep.summary["mean_miss_reduction"] > 0.3

    def test_fig13_frequency_flags(self, tiny_runner):
        rep = run_experiment("fig13", tiny_runner)
        assert rep.summary["xbar_80x32_supports_2x"] == 0.0
        assert rep.summary["xbar_8x4_supports_2x"] == 1.0

    def test_report_render_smoke(self, tiny_runner):
        rep = run_experiment("tab1", tiny_runner)
        text = rep.render()
        assert "tab1" in text
        assert "paper:" in text

    def test_report_structure(self, tiny_runner):
        rep = run_experiment("fig06", tiny_runner)
        assert isinstance(rep, ExperimentReport)
        for row in rep.rows:
            assert set(rep.columns) >= set(row.keys()) or set(row.keys()) >= set()
        assert ANALYTICAL <= set(EXPERIMENTS)
