"""Unit tests for NoC topology construction and routing."""

import pytest

from repro.core.clusters import ClusterGeometry
from repro.core.designs import DesignSpec
from repro.noc.topology import NoCTopology


def topo(spec, cores=80, l2=32, **kw):
    geometry = None
    if spec.is_decoupled:
        geometry = ClusterGeometry.from_design(spec, cores, l2)
    return NoCTopology(spec, cores, l2, cycles_per_flit=2.0, latency=8.0,
                       geometry=geometry, **kw)


class TestBaseline:
    def test_single_pair_of_crossbars(self):
        t = topo(DesignSpec.baseline())
        assert len(t.noc2_req) == 1 and len(t.noc2_rep) == 1
        assert not t.noc1_req
        assert t.noc2_req[0].num_in == 80
        assert t.noc2_req[0].num_out == 32

    def test_routing_times(self):
        t = topo(DesignSpec.baseline())
        assert t.to_l2(0.0, 5, 7, 1) == 12.0  # 2 + 2 + 8
        assert t.from_l2(0.0, 7, 5, 4) == 24.0  # 8 + 8 + 8


class TestClustered:
    def test_sh40_c10_shapes(self):
        t = topo(DesignSpec.clustered(40, 10))
        assert len(t.noc1_req) == 10
        assert t.noc1_req[0].num_in == 8 and t.noc1_req[0].num_out == 4
        assert len(t.noc2_req) == 4  # one per address range
        assert t.noc2_req[0].num_in == 10 and t.noc2_req[0].num_out == 8

    def test_boost_halves_noc1_only(self):
        t = topo(DesignSpec.clustered(40, 10, boost=2.0))
        assert t.noc1_req[0].cycles_per_flit == 1.0
        assert t.noc2_req[0].cycles_per_flit == 2.0

    def test_noc1_routing_stays_in_cluster(self):
        t = topo(DesignSpec.clustered(40, 10))
        t.core_to_dcl1(0.0, 9, 5, 1)  # core 9 (cluster 1) -> dcl1 5 (cluster 1)
        assert t.noc1_req[1].flit_hops == 1
        assert all(xb.flit_hops == 0 for i, xb in enumerate(t.noc1_req) if i != 1)

    def test_noc2_routing_uses_range_crossbar(self):
        t = topo(DesignSpec.clustered(40, 10))
        # DC-L1 5 homes range 1; L2 slice 9 is congruent to 1 mod 4.
        t.to_l2(0.0, 5, 9, 1)
        assert t.noc2_req[1].flit_hops == 1

    def test_reply_path_mirrors_request_path(self):
        t = topo(DesignSpec.clustered(40, 10))
        t.from_l2(0.0, 9, 5, 4)
        assert t.noc2_rep[1].flit_hops == 4
        t.dcl1_to_core(0.0, 5, 9, 2)
        assert t.noc1_rep[1].flit_hops == 2


class TestPr40AndSh40:
    def test_pr40_direct_links(self):
        t = topo(DesignSpec.private(40))
        assert len(t.noc1_req) == 40
        assert t.noc1_req[0].num_in == 2 and t.noc1_req[0].num_out == 1
        assert len(t.noc2_req) == 1
        assert t.noc2_req[0].num_in == 40

    def test_sh40_full_crossbars(self):
        t = topo(DesignSpec.shared(40))
        assert len(t.noc1_req) == 1
        assert t.noc1_req[0].num_in == 80 and t.noc1_req[0].num_out == 40
        assert t.noc2_req[0].num_in == 40 and t.noc2_req[0].num_out == 32


class TestCDXBar:
    def test_two_stage_shapes(self):
        t = topo(DesignSpec.cdxbar())
        assert len(t.noc2_req) == 10  # stage 1: per core group
        assert t.noc2_req[0].num_in == 8 and t.noc2_req[0].num_out == 8
        assert len(t.cdx2_req) == 8  # stage 2: per column
        assert t.cdx2_req[0].num_in == 10 and t.cdx2_req[0].num_out == 4

    def test_routing_crosses_both_stages(self):
        t = topo(DesignSpec.cdxbar())
        t.to_l2(0.0, 12, 17, 1)  # core 12 -> group 1; slice 17 -> column 1
        assert t.noc2_req[1].flit_hops == 1
        assert t.cdx2_req[1].flit_hops == 1
        t.from_l2(0.0, 17, 12, 4)
        assert t.cdx2_rep[1].flit_hops == 4
        assert t.noc2_rep[1].flit_hops == 4

    def test_invalid_grouping_rejected(self):
        with pytest.raises(ValueError):
            NoCTopology(DesignSpec.cdxbar(), 81, 32, 2.0, 8.0)


class TestSingleL1:
    def test_aggregate_bandwidth_port(self):
        t = topo(DesignSpec.single_l1())
        # The funnel's node-side port has 1/num_cores the per-flit service.
        assert t.noc1_req[0].out_ports[0].service == pytest.approx(2.0 / 80)
        assert t.noc1_rep[0].in_ports[0].service == pytest.approx(2.0 / 80)


class TestMetrics:
    def test_total_flit_hops(self):
        t = topo(DesignSpec.clustered(40, 10))
        t.core_to_dcl1(0.0, 0, 0, 3)
        t.to_l2(0.0, 0, 0, 2)
        assert t.total_flit_hops() == 5

    def test_reply_link_utilization_source(self):
        t = topo(DesignSpec.baseline())
        t.from_l2(0.0, 0, 0, 4)
        assert t.max_core_reply_link_utilization(16.0) > 0

    def test_geometry_required_for_dcl1(self):
        with pytest.raises(ValueError):
            NoCTopology(DesignSpec.private(40), 80, 32, 2.0, 8.0, geometry=None)
