"""Runtime stall watchdog: livelock/deadlock detection + wait-graph dump."""

import dataclasses

import pytest

from repro.core.designs import DesignSpec
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.system import GPUSystem, simulate
from repro.sim.watchdog import (
    SimStallError,
    StallWatchdog,
    WaitGraph,
    build_wait_graph,
    watchdog_from_env,
)


class LeakySystem(GPUSystem):
    """A deliberately broken model: NoC#1 Q1 credits are never returned."""

    def _release_node(self, req):
        pass


class TestDeadlockDetection:
    def test_credit_leak_raises_stall_error(self, tiny_config, shared_profile):
        cfg = dataclasses.replace(tiny_config, watchdog=True, dcl1_queue_depth=1)
        system = LeakySystem(shared_profile, DesignSpec.shared(8), cfg)
        with pytest.raises(SimStallError) as exc:
            system.run()
        assert "still in flight" in str(exc.value)

    def test_wait_graph_names_starved_resource_and_owner(
        self, tiny_config, shared_profile
    ):
        cfg = dataclasses.replace(tiny_config, watchdog=True, dcl1_queue_depth=1)
        system = LeakySystem(shared_profile, DesignSpec.shared(8), cfg)
        with pytest.raises(SimStallError) as exc:
            system.run()
        graph = exc.value.wait_graph
        assert graph is not None and not graph.empty
        text = str(exc.value)
        # The dump attributes the stall: which resource starved, and which
        # request holds the credits everyone is waiting on.
        assert "dcl1-q1" in text
        assert "request(core=" in text
        assert "starved resources" in text

    def test_without_watchdog_leak_is_an_opaque_count_mismatch(
        self, tiny_config, shared_profile
    ):
        # Baseline behaviour: the same broken model without the watchdog
        # only trips the bare conservation check — no attribution.
        cfg = dataclasses.replace(tiny_config, dcl1_queue_depth=1)
        system = LeakySystem(shared_profile, DesignSpec.shared(8), cfg)
        with pytest.raises(RuntimeError) as exc:
            system.run()
        assert not isinstance(exc.value, SimStallError)
        assert "requests outstanding" in str(exc.value)


class TestBitReproducibility:
    def test_watchdog_on_is_bit_identical_to_off(
        self, tiny_config, shared_profile
    ):
        designs = [
            DesignSpec.baseline(),
            DesignSpec.private(8),
            DesignSpec.shared(8),
            DesignSpec.clustered(8, 4, boost=2.0),
        ]
        on = dataclasses.replace(tiny_config, watchdog=True)
        for design in designs:
            plain = simulate(shared_profile, design, tiny_config)
            watched = simulate(shared_profile, design, on)
            assert watched.fingerprint() == plain.fingerprint(), design.label


class TestLivelockTriggers:
    def test_same_cycle_limit_trips(self):
        engine = Engine()
        engine.attach_watchdog(
            StallWatchdog(same_cycle_limit=50, inflight=lambda: 1)
        )

        def spin(_):
            engine.schedule(engine.now, spin)  # same-cycle forever

        engine.schedule(0.0, spin)
        with pytest.raises(SimStallError) as exc:
            engine.run()
        assert "same-cycle livelock" in str(exc.value)

    def test_completion_window_trips(self):
        engine = Engine()
        engine.attach_watchdog(StallWatchdog(window=10.0, inflight=lambda: 1))

        def tick(_):
            engine.schedule(engine.now + 1.0, tick)  # time moves, nothing completes

        engine.schedule(0.0, tick)
        with pytest.raises(SimStallError) as exc:
            engine.run()
        assert "no request completed" in str(exc.value)

    def test_progress_resets_the_window(self):
        engine = Engine()
        watchdog = StallWatchdog(window=10.0, inflight=lambda: 1)
        engine.attach_watchdog(watchdog)

        def tick(_):
            watchdog.progress(engine.now)  # a completion each cycle
            if engine.now < 100.0:
                engine.schedule(engine.now + 1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()
        assert watchdog.completions > 50

    def test_window_ignored_when_nothing_in_flight(self):
        engine = Engine()
        engine.attach_watchdog(StallWatchdog(window=10.0, inflight=lambda: 0))

        def tick(_):
            if engine.now < 100.0:
                engine.schedule(engine.now + 1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()  # a long quiet tail is fine when no requests are live

    def test_drained_with_zero_inflight_is_a_no_op(self):
        StallWatchdog(inflight=lambda: 0).drained(123.0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            StallWatchdog(window=0.0)
        with pytest.raises(ValueError):
            StallWatchdog(same_cycle_limit=0)


class TestConfiguration:
    def test_env_var_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
        assert watchdog_from_env() is False
        monkeypatch.setenv("REPRO_WATCHDOG", "0")
        assert watchdog_from_env() is False
        monkeypatch.setenv("REPRO_WATCHDOG", "1")
        assert watchdog_from_env() is True

    def test_config_flag_attaches_watchdog_and_ledger(
        self, tiny_config, shared_profile
    ):
        cfg = dataclasses.replace(tiny_config, watchdog=True)
        system = GPUSystem(shared_profile, DesignSpec.shared(8), cfg)
        assert system._watchdog is not None
        assert system._ledger is not None  # attribution needs the ledger

    def test_off_by_default(self, tiny_gpu, shared_profile, monkeypatch):
        # REPRO_WATCHDOG is resolved at SimConfig construction, so the
        # config must be built after the env var is cleared.
        monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
        cfg = SimConfig(gpu=tiny_gpu)
        assert cfg.watchdog is False
        system = GPUSystem(shared_profile, DesignSpec.shared(8), cfg)
        assert system._watchdog is None

    def test_env_var_resolved_at_construction(self, tiny_gpu, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "1")
        assert SimConfig(gpu=tiny_gpu).watchdog is True
        # Explicit beats environment.
        assert SimConfig(gpu=tiny_gpu, watchdog=False).watchdog is False


class TestWaitGraph:
    def test_healthy_system_snapshot_is_quiet(self, tiny_config, shared_profile):
        cfg = dataclasses.replace(tiny_config, watchdog=True)
        system = GPUSystem(shared_profile, DesignSpec.shared(8), cfg)
        system.run()
        graph = build_wait_graph(system)
        assert graph.starved == []
        assert graph.waits == []

    def test_empty_graph_renders_placeholder(self):
        graph = WaitGraph(now=0.0)
        assert graph.empty
        assert "no holds or waiters" in graph.render()

    def test_render_caps_section_length(self):
        graph = WaitGraph(
            now=1.0, holds=[f"holder {i}" for i in range(100)]
        )
        text = graph.render()
        assert "... and" in text and "more" in text
        assert text.count("holder ") < 100
