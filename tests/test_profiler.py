"""Unit tests for the per-handler event profiler (SimTurbo observability)."""

from repro.sim.engine import Engine
from repro.sim.profiler import EventProfiler


class _FakeClock:
    """Deterministic clock: each reading advances by a fixed step."""

    def __init__(self, step: float = 1.0):
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def _run_profiled(prof: EventProfiler) -> None:
    eng = Engine()
    eng.attach_profiler(prof)

    def fast(_):
        pass

    def slow(_):
        pass

    for t in (1.0, 2.0, 3.0):
        eng.schedule(t, fast, None)
    eng.schedule(4.0, slow, None)
    eng.run()


def test_counts_and_self_time_per_handler():
    prof = EventProfiler(clock=_FakeClock(step=0.5))
    _run_profiled(prof)
    assert prof.total_events == 4
    by_name = {r.handler: r for r in prof.rows()}
    fast_row = next(r for name, r in by_name.items() if "fast" in name)
    slow_row = next(r for name, r in by_name.items() if "slow" in name)
    assert fast_row.events == 3
    assert slow_row.events == 1
    # Every callback is bracketed by two clock readings of the fake
    # clock, so self-time is exactly one step per event.
    assert fast_row.self_s == 1.5
    assert slow_row.self_s == 0.5
    assert prof.total_self_time == 2.0
    assert fast_row.pct == 75.0


def test_rows_sorted_by_self_time_and_percentages_sum():
    prof = EventProfiler(clock=_FakeClock())
    _run_profiled(prof)
    rows = prof.rows()
    assert [r.self_s for r in rows] == sorted(
        (r.self_s for r in rows), reverse=True
    )
    assert abs(sum(r.pct for r in rows) - 100.0) < 1e-9


def test_events_per_s_uses_drain_wall_time():
    prof = EventProfiler(clock=_FakeClock(step=2.0))
    assert prof.events_per_s() == 0.0  # before any run
    _run_profiled(prof)
    assert prof.wall_time > 0.0
    assert prof.events_per_s() == prof.total_events / prof.wall_time


def test_render_contains_table_and_footer():
    prof = EventProfiler(clock=_FakeClock())
    _run_profiled(prof)
    text = prof.render()
    assert "handler" in text and "events/s" in text
    assert "total" in text
    # An untruncated table needs no coverage disclaimer.
    assert "hidden" not in text


def test_render_truncated_table_labels_its_coverage():
    """``render(top=N)`` used to print the 100% total row right under the
    truncated rows — a top-5 table read as if those 5 handlers were the
    whole profile.  Truncation now states what it hides."""
    prof = EventProfiler(clock=_FakeClock())
    _run_profiled(prof)  # two handlers
    top = prof.render(top=1)
    assert "top 1 of 2 handlers" in top
    assert "1 hidden" in top
    # the stated coverage is the shown rows' pct, not 100
    shown_pct = prof.rows()[0].pct
    assert f"({shown_pct:.1f}% of self-time)" in top
    # the total row still aggregates every handler (full event count)
    assert f"{prof.total_events:>10}" in top


def test_render_top_at_or_above_row_count_is_not_truncated():
    prof = EventProfiler(clock=_FakeClock())
    _run_profiled(prof)
    assert "hidden" not in prof.render(top=2)
    assert "hidden" not in prof.render(top=99)


def test_render_empty_profile_does_not_crash():
    text = EventProfiler().render()
    assert "handler" in text


# --------------------------------------------------- allocation attribution


def _run_alloc_profiled(prof: EventProfiler) -> None:
    """Two handlers with very different allocation appetites."""
    import tracemalloc

    eng = Engine()
    eng.attach_profiler(prof)
    keep = []

    def hungry(_):
        keep.append(bytearray(64 * 1024))

    def frugal(_):
        pass

    for t in (1.0, 2.0, 3.0):
        eng.schedule(t, hungry, None)
    eng.schedule(4.0, frugal, None)
    tracemalloc.start()
    try:
        eng.run()
    finally:
        tracemalloc.stop()


def test_trace_alloc_attributes_bytes_per_handler():
    prof = EventProfiler(clock=_FakeClock(), trace_alloc=True)
    _run_alloc_profiled(prof)
    assert prof.total_events == 4
    by_name = {r.handler: r for r in prof.rows()}
    hungry = next(r for name, r in by_name.items() if "hungry" in name)
    frugal = next(r for name, r in by_name.items() if "frugal" in name)
    # Each hungry event retains a 64 KiB bytearray; tracemalloc should
    # attribute at least that much net growth to each event.
    assert hungry.alloc_b_per_event >= 64 * 1024
    assert frugal.alloc_b_per_event < 1024
    # Timing attribution still works in the alloc-tracing drain.
    assert hungry.events == 3 and frugal.events == 1
    assert prof.total_self_time > 0.0


def test_trace_alloc_off_leaves_alloc_columns_zero():
    prof = EventProfiler(clock=_FakeClock())
    _run_profiled(prof)
    assert prof.alloc_bytes == {}
    assert all(r.alloc_b_per_event == 0.0 for r in prof.rows())
    assert "B/ev" not in prof.render()


def test_render_grows_alloc_column_when_traced():
    prof = EventProfiler(clock=_FakeClock(), trace_alloc=True)
    _run_alloc_profiled(prof)
    text = prof.render()
    assert "B/ev" in text


def test_profile_simulation_trace_alloc_is_bit_identical():
    from repro.core.designs import DesignSpec
    from repro.sim.config import SimConfig
    from repro.sim.profiler import profile_simulation
    from repro.workloads.suite import get_app

    app = get_app("P-2MM")
    spec = DesignSpec.shared(40)
    cfg = SimConfig(scale=0.05)
    plain, _ = profile_simulation(app, spec, cfg)
    traced, prof = profile_simulation(app, spec, cfg, trace_alloc=True)
    assert traced.fingerprint() == plain.fingerprint()
    # Scheduling itself allocates (heap tuples), so every handler that
    # ran should have an attribution entry.
    assert prof.alloc_bytes
    assert set(prof.alloc_bytes) == set(prof.counts)
