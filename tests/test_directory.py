"""Unit tests for the replication directory."""

from repro.cache.directory import ReplicationDirectory


class TestCopyTracking:
    def test_install_and_copies(self):
        d = ReplicationDirectory()
        d.on_install(5, 0)
        d.on_install(5, 1)
        assert d.copies(5) == 2
        assert d.copies(6) == 0

    def test_duplicate_install_same_cache_idempotent_copies(self):
        d = ReplicationDirectory()
        d.on_install(5, 0)
        d.on_install(5, 0)
        assert d.copies(5) == 1

    def test_evict_removes_holder(self):
        d = ReplicationDirectory()
        d.on_install(5, 0)
        d.on_install(5, 1)
        d.on_evict(5, 0)
        assert d.copies(5) == 1
        d.on_evict(5, 1)
        assert d.copies(5) == 0
        assert d.distinct_lines() == 0

    def test_evict_unknown_is_noop(self):
        d = ReplicationDirectory()
        d.on_evict(5, 0)  # no crash
        d.on_install(5, 0)
        d.on_evict(5, 3)  # different holder: ignored
        assert d.copies(5) == 1


class TestHeldElsewhere:
    def test_other_cache_counts(self):
        d = ReplicationDirectory()
        d.on_install(5, 0)
        assert d.held_elsewhere(5, 1)
        assert not d.held_elsewhere(5, 0)

    def test_self_plus_other(self):
        d = ReplicationDirectory()
        d.on_install(5, 0)
        d.on_install(5, 1)
        assert d.held_elsewhere(5, 0)

    def test_absent_line(self):
        d = ReplicationDirectory()
        assert not d.held_elsewhere(9, 0)

    def test_holders_snapshot(self):
        d = ReplicationDirectory()
        d.on_install(5, 0)
        d.on_install(5, 2)
        assert d.holders(5) == frozenset({0, 2})
        assert d.holders(6) == frozenset()


class TestAggregates:
    def test_total_copies_and_distinct_lines(self):
        d = ReplicationDirectory()
        d.on_install(1, 0)
        d.on_install(1, 1)
        d.on_install(2, 0)
        assert d.distinct_lines() == 2
        assert d.total_copies() == 3
        assert d.mean_replicas_resident() == 1.5

    def test_sampled_replicas_weighted_by_installs(self):
        d = ReplicationDirectory()
        d.on_install(1, 0)  # 1 copy at sample time
        d.on_install(1, 1)  # 2 copies
        d.on_install(1, 2)  # 3 copies
        assert d.mean_replicas_sampled() == 2.0

    def test_empty_directory_means(self):
        d = ReplicationDirectory()
        assert d.mean_replicas_sampled() == 0.0
        assert d.mean_replicas_resident() == 0.0

    def test_reset(self):
        d = ReplicationDirectory()
        d.on_install(1, 0)
        d.reset()
        assert d.distinct_lines() == 0
        assert d.mean_replicas_sampled() == 0.0
