"""Tests for the SimLint static analysis pass.

Every rule is exercised both ways: it must fire on a minimal bad snippet
and stay quiet on the idiomatic good version of the same code.
"""

import textwrap

import pytest

from repro.analysis.simlint import (
    RULES,
    LintFinding,
    Severity,
    lint_source,
    rule_table,
    run_lint,
)
from repro.cli import main


def lint(code, select=None):
    return lint_source(textwrap.dedent(code), "snippet.py", select=select)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestSL101Nondeterminism:
    def test_wall_clock_fires(self):
        findings = lint(
            """
            import time
            def tick(engine):
                return time.time()
            """
        )
        assert rule_ids(findings) == ["SL101"]
        assert "bit-reproducibility" in findings[0].message

    def test_aliased_import_resolved(self):
        findings = lint(
            """
            from datetime import datetime as dt
            stamp = dt.now()
            """
        )
        assert rule_ids(findings) == ["SL101"]

    def test_module_level_random_fires(self):
        findings = lint(
            """
            import random
            def jitter():
                return random.random()
            """
        )
        assert rule_ids(findings) == ["SL101"]

    def test_os_urandom_fires(self):
        assert rule_ids(lint("import os\nseed = os.urandom(8)\n")) == ["SL101"]

    def test_seeded_rng_quiet(self):
        findings = lint(
            """
            import numpy as np
            def make_rng(seed):
                return np.random.default_rng(seed)
            """
        )
        assert findings == []

    def test_random_instance_quiet(self):
        # A seeded Random *instance* is deterministic; only the module-level
        # functions share hidden global state.
        findings = lint(
            """
            import random
            rng = random.Random(42)
            def draw():
                return rng.random()
            """
        )
        assert rule_ids(findings) == []

    def test_local_variable_named_time_quiet(self):
        findings = lint(
            """
            def f(time):
                return time.upper()
            """
        )
        assert findings == []


class TestSL102SetIteration:
    def test_for_over_set_literal_fires(self):
        findings = lint(
            """
            def wake(engine, cores):
                for c in {1, 2, 3}:
                    engine.schedule_in(1.0, cores[c].wake)
            """
        )
        assert "SL102" in rule_ids(findings)
        assert findings[0].severity is Severity.WARNING

    def test_for_over_set_call_fires(self):
        findings = lint("for x in set(items):\n    x\n")
        assert rule_ids(findings) == ["SL102"]

    def test_comprehension_over_setcomp_fires(self):
        findings = lint("out = [x for x in {y for y in range(3)}]\n")
        assert "SL102" in rule_ids(findings)

    def test_sorted_set_quiet(self):
        assert lint("for x in sorted(set(items)):\n    x\n") == []

    def test_membership_test_quiet(self):
        assert lint("hit = 3 in {1, 2, 3}\n") == []


class TestSL103FloatTimeCompare:
    def test_eq_on_now_fires(self):
        findings = lint(
            """
            def poll(engine, deadline):
                return engine.now == deadline
            """
        )
        assert rule_ids(findings) == ["SL103"]

    def test_neq_on_issue_time_fires(self):
        findings = lint("stale = req.issue_time != t0\n")
        assert "SL103" in rule_ids(findings)

    def test_ordering_comparison_quiet(self):
        assert lint("late = engine.now >= deadline\n") == []

    def test_non_time_names_quiet(self):
        assert lint("same = res.replication_ratio == 0.0\n") == []


class TestSL104FrozenMutation:
    def test_mutation_outside_init_fires(self):
        findings = lint(
            """
            def tweak(cfg):
                object.__setattr__(cfg, "scale", 2.0)
            """
        )
        assert rule_ids(findings) == ["SL104"]

    def test_post_init_quiet(self):
        findings = lint(
            """
            class Geometry:
                def __post_init__(self):
                    object.__setattr__(self, "per_cluster", 4)
            """
        )
        assert findings == []

    def test_plain_setattr_quiet(self):
        assert lint("def f(obj):\n    obj.x = 1\n") == []


class TestSL105UnsafeSchedule:
    def test_nan_time_fires(self):
        findings = lint("engine.schedule(float('nan'), cb)\n")
        assert rule_ids(findings) == ["SL105"]

    def test_inf_time_fires(self):
        findings = lint("engine.schedule(float('inf'), cb)\n")
        assert rule_ids(findings) == ["SL105"]

    def test_negative_time_fires(self):
        assert rule_ids(lint("engine.schedule(-1.0, cb)\n")) == ["SL105"]

    def test_negative_delay_fires(self):
        assert rule_ids(lint("engine.schedule_in(-2.0, cb)\n")) == ["SL105"]

    def test_now_minus_expression_fires(self):
        findings = lint("engine.schedule(engine.now - latency, cb)\n")
        assert rule_ids(findings) == ["SL105"]

    def test_keyword_time_checked(self):
        findings = lint("engine.schedule(time=float('nan'), callback=cb)\n")
        assert rule_ids(findings) == ["SL105"]

    def test_clamped_time_quiet(self):
        assert lint("engine.schedule(max(engine.now, t - lat), cb)\n") == []

    def test_forward_time_quiet(self):
        assert lint("engine.schedule(engine.now + 4.0, cb)\n") == []


class TestSL106PublicApiDrift:
    def test_stale_export_fires(self):
        findings = lint(
            """
            __all__ = ["real", "ghost"]
            def real():
                pass
            """
        )
        assert rule_ids(findings) == ["SL106"]
        assert "ghost" in findings[0].message

    def test_consistent_all_quiet(self):
        findings = lint(
            """
            from os.path import join
            __all__ = ["join", "helper", "CONST"]
            CONST = 3
            def helper():
                pass
            """
        )
        assert findings == []

    def test_conditional_definition_counts(self):
        findings = lint(
            """
            __all__ = ["maybe"]
            try:
                from fastlib import maybe
            except ImportError:
                def maybe():
                    pass
            """
        )
        assert findings == []


class TestSuppression:
    def test_disable_comment_silences_rule(self):
        findings = lint(
            """
            import time
            t0 = time.time()  # simlint: disable=SL101
            """
        )
        assert findings == []

    def test_disable_all(self):
        findings = lint(
            """
            import time
            t0 = time.time()  # simlint: disable=all
            """
        )
        assert findings == []

    def test_disable_other_rule_does_not_silence(self):
        findings = lint(
            """
            import time
            t0 = time.time()  # simlint: disable=SL104
            """
        )
        assert rule_ids(findings) == ["SL101"]


class TestRunner:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert rule_ids(findings) == ["SL001"]

    def test_select_filters_rules(self):
        code = "import time\nt0 = time.time()\nengine.schedule(-1.0, cb)\n"
        findings = lint_source(code, "x.py", select=["SL105"])
        assert rule_ids(findings) == ["SL105"]

    def test_run_lint_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
        findings = run_lint([str(tmp_path)])
        assert rule_ids(findings) == ["SL101"]
        assert findings[0].path.endswith("bad.py")

    def test_findings_sorted_and_formatted(self):
        f = LintFinding("a.py", 3, 7, "SL101", Severity.ERROR, "msg")
        assert f.format() == "a.py:3:7: error SL101: msg"

    def test_every_rule_listed(self):
        table = rule_table()
        assert len(table) == len(RULES) >= 6
        assert all(rid.startswith("SL") for rid, _sev, _title in table)


class TestCliLint:
    def test_shipped_tree_is_clean(self):
        assert main(["lint", "src/repro"]) == 0

    def test_bad_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SL101" in out

    def test_warnings_exit_zero_unless_strict(self, tmp_path):
        warny = tmp_path / "w.py"
        warny.write_text("for x in set(items):\n    x\n")
        assert main(["lint", str(warny)]) == 0
        assert main(["lint", "--strict", str(warny)]) == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "SL101" in capsys.readouterr().out


@pytest.mark.parametrize("rid", [r.rule_id for r in RULES])
def test_rule_ids_unique_and_stable(rid):
    assert sum(1 for r in RULES if r.rule_id == rid) == 1
