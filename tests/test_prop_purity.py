"""Property-based key/fingerprint soundness: the cache key must be a
pure function of exactly the keyed fields (any keyed difference changes
it, neutral-only differences never do), and non-identity observability
must never reach a result's fingerprint, equality, or serialized form.

These are the same invariants ``repro purity --confirm`` replays with
real simulations; here Hypothesis drives the *key* side with thousands
of random configurations at zero simulation cost.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.results import SimResult
from repro.sim.store import cache_key_manifest, sim_cache_key
from repro.workloads.profile import AppProfile

TINY_GPU = GPUConfig(num_cores=8, num_l2_slices=4, num_channels=2)

BASE_PROFILE = AppProfile(name="prop", num_ctas=4, accesses_per_cta=8)
BASE_SPEC = DesignSpec.clustered(8, 4)
BASE_CFG = SimConfig(gpu=TINY_GPU)


def keyed_values(role, obj):
    """The tuple of declared-keyed field values for one input object."""
    return tuple(
        getattr(obj, name) for name in cache_key_manifest()[role]["keyed"]
    )


profiles = st.builds(
    AppProfile,
    name=st.sampled_from(["prop-a", "prop-b"]),
    suite=st.sampled_from(["", "polybench", "tango"]),
    num_ctas=st.integers(1, 24),
    accesses_per_cta=st.integers(1, 48),
    wavefront_slots=st.integers(1, 4),
    compute_gap=st.sampled_from([1.0, 3.0]),
    mlp=st.integers(1, 3),
    shared_lines=st.integers(16, 128),
    shared_fraction=st.floats(0.0, 0.9),
    private_lines=st.integers(8, 64),
    block_lines=st.integers(1, 16),
    block_repeats=st.integers(1, 3),
    store_fraction=st.floats(0.0, 0.3),
    imbalance=st.floats(0.0, 0.8),
    trace_variant=st.integers(0, 3),
)

designs = st.sampled_from(
    [
        DesignSpec.baseline(),
        DesignSpec.private(8),
        DesignSpec.private(4),
        DesignSpec.shared(8),
        DesignSpec.clustered(8, 4),
        DesignSpec.clustered(8, 4, boost=2.0),
        DesignSpec.cdxbar(),
        DesignSpec.single_l1(),
    ]
)

configs = st.builds(
    SimConfig,
    gpu=st.just(TINY_GPU),
    scale=st.sampled_from([0.05, 0.1, 1.0]),
    cta_scheduler=st.sampled_from(["round_robin", "distributed"]),
    l1_latency_override=st.one_of(st.none(), st.sampled_from([11.0, 28.0])),
    home_strategy=st.sampled_from(["interleave", "bits"]),
    home_bit_shift=st.integers(0, 3),
    full_line_noc1_replies=st.booleans(),
    l1_bypass=st.booleans(),
    race_check=st.booleans(),
    race_seed=st.integers(1, 5),
    max_events=st.sampled_from([10_000, 200_000_000]),
    # Neutral knobs vary too: they must never matter to the key.
    sanitize=st.booleans(),
    watchdog=st.booleans(),
    watchdog_window=st.sampled_from([50_000.0, 123.0]),
)


class TestKeyIsAPureFunctionOfKeyedFields:
    """sim_cache_key(a) == sim_cache_key(b)  <=>  keyed fields agree."""

    @given(profiles, profiles)
    @settings(max_examples=60, deadline=None)
    def test_profile_biconditional(self, a, b):
        same_key = (
            sim_cache_key(a, BASE_SPEC, BASE_CFG)
            == sim_cache_key(b, BASE_SPEC, BASE_CFG)
        )
        assert same_key == (
            keyed_values("profile", a) == keyed_values("profile", b)
        )

    @given(designs, designs)
    @settings(max_examples=60, deadline=None)
    def test_design_biconditional(self, a, b):
        same_key = (
            sim_cache_key(BASE_PROFILE, a, BASE_CFG)
            == sim_cache_key(BASE_PROFILE, b, BASE_CFG)
        )
        assert same_key == (
            keyed_values("design", a) == keyed_values("design", b)
        )

    @given(configs, configs)
    @settings(max_examples=60, deadline=None)
    def test_config_biconditional(self, a, b):
        same_key = (
            sim_cache_key(BASE_PROFILE, BASE_SPEC, a)
            == sim_cache_key(BASE_PROFILE, BASE_SPEC, b)
        )
        assert same_key == (
            keyed_values("config", a) == keyed_values("config", b)
        )


class TestNeutralFieldsNeverTouchTheKey:
    @given(
        profiles,
        st.text(min_size=0, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_profile_suite_is_neutral(self, profile, suite):
        relabeled = dataclasses.replace(profile, suite=suite)
        assert sim_cache_key(relabeled, BASE_SPEC, BASE_CFG) == sim_cache_key(
            profile, BASE_SPEC, BASE_CFG
        )

    @given(
        configs,
        st.booleans(),
        st.booleans(),
        st.floats(min_value=1.0, max_value=1e6),
        st.integers(min_value=10, max_value=10**7),
    )
    @settings(max_examples=60, deadline=None)
    def test_observation_knobs_are_neutral(
        self, cfg, sanitize, watchdog, window, limit
    ):
        toggled = dataclasses.replace(
            cfg,
            sanitize=sanitize,
            watchdog=watchdog,
            watchdog_window=window,
            watchdog_same_cycle_limit=limit,
        )
        assert sim_cache_key(BASE_PROFILE, BASE_SPEC, toggled) == sim_cache_key(
            BASE_PROFILE, BASE_SPEC, cfg
        )


class TestObservabilityNeverTouchesIdentity:
    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e12),
    )
    @settings(max_examples=60, deadline=None)
    def test_non_identity_mutation_keeps_fingerprint_and_equality(
        self, wall, rate
    ):
        base = SimResult(app="prop", design="Pr8")
        timed = dataclasses.replace(base, wall_time_s=wall, events_per_s=rate)
        assert timed.fingerprint() == base.fingerprint()
        assert timed == base  # compare=False: observability is not identity

    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e12),
    )
    @settings(max_examples=60, deadline=None)
    def test_serialized_form_carries_no_observability(self, wall, rate):
        timed = dataclasses.replace(
            SimResult(app="prop", design="Pr8"),
            wall_time_s=wall, events_per_s=rate,
        )
        data = timed.to_jsonable()
        assert "wall_time_s" not in data and "events_per_s" not in data
        back = SimResult.from_jsonable(data)
        assert back.fingerprint() == timed.fingerprint()
