"""SimHeat: twin-path drift & hot-path hygiene analysis (SH600–SH615)
and its force-fast/force-slow differential replay confirmer."""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.simheat import (
    DEFAULT_CONFIRM_GRID,
    HeatProbe,
    HeatReport,
    confirm_heat,
    heat_rule_table,
    heat_source,
    run_heat,
)
from repro.analysis.simlint import Severity

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _analyze(src, **kw):
    return heat_source(textwrap.dedent(src), **kw)


def _rules(findings):
    return [f.rule_id for f in findings]


def _replace_last(src: str, old: str, new: str) -> str:
    head, sep, tail = src.rpartition(old)
    assert sep, f"fixture drift target {old!r} not found"
    return head + new + tail


# A clean lockstep twin pair: the fast body replicates the slow body
# minus the ledger guard, and a wiring method references the fast twin.
LOCKSTEP = """
FAST_PATH_PAIRS = [
    ("Server.reserve_fast", "Server.reserve", "lockstep", {}),
]


class Server:
    def wire(self):
        self._reserve = self.reserve_fast

    def reserve(self, now, size=1.0, owner=None):
        if self._ledger is not None:
            self._ledger.note_acquire(self.name, owner, now)
        start = now if now > self.next_free else self.next_free
        occupancy = self.service * size
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        self.num_served += 1
        return start + occupancy + self.latency

    def reserve_fast(self, now, size=1.0):
        start = now if now > self.next_free else self.next_free
        occupancy = self.service * size
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        self.num_served += 1
        return start + occupancy + self.latency
"""


# ------------------------------------------------------------ rule table


def test_rule_table_lists_every_rule():
    table = heat_rule_table()
    ids = [rid for rid, _, _ in table]
    assert ids == sorted(ids)
    assert "SH600" in ids and "SH601" in ids and "SH615" in ids
    assert all(sev in ("error", "warning") for _, sev, _ in table)


# ----------------------------------------------------- SH600 (parse error)


def test_unparsable_source_is_sh600():
    findings = _analyze("def broken(:\n")
    assert _rules(findings) == ["SH600"]
    assert findings[0].severity is Severity.ERROR


# -------------------------------------------------- SH601 (twin drift)


def test_clean_lockstep_pair_passes():
    assert _analyze(LOCKSTEP) == []


def test_lockstep_arithmetic_drift_is_flagged():
    drifted = _replace_last(
        LOCKSTEP,
        "return start + occupancy + self.latency",
        "return start + occupancy + self.latency + 1.0",
    )
    findings = _analyze(drifted)
    assert "SH601" in _rules(findings)


def test_lockstep_reordered_effects_are_flagged():
    drifted = _replace_last(
        LOCKSTEP,
        "        self.next_free = start + occupancy\n"
        "        self.busy_cycles += occupancy\n",
        "        self.busy_cycles += occupancy\n"
        "        self.next_free = start + occupancy\n",
    )
    # Same effects, different order: still drift (float state updates
    # interleave with reads in later statements).
    assert "SH601" in _rules(_analyze(drifted))


def test_manifest_naming_a_missing_fast_def_is_sh601():
    findings = _analyze(
        """
        FAST_PATH_PAIRS = [
            ("Server.reserve_fast", "Server.reserve", "lockstep", {}),
        ]

        class Server:
            def reserve(self, now):
                return now
        """
    )
    assert "SH601" in _rules(findings)


# ------------------------------------------------ SH602 (counter drift)


def test_counter_missing_from_fast_twin_is_sh602():
    drifted = _replace_last(LOCKSTEP, "        self.num_served += 1\n", "")
    assert "SH602" in _rules(_analyze(drifted))


# --------------------------------------------- SH603 (unreachable fast)


def test_unwired_fast_twin_is_sh603():
    unwired = LOCKSTEP.replace(
        "    def wire(self):\n        self._reserve = self.reserve_fast\n\n",
        "",
    )
    findings = _analyze(unwired)
    assert _rules(findings) == ["SH603"]
    assert "never referenced" in findings[0].message


def test_contradictory_fast_gate_is_sh603():
    findings = _analyze(
        """
        class System:
            def _wire(self):
                self._fast = self._ledger is None

            def _complete(self, req):
                if self._fast and self._ledger is not None:
                    self._ledger.note_release(req)
        """
    )
    assert "SH603" in _rules(findings)


# ------------------------------------------ SH604 (slow call on fast path)


def test_slow_twin_call_inside_fast_twin_body_is_sh604():
    findings = _analyze(
        """
        FAST_PATH_PAIRS = [
            ("Topo.make_fast_routes", ("Topo.core_to_dcl1",), "delegated", {}),
        ]


        class Topo:
            def wire(self):
                self._routes = self.make_fast_routes()

            def core_to_dcl1(self, t, core, dcl1, flits):
                return t + self.hop_latency

            def make_fast_routes(self):
                def go(t, core, dcl1, flits):
                    return self.core_to_dcl1(t, core, dcl1, flits)
                return (go,)
        """
    )
    assert "SH604" in _rules(findings)


def test_delegating_closure_that_reimplements_is_clean():
    findings = _analyze(
        """
        FAST_PATH_PAIRS = [
            ("Topo.make_fast_routes", ("Topo.core_to_dcl1",), "delegated", {}),
        ]


        class Topo:
            def wire(self):
                self._routes = self.make_fast_routes()

            def core_to_dcl1(self, t, core, dcl1, flits):
                return t + self.hop_latency

            def make_fast_routes(self):
                lat = self.hop_latency

                def go(t, core, dcl1, flits):
                    return t + lat
                return (go,)
        """
    )
    assert findings == []


# --------------------------------------- SH611-SH615 (hot-path hygiene)

HOT_HEADER = """
SIMHEAT_HOT_FUNCTIONS = ("System._complete",)


class System:
"""


def _hot(body):
    return HOT_HEADER + textwrap.indent(textwrap.dedent(body), "    ")


def test_per_event_list_allocation_is_sh611():
    findings = _analyze(_hot(
        """
        def _complete(self, req):
            batch = [req.line, req.issue_time]
            self.sink(batch)
        """
    ))
    assert _rules(findings) == ["SH611"]
    assert findings[0].handler == "System._complete"


def test_per_event_fstring_and_dict_call_are_sh611():
    findings = _analyze(_hot(
        """
        def _complete(self, req):
            self.sink(f"done {req.line}")
            self.stats = dict()
        """
    ))
    assert _rules(findings) == ["SH611", "SH611"]


def test_repeated_chain_in_loop_is_sh612():
    findings = _analyze(_hot(
        """
        def _complete(self, req):
            while self.pending:
                self.l1.mshr.free(1)
                self.l1.mshr.poke(2)
        """
    ))
    assert "SH612" in _rules(findings)
    assert "self.l1.mshr" in findings[0].message


def test_config_traversal_and_environment_read_are_sh613():
    findings = _analyze(_hot(
        """
        def _complete(self, req):
            import os
            lat = self.cfg.gpu.l2_latency
            knob = os.getenv("REPRO_KNOB")
            self.sink(lat, knob)
        """
    ))
    rules = _rules(findings)
    assert rules.count("SH613") == 2


def test_request_escape_into_undeclared_container_is_sh614():
    findings = _analyze(_hot(
        """
        def _complete(self, req):
            self._audit_trail.append(req)
        """
    ))
    assert _rules(findings) == ["SH614"]


def test_declared_safe_sink_is_not_sh614():
    src = _hot(
        """
        def _complete(self, req):
            self._req_pool.append(req)
        """
    ).replace(
        'SIMHEAT_HOT_FUNCTIONS = ("System._complete",)',
        'SIMHEAT_HOT_FUNCTIONS = ("System._complete",)\n'
        'SIMHEAT_REQUEST_SAFE_SINKS = ("_req_pool",)',
    )
    assert _analyze(src) == []


def test_print_and_logging_in_hot_handler_are_sh615():
    findings = _analyze(_hot(
        """
        def _complete(self, req):
            print("completing", req)
            self.logger.debug("done")
        """
    ))
    assert _rules(findings) == ["SH615", "SH615"]


def test_schedule_callbacks_are_hot_without_a_manifest():
    findings = _analyze(
        """
        class System:
            def _issue(self, wf):
                self.schedule(1.0, self._complete, wf)

            def _complete(self, req):
                self.trace = [req]
        """
    )
    assert _rules(findings) == ["SH611"]
    assert findings[0].handler == "System._complete"


def test_instrumentation_guard_is_exempt_from_hot_rules():
    findings = _analyze(_hot(
        """
        def _complete(self, req):
            if self._ledger is not None:
                self._ledger.note(f"slow path {req}")
        """
    ))
    assert findings == []


# ------------------------------------------------- suppression / select


def test_inline_suppression_comment_is_honoured():
    findings = _analyze(_hot(
        """
        def _complete(self, req):
            batch = [req.line]  # simheat: disable=SH611
            self.sink(batch)
        """
    ))
    assert findings == []


def test_select_filters_to_requested_rules():
    src = _hot(
        """
        def _complete(self, req):
            print("completing")
            self._audit_trail.append(req)
        """
    )
    assert _rules(_analyze(src, select={"SH615"})) == ["SH615"]
    assert _rules(_analyze(src, select={"SH614"})) == ["SH614"]


# -------------------------------------------------- the shipped package


def test_shipped_package_is_heat_clean():
    assert run_heat([str(SRC_ROOT)]) == []


def _seeded_tree(tmp_path, rel, old, new):
    """Copy src/repro to a temp dir with one drift seeded into ``rel``."""
    root = tmp_path / "repro"
    shutil.copytree(SRC_ROOT, root)
    target = root / rel
    src = target.read_text(encoding="utf-8")
    assert old in src, f"seed target not found in {rel}"
    target.write_text(src.replace(old, new), encoding="utf-8")
    return root


def test_seeded_reserve_drift_is_caught_package_wide(tmp_path):
    root = _seeded_tree(
        tmp_path, "sim/resources.py",
        "        return start + occupancy + self.latency\n",
        "        return start + occupancy + self.latency * 1.0000001\n",
    )
    findings = run_heat([str(root)])
    assert "SH601" in _rules(findings)
    assert any("reserve" in f.pair for f in findings if f.rule_id == "SH601")


def test_seeded_counter_drop_is_caught_package_wide(tmp_path):
    # Drop the load counter from the fast issue twin (_issue_load_fast);
    # the slow twin still bumps it, and it is not a declared
    # slow-only counter.
    root = _seeded_tree(
        tmp_path, "sim/system.py",
        "        self.outstanding += 1\n        self._n_loads += 1\n",
        "        self.outstanding += 1\n",
    )
    findings = run_heat([str(root)])
    assert "SH602" in _rules(findings)


# ----------------------------------------------------------- confirmer


def test_confirm_heat_twin_replays_are_sound():
    report = confirm_heat(grid=[("P-2MM", "Sh40+C10")], scale=0.05,
                          trace_alloc=False)
    assert report.ok
    assert report.counts().get("twin-diff") == 1
    text = report.render()
    assert "SOUND" in text and "bit-identical" in text


def test_confirm_heat_alloc_profile_attributes_handlers():
    report = confirm_heat(grid=[("P-2MM", "Sh40")], scale=0.05,
                          trace_alloc=True)
    assert report.ok
    assert report.alloc_rows
    names = {r.handler for r in report.alloc_rows}
    assert any("_complete" in n for n in names)
    assert "alloc-profiled" in report.render()


def test_default_confirm_grid_has_a_decoupled_point():
    designs = [d.lower() for _, d in DEFAULT_CONFIRM_GRID]
    assert any(d.startswith("sh") or d.startswith("pr") for d in designs)
    report = HeatReport(DEFAULT_CONFIRM_GRID, 0.1, [])
    assert report.any_decoupled


def test_report_grades_findings_by_probe_evidence():
    from repro.analysis.simheat import HeatFinding

    drift = HeatFinding("x.py", 1, 0, "SH601", Severity.ERROR, "drift",
                        pair="reserve_fast->reserve")
    report_bad = HeatReport(
        [("P-2MM", "Sh40")], 0.1,
        [HeatProbe("twin-diff", "P-2MM/Sh40", False, "diverged")])
    assert report_bad.verdict_for(drift) == "CONFIRMED"
    assert not report_bad.ok
    assert "UNSOUND" in report_bad.render([drift])

    report_ok = HeatReport(
        [("P-2MM", "Sh40")], 0.1,
        [HeatProbe("twin-diff", "P-2MM/Sh40", True)])
    assert report_ok.verdict_for(drift) == "BENIGN"

    homing = HeatFinding("x.py", 1, 0, "SH601", Severity.ERROR, "drift",
                         pair="make_fast_home_of->home_of")
    undecoupled = HeatReport(
        [("C-BLK", "Baseline")], 0.1,
        [HeatProbe("twin-diff", "C-BLK/Baseline", True)])
    assert undecoupled.verdict_for(homing) == "UNOBSERVED"

    hot = HeatFinding("x.py", 1, 0, "SH611", Severity.WARNING, "alloc",
                      handler="System._complete")
    assert report_ok.verdict_for(hot) == "UNOBSERVED"  # no alloc rows


# ----------------------------------------------------------------- CLI


def test_cli_heat_static_is_clean_on_shipped_tree(capsys):
    from repro.cli import main

    assert main(["heat", "--strict", str(SRC_ROOT)]) == 0


def test_cli_heat_list_rules(capsys):
    from repro.cli import main

    assert main(["heat", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SH601" in out and "SH614" in out


def test_cli_heat_unknown_rule_is_usage_error(capsys):
    from repro.cli import main

    assert main(["heat", "--select", "SH999", str(SRC_ROOT)]) == 2


def test_cli_analyze_json_includes_simheat(capsys):
    from repro.cli import main

    assert main(["analyze", "--json", str(SRC_ROOT / "analysis")]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema_version"] == 2
    tools = {t["tool"] for t in doc["tools"]}
    assert "simheat" in tools
