"""Structural tests for every experiment module at tiny scale.

One shared runner executes all experiments; assertions check report
*structure* (row counts, column coverage, summary keys present, values
finite where required) — magnitudes are covered by the benchmarks at the
calibrated scale.
"""

import math

import pytest

from repro.experiments.base import Runner
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.sim.config import SimConfig


@pytest.fixture(scope="module")
def runner():
    return Runner(SimConfig(scale=0.04))


@pytest.fixture(scope="module")
def reports(runner):
    return {exp_id: run_experiment(exp_id, runner) for exp_id in EXPERIMENTS}


def _finite_numbers(report):
    for row in report.rows:
        for col, value in row.items():
            if isinstance(value, float):
                assert not math.isinf(value), (report.experiment, col)


class TestAllReports:
    def test_every_experiment_produces_rows(self, reports):
        for exp_id, rep in reports.items():
            assert rep.rows, exp_id
            assert rep.columns, exp_id
            assert rep.experiment == exp_id

    def test_rows_fit_columns(self, reports):
        for exp_id, rep in reports.items():
            cols = set(rep.columns)
            for row in rep.rows:
                assert set(row) <= cols | set(row), exp_id  # columns render subset

    def test_summaries_are_numbers(self, reports):
        for exp_id, rep in reports.items():
            for key, value in rep.summary.items():
                assert isinstance(value, (int, float)), (exp_id, key)
                assert not math.isnan(float(value)), (exp_id, key)

    def test_renders_without_error(self, reports):
        for exp_id, rep in reports.items():
            text = rep.render()
            assert exp_id in text


class TestSpecificStructure:
    def test_fig01_has_28_rows(self, reports):
        assert len(reports["fig01"].rows) == 28

    def test_fig02_sorted_ascending(self, reports):
        utils = [r["l1_port_util_max"] for r in reports["fig02"].rows]
        assert utils == sorted(utils)

    def test_fig04_covers_all_granularities(self, reports):
        configs = {r["config"] for r in reports["fig04"].rows}
        assert {"Pr80", "Pr40", "Pr20", "Pr10"} <= configs

    def test_fig11_covers_all_cluster_counts(self, reports):
        assert [r["config"] for r in reports["fig11"].rows] == [
            "C1", "C5", "C10", "C20", "C40",
        ]

    def test_fig14_has_design_columns(self, reports):
        rep = reports["fig14"]
        assert "Sh40+C10+Boost" in rep.columns
        assert len(rep.rows) == 28

    def test_fig15_rank_rows(self, reports):
        rep = reports["fig15"]
        assert len(rep.rows) == 28
        assert [r["rank"] for r in rep.rows] == list(range(28))
        # Each design column is sorted ascending (it is an S-curve).
        for col in rep.columns:
            if col == "rank":
                continue
            series = [r[col] for r in rep.rows]
            assert series == sorted(series), col

    def test_fig16_replica_bounds(self, reports):
        for row in reports["fig16"].rows:
            assert row["Sh40_replicas"] <= 1.0 + 1e-9
            assert row["Sh40+C10_replicas"] <= 10.0 + 1e-9
            assert row["Pr40_replicas"] <= 40.0 + 1e-9

    def test_sens_size_groups(self, reports):
        groups = [r["group"] for r in reports["sens-size"].rows]
        assert groups == ["replication-sensitive", "replication-insensitive"]

    def test_robustness_variants(self, reports):
        assert [r["variant"] for r in reports["robustness"].rows] == [0, 1, 2]

    def test_ablation_studies_present(self, reports):
        studies = " ".join(str(r["study"]) for r in reports["ablations"].rows)
        assert "reply" in studies and "boost" in studies and "home" in studies

    def test_latency_reports_model_values(self, reports):
        s = reports["latency"].summary
        assert s["dcl1_latency"] == 30.0
        assert s["baseline_l1_latency"] == 28.0
