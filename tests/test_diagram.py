"""Tests for the topology diagram renderer."""

from repro.analysis.diagram import design_diagram
from repro.core.designs import DesignSpec


class TestDiagram:
    def test_baseline_draws_private_l1s(self):
        svg = design_diagram(DesignSpec.baseline(), 16, 8)
        assert svg.startswith("<svg")
        assert "cores+L1" in svg
        assert "16x8 crossbar" in svg

    def test_clustered_draws_ranges_and_clusters(self):
        svg = design_diagram(DesignSpec.clustered(8, 4), 16, 8)
        assert "lite cores" in svg
        assert "DC-L1" in svg
        assert "NoC#1 4x2" in svg
        assert "NoC#2 4x4" in svg
        assert "stroke-dasharray" in svg  # cluster outlines

    def test_boost_annotated(self):
        svg = design_diagram(DesignSpec.clustered(8, 4, boost=2.0), 16, 8)
        assert "@2x" in svg

    def test_sh40_uses_single_noc2_bus(self):
        svg = design_diagram(DesignSpec.shared(40), 80, 32)
        assert "NoC#2 40x32" in svg

    def test_cdxbar_labelled(self):
        svg = design_diagram(DesignSpec.cdxbar(), 80, 32)
        assert "CDXBar stage 1" in svg

    def test_box_counts_scale_with_platform(self):
        small = design_diagram(DesignSpec.private(8), 16, 8)
        large = design_diagram(DesignSpec.private(40), 80, 32)
        assert large.count("<rect") > small.count("<rect")

    def test_escapes_nothing_dangerous(self):
        svg = design_diagram(DesignSpec.clustered(8, 2, label="a<b"), 16, 8)
        assert "a<b" not in svg
        assert "a&lt;b" in svg
