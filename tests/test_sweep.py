"""Tests for the parallel sweep engine (Runner.run_many) and the layered
result cache: determinism vs serial cold runs, warm-cache replay, and the
runner-level cache accounting."""

from __future__ import annotations

import multiprocessing
import warnings

import pytest

from repro.experiments.base import (
    BASELINE,
    PROPOSED_DESIGNS,
    Runner,
    env_par_min_points,
)
from repro.experiments.registry import run_experiment
from repro.sim.config import SimConfig

SCALE = 0.05
BOOST = PROPOSED_DESIGNS[-1]


def fresh_runner(**kwargs) -> Runner:
    kwargs.setdefault("cache", False)
    return Runner(SimConfig(scale=SCALE), **kwargs)


class TestRunMany:
    GRID = [("C-BLK", BASELINE), ("C-BLK", BOOST), ("T-AlexNet", BASELINE)]

    def test_results_in_submission_order(self):
        runner = fresh_runner()
        results = runner.run_many(self.GRID)
        assert [r.app for r in results] == ["C-BLK", "C-BLK", "T-AlexNet"]
        assert results[0].design == BASELINE.label
        assert results[1].design == BOOST.label

    def test_matches_run_exactly(self):
        many = fresh_runner()
        r_many = many.run_many(self.GRID)
        single = fresh_runner()
        r_single = [single.run(app, spec) for app, spec in self.GRID]
        assert [a.fingerprint() for a in r_many] == [b.fingerprint() for b in r_single]
        assert many.sims_run == single.sims_run == 3

    def test_duplicate_points_collapse(self):
        runner = fresh_runner()
        results = runner.run_many([("C-BLK", BASELINE)] * 4)
        assert runner.sims_run == 1
        assert all(r is results[0] for r in results)

    def test_kwargs_points(self):
        runner = fresh_runner()
        plain, sched = runner.run_many([
            ("C-BLK", BASELINE),
            ("C-BLK", BASELINE, {"scheduler": "distributed"}),
        ])
        assert runner.sims_run == 2
        # Same point via run() with the same kwargs is already memoized.
        assert runner.run("C-BLK", BASELINE, scheduler="distributed") is sched
        assert runner.run("C-BLK", BASELINE) is plain

    def test_bad_point_shape_raises(self):
        runner = fresh_runner()
        with pytest.raises(ValueError, match="sweep point"):
            runner.run_many([("C-BLK",)])

    def test_parallel_identical_to_serial(self):
        serial = fresh_runner()
        parallel = fresh_runner()
        r_serial = serial.run_many(self.GRID, jobs=1)
        # par_min_points=2 forces the pool even on this 3-point grid
        # (the default threshold would fall back to serial).
        r_parallel = parallel.run_many(self.GRID, jobs=2, par_min_points=2)
        assert parallel.sims_run == serial.sims_run == 3
        assert any(k.startswith("parallel") for k in parallel.sweep_paths)
        assert [a.fingerprint() for a in r_serial] == \
               [b.fingerprint() for b in r_parallel]

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_identical_to_serial(self):
        serial = fresh_runner()
        spawned = fresh_runner()
        r_serial = serial.run_many(self.GRID, jobs=1)
        r_spawn = spawned.run_many(
            self.GRID, jobs=2, mp_context="spawn", par_min_points=2)
        assert spawned.sweep_paths.get("parallel[fleet:spawn]") == 1
        assert [a.fingerprint() for a in r_serial] == \
               [b.fingerprint() for b in r_spawn]

    def test_small_grid_falls_back_to_serial(self):
        # Below the min-points threshold the pool is skipped entirely,
        # and the taken path is recorded for observability.
        runner = fresh_runner()
        results = runner.run_many(self.GRID, jobs=2, par_min_points=10)
        assert runner.sims_run == 3
        assert runner.sweep_paths == {"serial[below-min-points]": 1}
        assert [r.app for r in results] == ["C-BLK", "C-BLK", "T-AlexNet"]
        assert "serial[below-min-points] x1" in runner.throughput_summary()

    def test_single_miss_path_is_plain_serial(self):
        runner = fresh_runner()
        runner.run_many([("C-BLK", BASELINE)], jobs=4)
        assert runner.sweep_paths == {"serial": 1}


class TestParMinPointsEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAR_MIN_POINTS", raising=False)
        assert env_par_min_points() == 4

    def test_env_override_and_clamp(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR_MIN_POINTS", "7")
        assert env_par_min_points() == 7
        monkeypatch.setenv("REPRO_PAR_MIN_POINTS", "-3")
        assert env_par_min_points() == 1

    def test_malformed_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR_MIN_POINTS", "four")
        with pytest.warns(RuntimeWarning, match="REPRO_PAR_MIN_POINTS"):
            assert env_par_min_points() == 4

    def test_env_threshold_drives_run_many(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR_MIN_POINTS", "100")
        runner = fresh_runner()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no RuntimeWarning expected
            runner.run_many(TestRunMany.GRID, jobs=2)
        assert runner.sweep_paths == {"serial[below-min-points]": 1}


class TestDiskCacheIntegration:
    def test_run_populates_and_reads_disk(self, tmp_path):
        first = fresh_runner(cache=str(tmp_path))
        a = first.run("C-BLK", BASELINE)
        assert first.sims_run == 1
        # A *fresh* runner (empty memory layer) is served from disk.
        second = fresh_runner(cache=str(tmp_path))
        b = second.run("C-BLK", BASELINE)
        assert second.sims_run == 0
        assert b.fingerprint() == a.fingerprint()

    def test_warm_cache_rerun_runs_zero_sims(self, tmp_path):
        grid = [(app, spec) for app in ("C-BLK", "T-AlexNet")
                for spec in (BASELINE, BOOST)]
        cold = fresh_runner(cache=str(tmp_path))
        r_cold = cold.run_many(grid, jobs=2)
        assert cold.sims_run == len(grid)
        warm = fresh_runner(cache=str(tmp_path))
        r_warm = warm.run_many(grid, jobs=2)
        assert warm.sims_run == 0
        assert warm.disk_cache is not None and warm.disk_cache.hits == len(grid)
        assert [a.fingerprint() for a in r_cold] == [b.fingerprint() for b in r_warm]

    def test_cache_false_disables_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert Runner(SimConfig(scale=SCALE)).disk_cache is not None
        assert Runner(SimConfig(scale=SCALE), cache=False).disk_cache is None
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert Runner(SimConfig(scale=SCALE)).disk_cache is None


class TestRealExperimentGrid:
    """The acceptance anchor: a real experiment grid run three ways —
    serial cold, parallel cold, warm cache — is fingerprint-identical,
    and the warm replay executes zero new simulations."""

    EXPERIMENT = "fig08"

    def test_parallel_and_cache_match_serial_cold(self, tmp_path):
        serial = fresh_runner()
        report_serial = run_experiment(self.EXPERIMENT, serial)
        assert serial.sims_run > 0

        parallel = fresh_runner(cache=str(tmp_path), jobs=2)
        report_parallel = run_experiment(self.EXPERIMENT, parallel)
        assert parallel.sims_run == serial.sims_run
        assert parallel.result_fingerprints() == serial.result_fingerprints()

        warm = fresh_runner(cache=str(tmp_path), jobs=2)
        report_warm = run_experiment(self.EXPERIMENT, warm)
        assert warm.sims_run == 0
        assert warm.result_fingerprints() == serial.result_fingerprints()

        assert report_parallel.summary == report_serial.summary
        assert report_warm.summary == report_serial.summary
