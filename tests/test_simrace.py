"""SimRace: static same-cycle conflict detection and dynamic confirmation."""

import textwrap

import pytest

from repro.analysis.simlint import Severity
from repro.analysis.simrace import (
    analyze_source,
    confirm_races,
    diff_fingerprints,
    race_rule_table,
    run_race,
    shuffle_outcomes,
)
from repro.core.designs import DesignSpec
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.workloads.suite import get_app


def _analyze(src, **kw):
    return analyze_source(textwrap.dedent(src), "fixture.py", **kw)


# --------------------------------------------------------------- static pass

# Two handlers co-scheduled at the same derived time, both mutating one
# MSHR file — the canonical hazard (mirrors the seed tree's
# _release_node/_l1_access shape before the priority fix).
WW_FIXTURE = """
class Node:
    def _dispatch(self, req):
        t1 = self.topo.hop(self.engine.now, req.src)
        if req.bypass:
            self.engine.schedule(t1, self._release, req)
        else:
            self.engine.schedule(t1, self._access, req)

    def _release(self, req):
        self.mshr.release(req.line)

    def _access(self, req):
        self.mshr.allocate(req.line, req)
"""


def test_write_write_pair_is_flagged():
    findings = _analyze(WW_FIXTURE)
    assert len(findings) == 1
    f = findings[0]
    assert f.rule_id == "SR201"
    assert f.severity is Severity.ERROR
    assert f.handlers == ("_access", "_release")
    assert "mshr" in f.resources
    assert "schedule() call order" in f.message


def test_read_read_pair_is_benign():
    findings = _analyze(
        """
        class Node:
            def _go(self, req):
                t1 = self.topo.peek(req)
                self.engine.schedule(t1, self._a, req)
                self.engine.schedule(t1, self._b, req)

            def _a(self, req):
                return self.mshr.has_stalled()

            def _b(self, req):
                return self.mshr.has_stalled()
        """
    )
    assert findings == []


def test_read_write_pair_is_warning():
    findings = _analyze(
        """
        class Node:
            def _go(self, req):
                t1 = self.topo.peek(req)
                self.engine.schedule(t1, self._reader, req)
                self.engine.schedule(t1, self._writer, req)

            def _reader(self, req):
                return self.mshr.has_stalled()

            def _writer(self, req):
                self.mshr.allocate(req.line, req)
        """
    )
    assert [f.rule_id for f in findings] == ["SR202"]
    assert findings[0].severity is Severity.WARNING


def test_priority_declaration_exempts_pair():
    src = WW_FIXTURE.replace(
        "self.engine.schedule(t1, self._release, req)",
        "self.engine.schedule(t1, self._release, req, priority=-1)",
    )
    assert _analyze(src) == []


def test_suppression_comment_silences_sr2xx():
    src = WW_FIXTURE.replace(
        "self.engine.schedule(t1, self._release, req)",
        "self.engine.schedule(t1, self._release, req)  # simrace: disable=SR201",
    )
    assert _analyze(src) == []
    # disable=all works too, and on the handler's def line.
    src2 = WW_FIXTURE.replace(
        "def _release(self, req):",
        "def _release(self, req):  # simrace: disable=all",
    )
    assert _analyze(src2) == []


def test_unrelated_rule_suppression_does_not_silence():
    src = WW_FIXTURE.replace(
        "self.engine.schedule(t1, self._release, req)",
        "self.engine.schedule(t1, self._release, req)  # simrace: disable=SR203",
    )
    assert [f.rule_id for f in _analyze(src)] == ["SR201"]


def test_now_scheduled_writer_is_flagged_sr203():
    findings = _analyze(
        """
        class Node:
            def _kick(self, req):
                free_at = max(self.engine.now, req.t)
                self.engine.schedule(free_at, self._release, req)

            def _go(self, req):
                t9 = self.bank.reserve(self.engine.now)
                self.engine.schedule(t9, self._access, req)

            def _release(self, req):
                self.mshr.release(req.line)

            def _access(self, req):
                self.mshr.allocate(req.line, req)
        """
    )
    assert [f.rule_id for f in findings] == ["SR203"]
    assert findings[0].handlers == ("_access", "_release")


def test_transitive_helper_writes_are_attributed():
    findings = _analyze(
        """
        class Node:
            def _go(self, req):
                t1 = self.topo.peek(req)
                self.engine.schedule(t1, self._a, req)
                self.engine.schedule(t1, self._b, req)

            def _a(self, req):
                self._helper(req)

            def _helper(self, req):
                self.mshr.allocate(req.line, req)

            def _b(self, req):
                self.mshr.release(req.line)
        """
    )
    assert [f.rule_id for f in findings] == ["SR201"]


def test_local_alias_resolves_to_root_resource():
    findings = _analyze(
        """
        class Node:
            def _go(self, req):
                t1 = self.topo.peek(req)
                self.engine.schedule(t1, self._a, req)
                self.engine.schedule(t1, self._b, req)

            def _a(self, req):
                mshr = self.mshrs[req.idx]
                mshr.allocate(req.line, req)

            def _b(self, req):
                self.mshrs[req.idx].release(req.line)
        """
    )
    assert [f.rule_id for f in findings] == ["SR201"]
    assert findings[0].resources == ("mshrs",)


def test_commutative_counters_are_not_conflicts():
    findings = _analyze(
        """
        class Node:
            def _go(self, req):
                t1 = self.topo.peek(req)
                self.engine.schedule(t1, self._a, req)
                self.engine.schedule(t1, self._b, req)

            def _a(self, req):
                self.outstanding += 1

            def _b(self, req):
                self.outstanding -= 1
        """
    )
    assert findings == []


def test_different_time_expressions_do_not_pair():
    findings = _analyze(
        """
        class Node:
            def _go(self, req):
                t1 = self.topo.peek(req)
                t2 = self.topo.hop(t1, req.dst)
                self.engine.schedule(t1, self._a, req)
                self.engine.schedule(t2, self._b, req)

            def _a(self, req):
                self.mshr.allocate(req.line, req)

            def _b(self, req):
                self.mshr.release(req.line)
        """
    )
    assert findings == []


def test_select_filters_rules():
    findings = _analyze(WW_FIXTURE, select=["SR202"])
    assert findings == []
    findings = _analyze(WW_FIXTURE, select=["SR201"])
    assert [f.rule_id for f in findings] == ["SR201"]


def test_syntax_error_reported_not_raised():
    findings = analyze_source("def broken(:\n", "bad.py")
    assert [f.rule_id for f in findings] == ["SR001"]


def test_rule_table_lists_sr2xx():
    ids = [rid for rid, _sev, _title in race_rule_table()]
    assert ids == ["SR201", "SR202", "SR203"]


def test_shipped_tree_is_clean_of_sr2xx_errors():
    import repro

    pkg_dir = repro.__path__[0]
    errors = [
        f for f in run_race([pkg_dir]) if f.severity is Severity.ERROR
    ]
    assert errors == [], "\n".join(f.format() for f in errors)


def test_seed_hazard_shape_is_detected():
    """The exact pre-fix shape of GPUSystem._dispatch_to_node (two
    handlers on one derived t1, no priority) must be flagged."""
    findings = _analyze(
        """
        class GPUSystem:
            def _dispatch_to_node(self, req, t):
                flits = 1
                t1 = self.topo.core_to_dcl1(t, req.core_id, req.dcl1_id, flits)
                if req.kind in (2, 3):
                    t2 = self.topo.to_l2(t1, req.dcl1_id, req.l2_id, 1)
                    self.engine.schedule(t2, self._at_l2, req)
                    self.engine.schedule(t1, self._release_node, req)
                else:
                    self.engine.schedule(t1, self._l1_access, req)

            def _release_node(self, req):
                self._node_waiters[req.dcl1_id].popleft()

            def _l1_access(self, req):
                self._node_waiters[req.dcl1_id].append(req)

            def _at_l2(self, req):
                return req
        """
    )
    assert [f.rule_id for f in findings] == ["SR201"]
    assert findings[0].handlers == ("_l1_access", "_release_node")


# ---------------------------------------------------------- dynamic confirm


class _MiniMshr:
    """One-entry MSHR: the shared resource of the dynamic fixtures."""

    def __init__(self):
        self.held = True
        self.stalls = 0

    def release(self, _req):
        self.held = False

    def allocate(self, _req):
        if self.held:
            self.stalls += 1
        else:
            self.held = True


def _race_outcome(engine):
    """Two handlers writing one MSHR at the same cycle: the outcome
    (stall or not) depends on which runs first."""
    mshr = _MiniMshr()

    def release(req):
        mshr.release(req)

    def allocate(req):
        mshr.allocate(req)

    engine.schedule(5.0, release, "r")
    engine.schedule(5.0, allocate, "a")
    engine.run()
    return mshr.stalls


def test_mshr_write_write_pair_confirmed_dynamically():
    baseline = _race_outcome(Engine())
    outcomes = shuffle_outcomes(_race_outcome, k=8, seed=1)
    assert any(o != baseline for o in outcomes), (
        "shuffle never flipped the same-cycle release/allocate order"
    )


def test_read_read_pair_benign_dynamically():
    def outcome(engine):
        mshr = _MiniMshr()
        seen = []

        def peek_a(_):
            seen.append(mshr.held)

        def peek_b(_):
            seen.append(mshr.held)

        engine.schedule(5.0, peek_a, None)
        engine.schedule(5.0, peek_b, None)
        engine.run()
        return tuple(seen)

    baseline = outcome(Engine())
    assert all(o == baseline for o in shuffle_outcomes(outcome, k=8, seed=1))


def test_priority_pins_order_even_under_shuffle():
    def outcome(engine):
        mshr = _MiniMshr()
        engine.schedule(5.0, mshr.allocate, "a")
        engine.schedule(5.0, mshr.release, "r", priority=-1)
        engine.run()
        return mshr.stalls

    baseline = outcome(Engine())
    assert baseline == 0  # release declared to run first
    assert all(o == 0 for o in shuffle_outcomes(outcome, k=8, seed=1))


def test_shuffle_preserves_fifo_within_one_handler():
    def outcome(engine):
        order = []

        def handler(tag):
            order.append(tag)

        for tag in range(6):
            engine.schedule(3.0, handler, tag)
        engine.run()
        return order

    for o in shuffle_outcomes(outcome, k=6, seed=1):
        assert o == list(range(6))


def test_shuffle_records_co_scheduled_pairs():
    eng = Engine(shuffle_seed=7)

    def a(_):
        pass

    def b(_):
        pass

    eng.schedule(1.0, a)
    eng.schedule(1.0, b)
    eng.run()
    assert len(eng.batch_pairs) == 1
    ((pa, pb),) = eng.batch_pairs
    assert pa.endswith("a") and pb.endswith("b")


def test_diff_fingerprints():
    assert diff_fingerprints({"x": 1.0}, {"x": 1.0}) == []
    d = diff_fingerprints({"x": 1.0}, {"x": 2.0})
    assert d and "x" in d[0]


@pytest.mark.parametrize("design", ["pr40", "baseline"])
def test_confirm_shipped_configs_bit_identical(design):
    spec = (
        DesignSpec.private(40) if design == "pr40" else DesignSpec.baseline()
    )
    report = confirm_races(
        get_app("P-2MM"), spec, SimConfig(scale=0.05), k=2
    )
    assert report.bit_identical, report.render()
    assert report.k == 2
    # The replay actually shuffled something, or the test proves nothing.
    assert all(run.shuffled_batches > 0 for run in report.runs)


def test_confirm_report_verdicts():
    findings = _analyze(WW_FIXTURE)
    report = confirm_races(
        get_app("P-2MM"), DesignSpec.private(40), SimConfig(scale=0.05), k=1
    )
    # The fixture pair never runs inside GPUSystem.
    assert report.verdict_for(findings[0]) == "UNOBSERVED"
    text = report.render(findings)
    assert "UNOBSERVED" in text and "overall" in text
