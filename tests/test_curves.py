"""Tests for the ASCII curve renderer."""

import pytest

from repro.analysis.curves import ascii_curve, ascii_s_curves


class TestAsciiCurve:
    def test_basic_shape(self):
        out = ascii_curve([0.0, 0.5, 1.0], height=3)
        lines = out.splitlines()
        assert len(lines) == 4  # 3 rows + axis
        assert lines[0].endswith("  *")   # max at the right
        assert lines[2].endswith("|*  ")  # min at the left

    def test_marker_count_matches_points(self):
        out = ascii_curve(list(range(10)), height=5)
        assert sum(line.count("*") for line in out.splitlines()) == 10

    def test_flat_series_does_not_divide_by_zero(self):
        out = ascii_curve([2.0, 2.0, 2.0], height=4)
        assert "*" in out

    def test_explicit_bounds_clamp(self):
        out = ascii_curve([-5.0, 0.5, 99.0], height=4, y_min=0.0, y_max=1.0)
        assert "*" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_curve([])
        with pytest.raises(ValueError):
            ascii_curve([1.0], height=1)


class TestAsciiSCurves:
    def test_legend_and_markers(self):
        out = ascii_s_curves({"a": [0.0, 1.0], "b": [1.0, 0.0]}, height=4)
        assert "legend: * a, o b" in out
        assert "*" in out and "o" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_s_curves({"a": [1.0], "b": [1.0, 2.0]})

    def test_too_many_series(self):
        with pytest.raises(ValueError):
            ascii_s_curves({str(i): [0.0, 1.0] for i in range(9)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_s_curves({})
