"""Unit tests for the core-side model: requests, wavefronts, cores, CTAs."""

import numpy as np
import pytest

from repro.gpu.core import CoreState
from repro.gpu.cta import (
    DistributedCTAScheduler,
    RoundRobinCTAScheduler,
    make_scheduler,
)
from repro.gpu.request import AccessKind, MemoryRequest
from repro.gpu.wavefront import Wavefront
from repro.workloads.generator import CTAStream


def stream(lines, kinds=None, cta_id=0):
    lines = np.asarray(lines, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(len(lines), dtype=np.uint8)
    return CTAStream(cta_id, lines, np.asarray(kinds, dtype=np.uint8))


class TestMemoryRequest:
    def test_kind_predicates(self):
        load = MemoryRequest(0, AccessKind.LOAD, 32, 0)
        store = MemoryRequest(0, AccessKind.STORE, 32, 0)
        atomic = MemoryRequest(0, AccessKind.ATOMIC, 32, 0)
        bypass = MemoryRequest(0, AccessKind.BYPASS, 32, 0)
        assert load.is_load and not load.is_store
        assert store.is_store
        assert load.accesses_l1 and store.accesses_l1
        assert not atomic.accesses_l1 and not bypass.accesses_l1


class TestWavefront:
    def test_consumes_stream_in_order(self):
        wf = Wavefront(0, 0, stream([3, 4, 5]), compute_gap=2.0)
        assert wf.next_access() == (3, AccessKind.LOAD)
        assert wf.remaining == 2
        assert wf.next_access()[0] == 4
        assert wf.next_access()[0] == 5
        assert wf.done
        assert wf.next_access() is None

    def test_kind_decoding(self):
        wf = Wavefront(0, 0, stream([1, 2], kinds=[1, 2]), 2.0)
        assert wf.next_access()[1] == AccessKind.STORE
        assert wf.next_access()[1] == AccessKind.ATOMIC

    def test_bind_replaces_stream(self):
        wf = Wavefront(0, 0, None, 2.0)
        assert wf.done
        wf.bind(stream([9]))
        assert not wf.done
        assert wf.next_access()[0] == 9

    def test_mlp_validation(self):
        with pytest.raises(ValueError):
            Wavefront(0, 0, None, 2.0, mlp=0)


class TestCoreState:
    def test_slot_count_and_mlp_propagation(self):
        core = CoreState(1, wavefront_slots=4, compute_gap=3.0, mlp=2)
        assert len(core.slots) == 4
        assert all(wf.mlp == 2 for wf in core.slots)

    def test_instruction_accounting(self):
        core = CoreState(0, 2, 4.0)
        core.count_access(4.0)
        assert core.mem_instructions == 1
        assert core.instructions == 5

    def test_cta_queue(self):
        core = CoreState(0, 2, 4.0)
        from collections import deque

        core.assign_ctas(deque([1, 0]))
        streams = [stream([1]), stream([2])]
        assert core.next_stream(streams) is streams[1]
        assert core.next_stream(streams) is streams[0]
        assert core.next_stream(streams) is None

    def test_needs_positive_slots(self):
        with pytest.raises(ValueError):
            CoreState(0, 0, 1.0)


class TestRoundRobinScheduler:
    def test_even_distribution(self):
        qs = RoundRobinCTAScheduler().assign(10, 4)
        assert [list(q) for q in qs] == [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]]

    def test_weighted_assignment_skews(self):
        qs = RoundRobinCTAScheduler().assign(100, 4, weights=[1, 1, 1, 7])
        sizes = [len(q) for q in qs]
        assert sizes[3] == 70
        assert sum(sizes) == 100

    def test_weight_validation(self):
        s = RoundRobinCTAScheduler()
        with pytest.raises(ValueError):
            s.assign(10, 4, weights=[1, 1])
        with pytest.raises(ValueError):
            s.assign(10, 2, weights=[0, 0])
        with pytest.raises(ValueError):
            s.assign(10, 2, weights=[-1, 2])


class TestDistributedScheduler:
    def test_contiguous_blocks(self):
        qs = DistributedCTAScheduler().assign(10, 4)
        assert [list(q) for q in qs] == [[0, 1, 2], [3, 4, 5], [6, 7], [8, 9]]

    def test_all_ctas_assigned_exactly_once(self):
        qs = DistributedCTAScheduler().assign(37, 8)
        seen = [cta for q in qs for cta in q]
        assert sorted(seen) == list(range(37))

    def test_rejects_weights(self):
        with pytest.raises(ValueError):
            DistributedCTAScheduler().assign(10, 4, weights=[1, 1, 1, 1])


class TestFactory:
    def test_make_scheduler(self):
        assert make_scheduler("round_robin").name == "round_robin"
        assert make_scheduler("distributed").name == "distributed"
        with pytest.raises(ValueError):
            make_scheduler("greedy")
