"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import build_parser, main, parse_design
from repro.core.designs import DesignKind


class TestParseDesign:
    def test_named_labels(self):
        assert parse_design("Baseline").kind == DesignKind.BASELINE
        assert parse_design("Pr40").label == "Pr40"
        assert parse_design("sh40+c10+boost").noc1_freq_mult == 2.0
        assert parse_design("CDXBar").kind == DesignKind.CDXBAR
        assert parse_design("SingleL1").kind == DesignKind.SINGLE_L1

    def test_constructor_strings(self):
        spec = parse_design("clustered:40:10:2")
        assert spec.num_dcl1 == 40
        assert spec.num_clusters == 10
        assert spec.noc1_freq_mult == 2.0
        assert parse_design("private:20").label == "Pr20"
        assert parse_design("shared:40").label == "Sh40"

    def test_unknown_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_design("mesh")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_design("clustered:40")  # missing Z


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "C-BLK", "--design", "Pr40", "--scale", "0.1"]
        )
        assert args.app == "C-BLK"
        assert args.design[0].label == "Pr40"
        assert args.scale == 0.1

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "Z-Nope"])

    def test_purity_args(self):
        args = build_parser().parse_args(
            ["purity", "--confirm", "--grid", "P-2MM/Pr40", "--scale", "0.1"]
        )
        assert args.confirm is True
        assert args.grid == ["P-2MM/Pr40"]
        assert args.scale == 0.1
        assert args.static is False

    def test_shard_args(self):
        args = build_parser().parse_args(
            ["shard", "--confirm", "--grid", "P-2MM/Pr40", "--scale", "0.1",
             "--jobs", "3"]
        )
        assert args.confirm is True
        assert args.grid == ["P-2MM/Pr40"]
        assert args.scale == 0.1
        assert args.jobs == 3
        assert args.static is False

    def test_heat_args(self):
        args = build_parser().parse_args(
            ["heat", "--confirm", "--grid", "P-2MM/Sh40+C10", "--scale", "0.1",
             "--no-alloc"]
        )
        assert args.confirm is True
        assert args.grid == ["P-2MM/Sh40+C10"]
        assert args.scale == 0.1
        assert args.no_alloc is True
        assert args.static is False

    def test_profile_json_and_alloc_flags(self):
        args = build_parser().parse_args(
            ["profile", "--app", "P-2MM", "--json", "--alloc"]
        )
        assert args.json is True and args.alloc is True
        plain = build_parser().parse_args(["profile", "--app", "P-2MM"])
        assert plain.json is False and plain.alloc is False

    def test_analyze_json_flag(self):
        args = build_parser().parse_args(["analyze", "--json", "src"])
        assert args.json is True
        assert build_parser().parse_args(["analyze", "src"]).json is False


class TestCommands:
    def test_figures_list(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "tab1" in out

    def test_figures_unknown_id(self, capsys):
        assert main(["figures", "fig99"]) == 2

    def test_figures_analytical(self, capsys):
        assert main(["figures", "tab1", "--scale", "0.05"]) == 0
        assert "peak_bw" in capsys.readouterr().out

    def test_simulate_runs(self, capsys):
        code = main(
            ["simulate", "C-BLK", "--design", "clustered:40:10:2", "--scale", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "Sh40+C10" in out

    def test_simulate_default_design(self, capsys):
        assert main(["simulate", "C-NN", "--scale", "0.05"]) == 0
        assert "Boost" in capsys.readouterr().out

    def test_sweep_runs(self, capsys):
        assert main(["sweep", "C-NN", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Pr40" in out and "Sh40+C10" in out

    def test_sweep_parallel_with_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        args = ["sweep", "C-NN", "--scale", "0.05", "--jobs", "2",
                "--cache-dir", cache]
        assert main(args) == 0
        first = capsys.readouterr().out
        # Warm rerun: every point is served from the persistent cache and
        # the rendered table is identical.
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert any((tmp_path / "cache").rglob("*.json"))

    def test_no_cache_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(["sweep", "C-NN", "--scale", "0.05", "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "envcache").exists()

    def test_figures_jobs_flag_parses(self):
        args = build_parser().parse_args(
            ["figures", "fig14", "--jobs", "4", "--cache-dir", "/tmp/x"])
        assert args.jobs == 4 and args.cache_dir == "/tmp/x"
        assert args.no_cache is False
        assert args.no_fleet is False

    def test_no_fleet_flag_runs_legacy_pool(self, capsys):
        assert main(["sweep", "C-NN", "--scale", "0.05", "--jobs", "2",
                     "--no-fleet"]) == 0
        capsys.readouterr()

    def test_python_dash_m_entry(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "figures", "--list"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "fig14" in proc.stdout
