"""Unit tests for home-DC-L1 selection."""

import pytest

from repro.core.clusters import ClusterGeometry
from repro.core.home import HomeMapper


def mapper(y=40, z=10, cores=80, l2=32, **kw):
    return HomeMapper(ClusterGeometry(cores, y, z, l2), **kw)


class TestInterleave:
    def test_home_in_own_cluster(self):
        m = mapper()
        for core in (0, 7, 8, 79):
            cluster = core // 8
            for line in (0, 1, 5, 41, 1000):
                home = m.home_of(core, line)
                assert cluster * 4 <= home < (cluster + 1) * 4

    def test_range_is_line_mod_m(self):
        m = mapper()
        assert m.range_of_line(0) == 0
        assert m.range_of_line(5) == 1
        assert m.range_of_line(7) == 3

    def test_private_design_maps_to_group_node(self):
        m = mapper(40, 40)  # Pr40: M=1, N=2
        assert m.home_of(0, 12345) == 0
        assert m.home_of(1, 999) == 0
        assert m.home_of(2, 0) == 1
        assert m.home_of(79, 7) == 39

    def test_fully_shared_ignores_core(self):
        m = mapper(40, 1)
        for core in (0, 40, 79):
            assert m.home_of(core, 123) == 123 % 40

    def test_homes_of_line_one_per_cluster(self):
        m = mapper()
        homes = m.homes_of_line(6)  # range 2
        assert homes == [z * 4 + 2 for z in range(10)]

    def test_l2_alignment_invariant(self):
        """The NoC#2 partition invariant: a line's L2 slice is congruent to
        its home range modulo M (Figure 10's per-range crossbars)."""
        m = mapper()
        for line in range(0, 500, 7):
            r = m.range_of_line(line)
            l2_slice = line % 32
            assert l2_slice % 4 == r


class TestBitsStrategy:
    def test_bits_requires_power_of_two(self):
        mapper(40, 10, strategy="bits")  # M = 4 is a power of two: fine
        with pytest.raises(ValueError):
            mapper(40, 1, strategy="bits")  # M = 40 is not

    def test_bits_matches_interleave_for_pow2(self):
        a = mapper(32, 8, strategy="interleave")
        b = HomeMapper(ClusterGeometry(80, 32, 8, 32), strategy="bits", bit_shift=0)
        for line in range(64):
            assert a.range_of_line(line) == b.range_of_line(line)

    def test_bit_shift_moves_selection(self):
        m = HomeMapper(ClusterGeometry(80, 32, 8, 32), strategy="bits", bit_shift=2)
        assert m.range_of_line(0) == 0
        assert m.range_of_line(4) == 1

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            mapper(strategy="hash")
