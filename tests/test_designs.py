"""Unit tests for design specifications."""

import pytest

from repro.core.designs import DesignKind, DesignSpec


class TestConstructors:
    def test_baseline(self):
        spec = DesignSpec.baseline()
        assert spec.kind == DesignKind.BASELINE
        assert not spec.is_decoupled
        assert spec.label == "Baseline"

    def test_private_normalizes_to_clustered_form(self):
        spec = DesignSpec.private(40)
        assert spec.kind == DesignKind.DCL1
        assert spec.num_dcl1 == 40
        assert spec.num_clusters == 40
        assert spec.is_private
        assert not spec.is_fully_shared
        assert spec.label == "Pr40"

    def test_shared(self):
        spec = DesignSpec.shared(40)
        assert spec.num_clusters == 1
        assert spec.is_fully_shared
        assert not spec.is_private
        assert spec.label == "Sh40"

    def test_clustered_label_and_boost(self):
        spec = DesignSpec.clustered(40, 10)
        assert spec.label == "Sh40+C10"
        boosted = DesignSpec.clustered(40, 10, boost=2.0)
        assert boosted.label == "Sh40+C10+Boost"
        assert boosted.noc1_freq_mult == 2.0
        assert boosted.boosted

    def test_clustered_endpoints_match_private_and_shared(self):
        assert DesignSpec.clustered(40, 40).is_private
        assert DesignSpec.clustered(40, 1).is_fully_shared

    def test_cdxbar_labels(self):
        assert DesignSpec.cdxbar().label == "CDXBar"
        assert DesignSpec.cdxbar(noc1_freq_mult=2.0).label == "CDXBar+2xNoC1"
        assert DesignSpec.cdxbar(2.0, 2.0).label == "CDXBar+2xNoC"

    def test_single_l1(self):
        spec = DesignSpec.single_l1()
        assert spec.kind == DesignKind.SINGLE_L1
        assert spec.is_decoupled
        assert spec.num_dcl1 == 1


class TestValidation:
    def test_cluster_count_must_divide(self):
        with pytest.raises(ValueError):
            DesignSpec.clustered(40, 7)

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            DesignSpec.private(0)
        with pytest.raises(ValueError):
            DesignSpec.shared(-1)
        with pytest.raises(ValueError):
            DesignSpec.clustered(40, 0)


class TestDerivedOps:
    def test_with_boost(self):
        spec = DesignSpec.clustered(40, 10).with_boost()
        assert spec.noc1_freq_mult == 2.0
        assert "Boost" in spec.label
        # Idempotent label
        again = spec.with_boost(2.0)
        assert again.label.count("Boost") == 1

    def test_with_perfect_l1(self):
        spec = DesignSpec.private(40).with_perfect_l1()
        assert spec.perfect_l1
        assert "Perfect" in spec.label

    def test_specs_are_hashable_and_frozen(self):
        a = DesignSpec.private(40)
        b = DesignSpec.private(40)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        with pytest.raises(AttributeError):
            a.num_dcl1 = 20

    def test_str(self):
        assert str(DesignSpec.shared(40)) == "Sh40"
