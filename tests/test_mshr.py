"""Unit tests for the MSHR file."""

import pytest

from repro.cache.mshr import MSHRFile


class TestAllocate:
    def test_primary_miss_allocates(self):
        m = MSHRFile(4)
        assert m.allocate(10, "r0") == "new"
        assert m.outstanding(10)
        assert m.primary_misses == 1

    def test_secondary_miss_merges(self):
        m = MSHRFile(4)
        m.allocate(10, "r0")
        assert m.allocate(10, "r1") == "merged"
        assert m.secondary_misses == 1
        assert len(m) == 1  # still one entry

    def test_full_file_stalls(self):
        m = MSHRFile(2)
        m.allocate(1, "a")
        m.allocate(2, "b")
        assert m.full
        assert m.allocate(3, "c") == "stalled"
        assert m.stall_events == 1
        assert m.has_stalled()

    def test_merge_capacity_stalls(self):
        m = MSHRFile(4, max_merged=2)
        m.allocate(1, "a")
        m.allocate(1, "b")
        assert m.allocate(1, "c") == "stalled"

    def test_merge_possible_even_when_full(self):
        m = MSHRFile(1)
        m.allocate(1, "a")
        assert m.full
        assert m.allocate(1, "b") == "merged"


class TestRelease:
    def test_release_returns_all_waiters(self):
        m = MSHRFile(4)
        m.allocate(10, "r0")
        m.allocate(10, "r1")
        assert m.release(10) == ["r0", "r1"]
        assert not m.outstanding(10)

    def test_release_unknown_line_raises(self):
        m = MSHRFile(4)
        with pytest.raises(KeyError):
            m.release(99)

    def test_release_frees_capacity(self):
        m = MSHRFile(1)
        m.allocate(1, "a")
        m.release(1)
        assert m.allocate(2, "b") == "new"


class TestStallQueue:
    def test_fifo_order(self):
        m = MSHRFile(1)
        m.allocate(1, "a")
        m.allocate(2, "b")
        m.allocate(3, "c")
        assert m.pop_stalled() == "b"
        assert m.pop_stalled() == "c"
        assert m.pop_stalled() is None

    def test_drained(self):
        m = MSHRFile(2)
        assert m.drained()
        m.allocate(1, "a")
        assert not m.drained()
        m.release(1)
        assert m.drained()


class TestAccounting:
    def test_peak_occupancy(self):
        m = MSHRFile(4)
        m.allocate(1, "a")
        m.allocate(2, "b")
        m.release(1)
        m.allocate(3, "c")
        assert m.peak_occupancy == 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MSHRFile(0)
        with pytest.raises(ValueError):
            MSHRFile(4, max_merged=0)
