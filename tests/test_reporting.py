"""Tests for the EXPERIMENTS.md generator."""

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.reporting import (
    EXPERIMENT_INDEX,
    build_experiments_md,
    parse_summary_lines,
)

SAMPLE = """[figX] demo table
a | b
--+--
1 | 2
measured: speedup=1.500, miss=0.250
paper:    speedup=1.750, extra=2.000
"""


class TestParse:
    def test_parses_both_footers(self):
        measured, paper = parse_summary_lines(SAMPLE)
        assert measured == {"speedup": 1.5, "miss": 0.25}
        assert paper == {"speedup": 1.75, "extra": 2.0}

    def test_tolerates_missing_footers(self):
        measured, paper = parse_summary_lines("just a table\n1 | 2\n")
        assert measured == {} and paper == {}

    def test_ignores_malformed_items(self):
        measured, _ = parse_summary_lines("measured: ok=1.0, broken, bad=x\n")
        assert measured == {"ok": 1.0}


class TestBuild:
    def test_index_covers_every_experiment(self):
        ids = {e for e, _a, _d in EXPERIMENT_INDEX}
        assert ids == set(EXPERIMENTS)

    def test_document_from_results_dir(self, tmp_path):
        (tmp_path / "fig01.txt").write_text(SAMPLE)
        doc = build_experiments_md(tmp_path)
        assert doc.startswith("# EXPERIMENTS")
        assert "| speedup | 1.750 | 1.500 |" in doc
        assert "| miss |  | 0.250 |" in doc  # paper blank
        assert "| extra | 2.000 | |" in doc  # measured blank
        # Experiments without outputs are flagged, not dropped.
        assert doc.count("no benchmark output found") == len(EXPERIMENT_INDEX) - 1

    def test_every_section_present(self, tmp_path):
        doc = build_experiments_md(tmp_path)
        for _exp, artifact, _desc in EXPERIMENT_INDEX:
            assert artifact in doc
