"""Tests for the SimSanitizer runtime resource ledger.

The acceptance bar: an injected MSHR leak and an injected Q1
port-reservation leak must both be caught at drain and attributed to the
owning request, double-frees must raise at the call site, and a sanitized
run must be bit-identical to an unsanitized one.
"""

import math

import pytest

from repro.analysis.sanitizer import (
    ResourceLedger,
    SanitizerError,
    describe_owner,
    sanitize_from_env,
)
from repro.cache.mshr import MSHRFile
from repro.core.designs import DesignSpec
from repro.gpu.request import AccessKind, MemoryRequest
from repro.noc.crossbar import Crossbar
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.system import GPUSystem


class TestLedger:
    def test_acquire_release_roundtrip(self):
        ledger = ResourceLedger()
        ledger.acquire("mshr", 0x40, owner="req-a")
        assert ledger.outstanding() == 1
        assert ledger.outstanding("mshr") == 1
        hold = ledger.release("mshr", 0x40)
        assert hold.owner == "req-a"
        assert ledger.outstanding() == 0
        assert ledger.check_drained() == []

    def test_double_acquire_raises_with_holder(self):
        ledger = ResourceLedger()
        ledger.acquire("mshr", 1, owner="first")
        with pytest.raises(SanitizerError, match="double-acquire.*first"):
            ledger.acquire("mshr", 1, owner="second")

    def test_double_free_raises(self):
        ledger = ResourceLedger()
        ledger.acquire("port", "a")
        ledger.release("port", "a")
        with pytest.raises(SanitizerError, match="double-free"):
            ledger.release("port", "a")

    def test_leaks_reported_with_owner_and_history(self):
        clock = [0.0]
        ledger = ResourceLedger(clock=lambda: clock[0])
        req = MemoryRequest(0x1000, AccessKind.LOAD, 32, core_id=7)
        req.line = 0x20
        clock[0] = 12.0
        ledger.acquire("l1-mshr[3]", 0x20, owner=req)
        clock[0] = 40.0
        ledger.note("l1-mshr[3]", 0x20, "merged request(core=9)")
        findings = ledger.check_drained()
        assert len(findings) == 1
        assert "l1-mshr[3]" in findings[0]
        assert "core=7" in findings[0]
        assert "t=12.0" in findings[0]
        assert "merged request(core=9)" in findings[0]
        with pytest.raises(SanitizerError, match="leaked"):
            ledger.assert_drained()

    def test_describe_owner_for_requests_and_fallback(self):
        req = MemoryRequest(0x80, AccessKind.STORE, 32, core_id=3)
        req.line = 0x2
        assert "core=3" in describe_owner(req)
        assert "STORE" in describe_owner(req)
        assert describe_owner(None) == "<no owner>"
        assert describe_owner("plain") == "'plain'"

    def test_reservation_checks(self):
        ledger = ResourceLedger()
        ledger.check_reservation("xb[0->1]", 10.0, 4, 26.0)  # fine
        with pytest.raises(SanitizerError, match="bad start time"):
            ledger.check_reservation("xb[0->1]", float("nan"), 4, 26.0)
        with pytest.raises(SanitizerError, match="non-positive size"):
            ledger.check_reservation("xb[0->1]", 10.0, 0, 26.0)
        with pytest.raises(SanitizerError, match="runaway"):
            ledger.check_reservation("xb[0->1]", 10.0, 4, 10.0 + 2e9)

    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_from_env()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_from_env()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_from_env()


class TestEngineIntegration:
    def test_schedule_after_drain_flagged(self):
        eng = Engine()
        ledger = ResourceLedger(clock=lambda: eng.now)
        eng.attach_sanitizer(ledger)
        eng.schedule(1.0, lambda _: None)
        eng.run()
        with pytest.raises(SanitizerError, match="after drain"):
            eng.schedule(2.0, lambda _: None)

    def test_without_sanitizer_post_drain_schedule_allowed(self):
        eng = Engine()
        eng.schedule(1.0, lambda _: None)
        eng.run()
        eng.schedule(2.0, lambda _: None)  # legacy behaviour preserved


class TestMSHRIntegration:
    def test_allocate_release_mirrored(self):
        ledger = ResourceLedger()
        mshr = MSHRFile(4)
        mshr.ledger = ledger
        mshr.ledger_scope = "l1-mshr[0]"
        assert mshr.allocate(0x10, "req-a") == "new"
        assert ledger.outstanding("l1-mshr[0]") == 1
        assert mshr.allocate(0x10, "req-b") == "merged"
        (hold,) = ledger.holds()
        assert any("merged" in h for h in hold.history)
        mshr.release(0x10)
        assert ledger.outstanding() == 0

    def test_double_release_attributed(self):
        ledger = ResourceLedger()
        mshr = MSHRFile(4)
        mshr.ledger = ledger
        mshr.allocate(0x10, "req-a")
        mshr.release(0x10)
        with pytest.raises(SanitizerError, match="double-free"):
            mshr.release(0x10)

    def test_unsanitized_double_release_still_keyerror(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x10, "req-a")
        mshr.release(0x10)
        with pytest.raises(KeyError):
            mshr.release(0x10)


class TestCrossbarIntegration:
    def test_bad_traverse_time_flagged(self):
        xb = Crossbar("xb", 2, 2, cycles_per_flit=1.0, latency=4.0)
        xb.attach_sanitizer(ResourceLedger())
        xb.traverse(0.0, 0, 1, 2)  # fine
        with pytest.raises(SanitizerError, match="bad start time"):
            xb.traverse(float("nan"), 0, 1, 2)

    def test_runaway_reservation_flagged(self):
        xb = Crossbar("xb", 1, 1, cycles_per_flit=1.0, latency=0.0)
        xb.attach_sanitizer(ResourceLedger())
        with pytest.raises(SanitizerError, match="runaway"):
            xb.traverse(0.0, 0, 0, 2_000_000_000)

    def test_disabled_crossbar_unchanged(self):
        # Without a ledger even an absurd reservation passes through
        # untouched (serialization on the in port, then the out port).
        xb = Crossbar("xb", 1, 1, cycles_per_flit=1.0, latency=0.0)
        assert xb.traverse(0.0, 0, 0, 2_000_000_000) == 4_000_000_000.0


class TestSystemIntegration:
    def test_sanitized_run_is_bit_identical(self, tiny_config, shared_profile):
        spec = DesignSpec.clustered(8, 4)
        plain = GPUSystem(shared_profile, spec, tiny_config).run()
        cfg = SimConfig(gpu=tiny_config.gpu, scale=1.0, sanitize=True)
        sanitized = GPUSystem(shared_profile, spec, cfg).run()
        assert sanitized.cycles == plain.cycles
        assert sanitized.loads == plain.loads
        assert sanitized.l1_miss_rate == plain.l1_miss_rate

    def test_clean_run_ledger_balances(self, tiny_config, shared_profile):
        cfg = SimConfig(gpu=tiny_config.gpu, scale=1.0, sanitize=True,
                        dcl1_queue_depth=4)
        system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4), cfg)
        system.run()
        ledger = system._ledger
        assert ledger is not None
        assert ledger.acquires == ledger.releases > 0
        assert ledger.outstanding() == 0

    def test_env_var_enables_sanitizer(self, monkeypatch, tiny_gpu, shared_profile):
        # The environment is resolved once, at SimConfig construction
        # (never by the sim core at run time — SimPure SP401), so the
        # config must be built after the env var changes.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cfg = SimConfig(gpu=tiny_gpu)
        assert cfg.sanitize is True
        system = GPUSystem(shared_profile, DesignSpec.baseline(), cfg)
        assert system._ledger is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        cfg = SimConfig(gpu=tiny_gpu)
        assert cfg.sanitize is False
        system = GPUSystem(shared_profile, DesignSpec.baseline(), cfg)
        assert system._ledger is None
        # Explicit beats environment in both directions.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert SimConfig(gpu=tiny_gpu, sanitize=False).sanitize is False

    def test_injected_mshr_leak_caught_and_attributed(
        self, monkeypatch, tiny_config, streaming_profile
    ):
        def leaky_release(self, line):
            # The classic leak: the fill arrives but the entry is never
            # freed and its waiters are dropped on the floor.  Without the
            # sanitizer this drains into an opaque "requests outstanding"
            # RuntimeError; with it, every stuck entry is named.
            return []

        monkeypatch.setattr(MSHRFile, "release", leaky_release)
        cfg = SimConfig(gpu=tiny_config.gpu, scale=1.0, sanitize=True)
        system = GPUSystem(streaming_profile, DesignSpec.clustered(8, 4), cfg)
        with pytest.raises(SanitizerError) as exc:
            system.run()
        msg = str(exc.value)
        assert "leaked" in msg
        assert "mshr" in msg
        assert "request(core=" in msg  # attributed to the owning request

    def test_injected_port_reservation_leak_caught_and_attributed(
        self, monkeypatch, tiny_config, shared_profile
    ):
        # Drop every Q1 slot release: with a deep queue the run still
        # completes, and the sanitizer reports each slot never given back.
        monkeypatch.setattr(GPUSystem, "_release_node", lambda self, req: None)
        cfg = SimConfig(gpu=tiny_config.gpu, scale=1.0, sanitize=True,
                        dcl1_queue_depth=100_000)
        system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4), cfg)
        with pytest.raises(SanitizerError) as exc:
            system.run()
        msg = str(exc.value)
        assert "leaked" in msg
        assert "dcl1-q1" in msg
        assert "request(core=" in msg

    def test_cache_overflow_caught_at_install_time(self, tiny_config, shared_profile):
        cfg = SimConfig(gpu=tiny_config.gpu, scale=1.0, sanitize=True)
        system = GPUSystem(shared_profile, DesignSpec.baseline(), cfg)
        cache = system.l1_caches[0]
        # Corrupt one set past its associativity behind the cache's back,
        # then install into it: the sanitizer flags it at install time.
        target_set = cache._sets[cache.set_index(0)]
        line = 0
        while len(target_set) <= cache.assoc:
            target_set.insert(line)
            line += cache.num_sets
        with pytest.raises(SanitizerError, match="holds"):
            cache.install(line)


class TestLiveAudit:
    def test_live_audit_runs_mid_flight(self, tiny_config, shared_profile):
        from repro.sim.validation import live_audit

        cfg = SimConfig(gpu=tiny_config.gpu, scale=1.0, sanitize=True)
        system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4), cfg)
        assert live_audit(system) == []  # pre-run: nothing outstanding yet

    def test_live_audit_flags_negative_outstanding(self, tiny_config, shared_profile):
        from repro.sim.validation import live_audit

        system = GPUSystem(shared_profile, DesignSpec.baseline(), tiny_config)
        system.outstanding = -1
        assert any("negative" in f for f in live_audit(system))

    def test_live_audit_flags_directory_divergence(self, tiny_config, shared_profile):
        from repro.sim.validation import live_audit

        system = GPUSystem(shared_profile, DesignSpec.baseline(), tiny_config)
        system.run()
        system.l1_caches[0]._sets[0].insert(10**9)  # resident but undirected
        assert any("directory" in f for f in live_audit(system))


def test_engine_rejects_nonfinite_times():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(math.nan, lambda _: None)
    with pytest.raises(ValueError):
        eng.schedule(math.inf, lambda _: None)
    with pytest.raises(ValueError):
        eng.schedule(-1.0, lambda _: None)
    with pytest.raises(ValueError):
        eng.schedule_in(math.nan, lambda _: None)
