"""Tests for the SVG chart renderer."""

import pytest

from repro.analysis.svg import bar_chart, line_chart, write


class TestBarChart:
    def test_valid_svg_structure(self):
        svg = bar_chart(["a", "b"], {"s1": [1.0, 2.0], "s2": [0.5, 1.5]},
                        title="T", y_label="speedup")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "T" in svg
        assert svg.count("<rect") >= 5  # background + legend + 4 bars

    def test_one_bar_per_category_series(self):
        svg = bar_chart(["a", "b", "c"], {"x": [1, 2, 3]})
        # background + 3 bars + 1 legend swatch
        assert svg.count("<rect") == 5

    def test_escapes_markup(self):
        svg = bar_chart(["<evil>"], {"a&b": [1.0]}, title="x<y")
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg
        assert "a&amp;b" in svg

    def test_baseline_reference_line(self):
        with_line = bar_chart(["a"], {"s": [2.0]}, baseline=1.0)
        without = bar_chart(["a"], {"s": [2.0]})
        assert with_line.count("<line") == without.count("<line") + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([], {"s": []})
        with pytest.raises(ValueError):
            bar_chart(["a"], {})
        with pytest.raises(ValueError):
            bar_chart(["a", "b"], {"s": [1.0]})


class TestLineChart:
    def test_polyline_per_series(self):
        svg = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]})
        assert svg.count("<polyline") == 2
        assert svg.count("<circle") == 6

    def test_markers_optional(self):
        svg = line_chart({"a": [1, 2]}, markers=False)
        assert "<circle" not in svg

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            line_chart({"a": [1]})


class TestWrite:
    def test_creates_parents_and_writes(self, tmp_path):
        svg = bar_chart(["a"], {"s": [1.0]})
        out = write(svg, tmp_path / "deep" / "chart.svg")
        assert out.exists()
        assert out.read_text() == svg
