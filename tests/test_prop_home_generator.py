"""Property-based tests for home mapping, geometry and trace generation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import ClusterGeometry
from repro.core.home import HomeMapper
from repro.workloads.generator import generate_workload
from repro.workloads.profile import AppProfile

# Geometries where Z divides both the core count and the DC-L1 count.
geometries = st.sampled_from(
    [
        (80, 40, 1, 32),
        (80, 40, 5, 32),
        (80, 40, 10, 32),
        (80, 40, 20, 32),
        (80, 40, 40, 32),
        (80, 80, 80, 32),
        (80, 20, 4, 32),
        (120, 60, 10, 48),
        (16, 8, 4, 8),
    ]
)


class TestHomeMappingProperties:
    @given(geometries, st.integers(0, 79), st.integers(0, 1 << 28))
    @settings(max_examples=200, deadline=None)
    def test_home_is_valid_and_in_core_cluster(self, geo, core, line):
        cores, y, z, l2 = geo
        core = core % cores
        g = ClusterGeometry(cores, y, z, l2)
        m = HomeMapper(g)
        home = m.home_of(core, line)
        assert 0 <= home < y
        assert g.cluster_of_dcl1(home) == g.cluster_of_core(core)

    @given(geometries, st.integers(0, 1 << 28))
    @settings(max_examples=200, deadline=None)
    def test_one_home_per_cluster(self, geo, line):
        cores, y, z, l2 = geo
        g = ClusterGeometry(cores, y, z, l2)
        m = HomeMapper(g)
        homes = m.homes_of_line(line)
        assert len(homes) == z
        assert len(set(homes)) == z
        assert all(m.range_of_line(line) == h % g.dcl1_per_cluster for h in homes)

    @given(geometries, st.integers(0, 1 << 28))
    @settings(max_examples=200, deadline=None)
    def test_noc2_partition_invariant(self, geo, line):
        """When NoC#2 is partitioned per range, the L2 slice serving a line
        must be reachable from that line's home range crossbar."""
        cores, y, z, l2 = geo
        g = ClusterGeometry(cores, y, z, l2)
        if not g.noc2_partitioned:
            return
        m = HomeMapper(g)
        r = m.range_of_line(line)
        slice_ = line % l2
        assert slice_ % g.dcl1_per_cluster == r

    @given(geometries)
    @settings(max_examples=50, deadline=None)
    def test_cores_partitioned_into_clusters(self, geo):
        cores, y, z, l2 = geo
        g = ClusterGeometry(cores, y, z, l2)
        seen = []
        for cluster in range(z):
            seen.extend(g.cores_of_cluster(cluster))
        assert seen == list(range(cores))


profiles = st.builds(
    AppProfile,
    name=st.sampled_from(["pa", "pb", "pc"]),
    num_ctas=st.integers(1, 24),
    accesses_per_cta=st.integers(1, 96),
    shared_lines=st.integers(16, 512),
    shared_fraction=st.floats(0.0, 0.9),
    neighbor_fraction=st.just(0.1),
    private_lines=st.integers(8, 256),
    block_lines=st.integers(1, 32),
    block_repeats=st.integers(1, 4),
    store_fraction=st.floats(0.0, 0.3),
    camp_fraction=st.floats(0.0, 1.0),
    camp_width=st.integers(1, 16),
    camp_shared=st.booleans(),
)


class TestGeneratorProperties:
    @given(profiles)
    @settings(max_examples=60, deadline=None)
    def test_exact_lengths_and_nonnegative_lines(self, prof):
        w = generate_workload(prof)
        assert w.num_ctas == prof.num_ctas
        for s in w.streams:
            assert len(s) == prof.accesses_per_cta
            assert (s.lines >= 0).all()
            assert set(s.kinds.tolist()) <= {0, 1, 2, 3}

    @given(profiles)
    @settings(max_examples=30, deadline=None)
    def test_generation_is_pure(self, prof):
        w1 = generate_workload(prof)
        w2 = generate_workload(prof)
        for a, b in zip(w1.streams, w2.streams):
            assert (a.lines == b.lines).all()
            assert (a.kinds == b.kinds).all()

    @given(profiles, st.floats(0.05, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_bounds(self, prof, scale):
        w = generate_workload(prof, scale)
        assert 1 <= w.num_ctas <= max(1, prof.num_ctas)
