"""Tests for the persistent result store: key stability, collision
resistance, serialization round-trips, and corruption tolerance."""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.store import (
    CACHE_SCHEMA_VERSION,
    DiskResultCache,
    sim_cache_key,
)
from repro.sim.system import simulate
from repro.workloads.profile import AppProfile
from repro.workloads.suite import get_app

PROFILE = AppProfile(name="unit", num_ctas=4, accesses_per_cta=8)
SPEC = DesignSpec.clustered(8, 4)
CFG = SimConfig(gpu=GPUConfig(num_cores=16, num_l2_slices=8, num_channels=4))


class TestCacheKey:
    def test_key_is_stable_hex(self):
        key = sim_cache_key(PROFILE, SPEC, CFG)
        assert key == sim_cache_key(PROFILE, SPEC, CFG)
        assert len(key) == 64
        int(key, 16)  # hex digest

    def test_equal_values_equal_keys(self):
        """Logically identical, separately constructed inputs agree."""
        profile2 = AppProfile(name="unit", num_ctas=4, accesses_per_cta=8)
        spec2 = DesignSpec.clustered(8, 4)
        cfg2 = SimConfig(gpu=GPUConfig(num_cores=16, num_l2_slices=8, num_channels=4))
        assert sim_cache_key(profile2, spec2, cfg2) == sim_cache_key(PROFILE, SPEC, CFG)

    def test_key_stable_across_processes(self):
        """Same logical config -> same key in a fresh interpreter."""
        script = (
            "from repro.sim.store import sim_cache_key\n"
            "from repro.sim.config import GPUConfig, SimConfig\n"
            "from repro.core.designs import DesignSpec\n"
            "from repro.workloads.profile import AppProfile\n"
            "print(sim_cache_key(\n"
            "    AppProfile(name='unit', num_ctas=4, accesses_per_cta=8),\n"
            "    DesignSpec.clustered(8, 4),\n"
            "    SimConfig(gpu=GPUConfig(num_cores=16, num_l2_slices=8,\n"
            "                            num_channels=4))))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=dict(os.environ),
        )
        assert out.stdout.strip() == sim_cache_key(PROFILE, SPEC, CFG)

    # A changed value for every SimConfig field (keyed and neutral).
    _SIMCONFIG_CHANGED = {
        "gpu": GPUConfig(num_cores=32, num_l2_slices=8, num_channels=4),
        "scale": 0.123,
        "cta_scheduler": "distributed",
        "l1_latency_override": 11.0,
        "home_strategy": "bits",
        "home_bit_shift": 3,
        "full_line_noc1_replies": True,
        "l1_policy": "fifo",
        "l2_policy": "fifo",
        "l1_bypass": True,
        "dcl1_queue_depth": 4,
        "sanitize": True,
        "watchdog": True,
        "watchdog_window": 1.0,
        "watchdog_same_cycle_limit": 7,
        "race_check": True,
        "race_seed": 42,
        "max_events": 123,
    }

    def test_changed_value_map_is_exhaustive(self):
        """Every SimConfig field has an entry above — a new field without
        one fails here instead of silently skipping the key check."""
        assert set(self._SIMCONFIG_CHANGED) == {
            f.name for f in dataclasses.fields(SimConfig)
        }

    @pytest.mark.parametrize("field_name", sorted(
        {f.name for f in dataclasses.fields(SimConfig)}
        - SimConfig.FINGERPRINT_NEUTRAL_FIELDS
    ))
    def test_any_keyed_simconfig_field_changes_key(self, field_name):
        base = sim_cache_key(PROFILE, SPEC, CFG)
        changed = self._SIMCONFIG_CHANGED[field_name]
        assert changed != getattr(CFG, field_name), field_name
        cfg = dataclasses.replace(CFG, **{field_name: changed})
        assert sim_cache_key(PROFILE, SPEC, cfg) != base, field_name

    @pytest.mark.parametrize("field_name", sorted(SimConfig.FINGERPRINT_NEUTRAL_FIELDS))
    def test_neutral_simconfig_field_keeps_key(self, field_name):
        """Observation-only knobs must NOT fragment the shared cache:
        the same simulation with the watchdog/sanitizer toggled hits the
        same entry (their bit-invariance is proven by purity --confirm)."""
        base = sim_cache_key(PROFILE, SPEC, CFG)
        changed = self._SIMCONFIG_CHANGED[field_name]
        assert changed != getattr(CFG, field_name), field_name
        cfg = dataclasses.replace(CFG, **{field_name: changed})
        assert sim_cache_key(PROFILE, SPEC, cfg) == base, field_name

    def test_neutral_profile_field_keeps_key(self):
        profile = dataclasses.replace(PROFILE, suite="polybench")
        assert sim_cache_key(profile, SPEC, CFG) == sim_cache_key(PROFILE, SPEC, CFG)

    def test_cache_key_manifest_matches_classes(self):
        from repro.sim.store import cache_key_manifest

        manifest = cache_key_manifest()
        assert set(manifest) == {"profile", "design", "config", "gpu"}
        cfg = manifest["config"]
        assert cfg["class"] == "SimConfig"
        assert set(cfg["neutral"]) == SimConfig.FINGERPRINT_NEUTRAL_FIELDS
        assert set(cfg["keyed"]) | set(cfg["neutral"]) == {
            f.name for f in dataclasses.fields(SimConfig)
        }
        assert not set(cfg["keyed"]) & set(cfg["neutral"])
        assert manifest["profile"]["neutral"] == ("suite",)
        assert manifest["design"]["neutral"] == ()
        assert manifest["gpu"]["neutral"] == ()

    @pytest.mark.parametrize("field_name,value", [
        ("kind", DesignSpec.baseline().kind),
        ("num_dcl1", 4),
        ("num_clusters", 8),
        ("noc1_freq_mult", 2.0),
        ("noc2_freq_mult", 2.0),
        ("l1_size_mult", 16.0),
        ("perfect_l1", True),
        ("label", "other"),
    ])
    def test_any_designspec_field_changes_key(self, field_name, value):
        base = sim_cache_key(PROFILE, SPEC, CFG)
        assert value != getattr(SPEC, field_name)
        spec = dataclasses.replace(SPEC, **{field_name: value})
        assert sim_cache_key(PROFILE, spec, CFG) != base

    @pytest.mark.parametrize("field_name,value", [
        ("name", "other"),
        ("num_ctas", 5),
        ("accesses_per_cta", 9),
        ("shared_lines", 64),
        ("block_repeats", 3),
        ("store_fraction", 0.25),
        ("imbalance", 0.5),
        ("trace_variant", 1),
    ])
    def test_any_profile_field_changes_key(self, field_name, value):
        base = sim_cache_key(PROFILE, SPEC, CFG)
        assert value != getattr(PROFILE, field_name)
        profile = dataclasses.replace(PROFILE, **{field_name: value})
        assert sim_cache_key(profile, SPEC, CFG) != base

    def test_gpu_field_changes_key(self):
        base = sim_cache_key(PROFILE, SPEC, CFG)
        gpu = dataclasses.replace(CFG.gpu, l1_latency=30.0)
        cfg = dataclasses.replace(CFG, gpu=gpu)
        assert sim_cache_key(PROFILE, SPEC, cfg) != base

    def test_schema_version_changes_key(self, monkeypatch):
        import repro.sim.store as store

        base = sim_cache_key(PROFILE, SPEC, CFG)
        monkeypatch.setattr(store, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1)
        assert sim_cache_key(PROFILE, SPEC, CFG) != base


class TestSerializationRoundtrip:
    def test_fingerprint_survives_roundtrip(self, tiny_config):
        from repro.sim.results import SimResult

        res = simulate(get_app("T-AlexNet"), SPEC,
                       dataclasses.replace(tiny_config, scale=0.02))
        blob = json.dumps(res.to_jsonable())
        back = SimResult.from_jsonable(json.loads(blob))
        assert back.fingerprint() == res.fingerprint()

    def test_unknown_field_raises(self):
        from repro.sim.results import SimResult

        data = SimResult().to_jsonable()
        data["not_a_field"] = 1
        with pytest.raises(TypeError):
            SimResult.from_jsonable(data)


class TestDiskResultCache:
    def make_result(self, tiny_config):
        return simulate(get_app("C-BLK"), SPEC,
                        dataclasses.replace(tiny_config, scale=0.02))

    def test_roundtrip(self, tmp_path, tiny_config):
        cache = DiskResultCache(tmp_path)
        res = self.make_result(tiny_config)
        key = sim_cache_key(PROFILE, SPEC, CFG)
        assert cache.get(key) is None
        cache.put(key, res)
        assert len(cache) == 1
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.fingerprint() == res.fingerprint()
        assert cache.hits == 1 and cache.misses == 1

    def test_layout_is_versioned_and_fanned_out(self, tmp_path, tiny_config):
        cache = DiskResultCache(tmp_path)
        key = sim_cache_key(PROFILE, SPEC, CFG)
        cache.put(key, self.make_result(tiny_config))
        path = cache.path_for(key)
        assert path.exists()
        assert path.parent.name == key[:2]
        assert path.parent.parent.name == f"v{CACHE_SCHEMA_VERSION}"

    def test_truncated_entry_is_a_miss(self, tmp_path, tiny_config):
        cache = DiskResultCache(tmp_path)
        key = sim_cache_key(PROFILE, SPEC, CFG)
        cache.put(key, self.make_result(tiny_config))
        path = cache.path_for(key)
        path.write_text(path.read_text()[: 40])
        assert cache.get(key) is None

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        key = sim_cache_key(PROFILE, SPEC, CFG)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("not json at all \x00\x01")
        assert cache.get(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, tiny_config):
        cache = DiskResultCache(tmp_path)
        key = sim_cache_key(PROFILE, SPEC, CFG)
        cache.put(key, self.make_result(tiny_config))
        path = cache.path_for(key)
        doc = json.loads(path.read_text())
        doc["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        assert cache.get(key) is None

    def test_stale_result_fields_are_a_miss(self, tmp_path, tiny_config):
        """An entry written by a simulator with different SimResult fields
        must not deserialize into a half-filled result."""
        cache = DiskResultCache(tmp_path)
        key = sim_cache_key(PROFILE, SPEC, CFG)
        cache.put(key, self.make_result(tiny_config))
        path = cache.path_for(key)
        doc = json.loads(path.read_text())
        doc["result"]["field_from_the_future"] = 1
        path.write_text(json.dumps(doc))
        assert cache.get(key) is None

    def test_clear(self, tmp_path, tiny_config):
        cache = DiskResultCache(tmp_path)
        key = sim_cache_key(PROFILE, SPEC, CFG)
        cache.put(key, self.make_result(tiny_config))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key) is None
