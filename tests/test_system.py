"""Integration tests for the full system on a tiny platform.

These exercise the complete request lifecycle across all design families
and assert structural invariants (conservation, determinism, stats
consistency) rather than calibrated magnitudes.
"""

import dataclasses

import pytest

from repro.core.designs import DesignSpec
from repro.gpu.request import AccessKind
from repro.sim.config import SimConfig
from repro.sim.system import GPUSystem, simulate
from repro.workloads.generator import generate_workload
from repro.workloads.profile import AppProfile

DESIGNS = [
    DesignSpec.baseline(),
    DesignSpec.private(8),
    DesignSpec.shared(8),
    DesignSpec.clustered(8, 4),
    DesignSpec.clustered(8, 4, boost=2.0),
    DesignSpec.cdxbar(),
    DesignSpec.single_l1(),
]


@pytest.fixture(params=DESIGNS, ids=[d.label for d in DESIGNS])
def design(request):
    return request.param


class TestLifecycle:
    def test_all_requests_complete(self, design, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, design, tiny_config)
        res = system.run()
        assert system.outstanding == 0
        assert res.total_requests == shared_profile.total_accesses
        assert res.cycles > 0
        assert res.ipc > 0

    def test_instruction_count_matches_trace(self, design, tiny_config, shared_profile):
        res = simulate(shared_profile, design, tiny_config)
        expected = shared_profile.total_accesses * (1 + int(shared_profile.compute_gap))
        assert res.instructions == expected

    def test_l1_accesses_cover_loads_and_stores(self, design, tiny_config, streaming_profile):
        res = simulate(streaming_profile, design, tiny_config)
        # Every LOAD/STORE probes the L1 level at least once (replays on
        # MSHR stalls can add more).
        assert res.l1.accesses >= res.loads + res.stores

    def test_single_use(self, tiny_config, shared_profile):
        system = GPUSystem(shared_profile, DesignSpec.baseline(), tiny_config)
        system.run()
        with pytest.raises(RuntimeError):
            system.run()


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_config, shared_profile):
        a = simulate(shared_profile, DesignSpec.clustered(8, 4), tiny_config)
        b = simulate(shared_profile, DesignSpec.clustered(8, 4), tiny_config)
        assert a.cycles == b.cycles
        assert a.l1.misses == b.l1.misses
        assert a.load_rtt_sum == b.load_rtt_sum


class TestDesignBehaviour:
    def test_shared_design_eliminates_replication(self, tiny_config, shared_profile):
        res = simulate(shared_profile, DesignSpec.shared(8), tiny_config)
        assert res.replication_ratio == 0.0
        assert res.mean_replicas <= 1.0

    def test_clustered_bounds_replicas(self, tiny_config, shared_profile):
        res = simulate(shared_profile, DesignSpec.clustered(8, 4), tiny_config)
        assert res.mean_replicas <= 4.0 + 1e-9

    def test_baseline_replicates_shared_data(self, tiny_config, shared_profile):
        res = simulate(shared_profile, DesignSpec.baseline(), tiny_config)
        assert res.replication_ratio > 0.2
        assert res.mean_replicas > 1.0

    def test_private_profile_never_replicates(self, tiny_config, private_profile):
        res = simulate(private_profile, DesignSpec.baseline(), tiny_config)
        assert res.replication_ratio == 0.0

    def test_shared_design_cuts_miss_rate(self, tiny_config, shared_profile):
        base = simulate(shared_profile, DesignSpec.baseline(), tiny_config)
        sh = simulate(shared_profile, DesignSpec.shared(8), tiny_config)
        assert sh.l1_miss_rate < base.l1_miss_rate

    def test_perfect_l1_hits_everything(self, tiny_config, shared_profile):
        spec = DesignSpec.baseline(perfect_l1=True)
        res = simulate(shared_profile, spec, tiny_config)
        assert res.l1_miss_rate == 0.0
        assert res.dram_accesses == 0

    def test_16x_cache_reduces_misses(self, tiny_config, shared_profile):
        base = simulate(shared_profile, DesignSpec.baseline(), tiny_config)
        big = simulate(shared_profile, DesignSpec.baseline(l1_size_mult=16.0), tiny_config)
        assert big.l1.misses < base.l1.misses

    def test_boost_speeds_up_clustered(self, tiny_config, shared_profile):
        plain = simulate(shared_profile, DesignSpec.clustered(8, 4), tiny_config)
        boosted = simulate(shared_profile, DesignSpec.clustered(8, 4, boost=2.0), tiny_config)
        assert boosted.cycles <= plain.cycles


class TestTrafficKinds:
    def test_atomics_skip_l1(self, tiny_config):
        prof = AppProfile(
            name="atomic-heavy", num_ctas=32, accesses_per_cta=32,
            shared_lines=64, shared_fraction=1.0, atomic_fraction=0.5,
            block_lines=4, block_repeats=1,
        )
        res = simulate(prof, DesignSpec.clustered(8, 4), tiny_config)
        assert res.atomics > 0
        # Atomics never probe the DC-L1 cache.
        assert res.l1.accesses >= res.loads
        assert res.l1.accesses < res.loads + res.atomics + res.stores + 1

    def test_bypass_traffic_reaches_l2(self, tiny_config):
        prof = AppProfile(
            name="bypass-heavy", num_ctas=32, accesses_per_cta=32,
            shared_lines=64, shared_fraction=1.0, bypass_fraction=0.4,
            block_lines=4, block_repeats=1,
        )
        res = simulate(prof, DesignSpec.clustered(8, 4), tiny_config)
        assert res.bypasses > 0
        assert res.l2.accesses >= res.bypasses

    def test_stores_write_through_to_l2(self, tiny_config, streaming_profile):
        res = simulate(streaming_profile, DesignSpec.baseline(), tiny_config)
        assert res.stores > 0
        assert res.l2.store_hits + res.l2.store_misses == res.stores


class TestLatencyKnobs:
    def test_latency_override_applies(self, tiny_gpu, shared_profile):
        slow = SimConfig(gpu=tiny_gpu, l1_latency_override=64.0)
        fast = SimConfig(gpu=tiny_gpu, l1_latency_override=0.0)
        r_slow = simulate(shared_profile, DesignSpec.baseline(), slow)
        r_fast = simulate(shared_profile, DesignSpec.baseline(), fast)
        assert r_fast.load_rtt_mean < r_slow.load_rtt_mean

    def test_dcl1_latency_reflects_aggregation(self, tiny_gpu):
        cfg = SimConfig(gpu=tiny_gpu)
        prof = AppProfile(name="t", num_ctas=8, accesses_per_cta=8,
                          shared_lines=16, shared_fraction=1.0,
                          block_lines=4, block_repeats=2)
        sys8 = GPUSystem(prof, DesignSpec.private(8), cfg)
        sys4 = GPUSystem(prof, DesignSpec.private(4), cfg)
        assert sys4.l1_banks[0].latency > sys8.l1_banks[0].latency


class TestAblationKnobs:
    def test_full_line_replies_add_noc1_traffic(self, tiny_gpu, shared_profile):
        lean = simulate(shared_profile, DesignSpec.clustered(8, 4),
                        SimConfig(gpu=tiny_gpu))
        fat = simulate(shared_profile, DesignSpec.clustered(8, 4),
                       SimConfig(gpu=tiny_gpu, full_line_noc1_replies=True))
        assert fat.total_flit_hops > lean.total_flit_hops
        assert fat.cycles >= lean.cycles

    def test_home_bits_strategy_runs(self, tiny_gpu, shared_profile):
        cfg = SimConfig(gpu=tiny_gpu, home_strategy="bits")
        res = simulate(shared_profile, DesignSpec.clustered(8, 4), cfg)
        assert res.total_requests == shared_profile.total_accesses

    def test_finite_node_queues_backpressure(self, tiny_gpu, shared_profile):
        free = simulate(shared_profile, DesignSpec.shared(8), SimConfig(gpu=tiny_gpu))
        tight = simulate(shared_profile, DesignSpec.shared(8),
                         SimConfig(gpu=tiny_gpu, dcl1_queue_depth=1))
        assert tight.node_queue_stalls > 0
        assert free.node_queue_stalls == 0
        assert tight.cycles >= free.cycles
        assert tight.total_requests == free.total_requests

    def test_finite_queues_audit_clean(self, tiny_gpu, shared_profile):
        from repro.sim.validation import audit

        system = GPUSystem(shared_profile, DesignSpec.clustered(8, 4),
                           SimConfig(gpu=tiny_gpu, dcl1_queue_depth=2))
        system.run()
        assert audit(system) == []

    def test_queue_depth_validation(self, tiny_gpu, shared_profile):
        with pytest.raises(ValueError):
            GPUSystem(shared_profile, DesignSpec.shared(8),
                      SimConfig(gpu=tiny_gpu, dcl1_queue_depth=0))

    def test_queue_depth_ignored_for_baseline(self, tiny_gpu, shared_profile):
        res = simulate(shared_profile, DesignSpec.baseline(),
                       SimConfig(gpu=tiny_gpu, dcl1_queue_depth=1))
        assert res.node_queue_stalls == 0

    def test_fifo_policy_runs_and_differs(self, tiny_gpu, shared_profile):
        lru = simulate(shared_profile, DesignSpec.baseline(), SimConfig(gpu=tiny_gpu))
        fifo = simulate(shared_profile, DesignSpec.baseline(),
                        SimConfig(gpu=tiny_gpu, l1_policy="fifo", l2_policy="fifo"))
        assert fifo.total_requests == lru.total_requests
        # Policies genuinely differ in behaviour (hit counts diverge).
        assert fifo.l1.hits != lru.l1.hits or fifo.l2.hits != lru.l2.hits


class TestScaledPlatform:
    def test_larger_platform_runs(self, shared_profile):
        gpu = dataclasses.replace(
            SimConfig().gpu, num_cores=24, num_l2_slices=12, num_channels=6
        )
        cfg = SimConfig(gpu=gpu)
        res = simulate(shared_profile, DesignSpec.clustered(12, 2, boost=2.0), cfg)
        assert res.total_requests == shared_profile.total_accesses
