"""Tests for the top-level public API surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_flow(self, tiny_gpu):
        """The README's three-line quickstart, on a tiny platform."""
        from repro import DesignSpec, SimConfig, simulate, get_app

        cfg = SimConfig(gpu=tiny_gpu, scale=0.02)
        app = get_app("T-AlexNet")
        baseline = simulate(app, DesignSpec.baseline(), cfg)
        boosted = simulate(app, DesignSpec.clustered(8, 4, boost=2.0), cfg)
        assert baseline.ipc > 0 and boosted.ipc > 0

    def test_app_listing(self):
        assert len(repro.APP_NAMES) == 28
        assert len(repro.all_apps()) == 28
        assert len(repro.replication_sensitive_apps()) == 12
