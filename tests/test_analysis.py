"""Unit tests for classification, metrics and table rendering."""

import math

import pytest

from repro.analysis.classify import classify, is_replication_sensitive
from repro.analysis.metrics import (
    amean,
    geomean,
    normalize,
    reduction,
    s_curve,
    weighted_amean,
)
from repro.analysis.tables import format_dict_table, format_table, percent, ratio
from repro.sim.results import SimResult


class TestClassify:
    def test_rule_requires_all_three(self):
        assert is_replication_sensitive(0.3, 0.6, 1.10)
        assert not is_replication_sensitive(0.2, 0.6, 1.10)  # low replication
        assert not is_replication_sensitive(0.3, 0.4, 1.10)  # low miss rate
        assert not is_replication_sensitive(0.3, 0.6, 1.02)  # capacity-insensitive

    def test_thresholds_are_strict(self):
        assert not is_replication_sensitive(0.25, 0.6, 1.1)
        assert not is_replication_sensitive(0.3, 0.5, 1.1)
        assert not is_replication_sensitive(0.3, 0.6, 1.05)

    def _result(self, app="a", cycles=100.0, hits=20, misses=80, repl=40):
        r = SimResult(app=app)
        r.cycles = cycles
        r.instructions = 1000
        r.l1.load_hits = hits
        r.l1.load_misses = misses
        r.l1.replicated_misses = repl
        r.replication_ratio = repl / misses
        return r

    def test_classify_from_runs(self):
        base = self._result()
        big = self._result(cycles=50.0)
        row = classify(base, big)
        assert row.speedup_16x == pytest.approx(2.0)
        assert row.replication_sensitive

    def test_classify_rejects_mismatched_apps(self):
        with pytest.raises(ValueError):
            classify(self._result("a"), self._result("b"))


class TestMetrics:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([1.0]) == 1.0
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_amean(self):
        assert amean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            amean([])

    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(ZeroDivisionError):
            normalize({"a": 0.0, "b": 1.0}, "a")

    def test_s_curve_sorted_with_stable_ties(self):
        curve = s_curve({"x": 2.0, "y": 1.0, "z": 1.0})
        assert curve == [("y", 1.0), ("z", 1.0), ("x", 2.0)]

    def test_reduction(self):
        assert reduction(20.0, 100.0) == pytest.approx(0.8)
        assert reduction(5.0, 0.0) == 0.0

    def test_weighted_amean(self):
        assert weighted_amean([(1.0, 1.0), (3.0, 3.0)]) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            weighted_amean([])
        with pytest.raises(ValueError):
            weighted_amean([(1.0, 0.0)])

    def test_geomean_matches_log_definition(self):
        vals = [0.5, 1.5, 3.2]
        expected = math.exp(sum(math.log(v) for v in vals) / 3)
        assert geomean(vals) == pytest.approx(expected)


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1.5], ["bb", 2.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in l for l in lines[1:] if "-+-" not in l)

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_dict_table_column_order(self):
        out = format_dict_table([{"b": 2, "a": 1}], ["a", "b"])
        header = out.splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_bool_and_missing_cells(self):
        out = format_dict_table([{"a": True}], ["a", "b"])
        assert "yes" in out

    def test_percent_and_ratio(self):
        assert percent(0.256) == "25.6%"
        assert ratio(1.5) == "1.50x"
