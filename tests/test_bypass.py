"""Tests for the streaming-bypass filter and its system integration."""

import pytest

from repro.cache.bypass import StreamingBypassFilter
from repro.core.designs import DesignSpec
from repro.sim.config import SimConfig
from repro.sim.system import simulate
from repro.workloads.profile import AppProfile


class TestFilterMechanics:
    def test_learns_streaming_and_bypasses(self):
        f = StreamingBypassFilter(threshold=0.8, window=64, sample_every=16)
        # A pure stream: every line installed, evicted dead.
        for line in range(200):
            f.should_install()
            f.on_install(line)
            f.on_evict(line)
        assert f.dead_rate == 1.0
        assert f.bypassing
        decisions = [f.should_install() for _ in range(32)]
        assert decisions.count(False) >= 28  # nearly all bypassed
        assert decisions.count(True) >= 1  # but sampling keeps learning

    def test_reuse_keeps_installing(self):
        f = StreamingBypassFilter(window=64)
        for line in range(200):
            f.should_install()
            f.on_install(line)
            f.on_hit(line)  # reused before eviction
            f.on_evict(line)
        assert f.dead_rate == 0.0
        assert not f.bypassing
        assert all(f.should_install() for _ in range(32))

    def test_recovers_when_pattern_changes(self):
        f = StreamingBypassFilter(threshold=0.8, window=32, sample_every=4)
        for line in range(100):  # streaming phase
            f.on_install(line)
            f.on_evict(line)
        assert f.bypassing
        for line in range(100, 200):  # reuse phase
            f.on_install(line)
            f.on_hit(line)
            f.on_evict(line)
        assert not f.bypassing

    def test_cold_filter_installs(self):
        f = StreamingBypassFilter()
        assert f.should_install()
        assert f.dead_rate == 0.0

    def test_eviction_of_unknown_line_counts_clean(self):
        f = StreamingBypassFilter(window=8)
        f.on_evict(42)  # never installed via the filter
        assert f.dead_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingBypassFilter(threshold=0.0)
        with pytest.raises(ValueError):
            StreamingBypassFilter(window=4)
        with pytest.raises(ValueError):
            StreamingBypassFilter(sample_every=1)


class TestSystemIntegration:
    def test_streaming_app_triggers_bypass(self, tiny_gpu):
        # Long enough for each L1's filter to warm past its window.
        prof = AppProfile(
            name="long-stream", num_ctas=128, accesses_per_cta=128,
            wavefront_slots=8, mlp=3, compute_gap=2.0,
            shared_fraction=0.0, private_lines=4096,
            block_lines=32, block_repeats=1,
        )
        cfg = SimConfig(gpu=tiny_gpu, l1_bypass=True)
        res = simulate(prof, DesignSpec.baseline(), cfg)
        assert res.bypassed_fills > 0

    def test_reuse_app_barely_bypasses(self, tiny_gpu, private_profile):
        cfg = SimConfig(gpu=tiny_gpu, l1_bypass=True)
        res = simulate(private_profile, DesignSpec.baseline(), cfg)
        assert res.bypassed_fills < res.loads * 0.1

    def test_disabled_by_default(self, tiny_gpu, streaming_profile):
        res = simulate(streaming_profile, DesignSpec.baseline(), SimConfig(gpu=tiny_gpu))
        assert res.bypassed_fills == 0

    def test_bypass_protects_reusable_set_in_mixed_workload(self, tiny_gpu):
        """Streaming pollution + a hot reusable set: bypass must not lose
        throughput, and should reduce misses on the hot set."""
        prof = AppProfile(
            name="mixed", num_ctas=64, accesses_per_cta=96,
            wavefront_slots=4, mlp=2, compute_gap=2.0,
            shared_lines=48, shared_fraction=0.5,  # hot reusable set
            private_lines=4096, block_lines=16, block_repeats=1,  # stream
        )
        off = simulate(prof, DesignSpec.baseline(), SimConfig(gpu=tiny_gpu))
        on = simulate(prof, DesignSpec.baseline(),
                      SimConfig(gpu=tiny_gpu, l1_bypass=True))
        assert on.bypassed_fills > 0
        assert on.l1_miss_rate <= off.l1_miss_rate + 0.02

    def test_dcl1_designs_accept_bypass(self, tiny_gpu, streaming_profile):
        cfg = SimConfig(gpu=tiny_gpu, l1_bypass=True)
        res = simulate(streaming_profile, DesignSpec.clustered(8, 4), cfg)
        assert res.total_requests == streaming_profile.total_accesses

    def test_audit_clean_with_bypass(self, tiny_gpu, streaming_profile):
        from repro.sim.system import GPUSystem
        from repro.sim.validation import audit

        system = GPUSystem(streaming_profile, DesignSpec.shared(8),
                           SimConfig(gpu=tiny_gpu, l1_bypass=True))
        system.run()
        assert audit(system) == []
