"""Cross-checks between the geometry layer and the instantiated NoCs over
the whole (Y, Z) design space.

The DSENT inventories (area/power), the topology (timing) and the home
mapper (routing) are three independent derivations from the same
:class:`ClusterGeometry`; these tests pin them to each other so a future
change cannot let them drift apart.
"""

import pytest

from repro.core.clusters import ClusterGeometry
from repro.core.designs import DesignSpec
from repro.core.home import HomeMapper
from repro.mem.interleave import AddressMap
from repro.noc.dsent import design_inventory
from repro.noc.topology import NoCTopology

DESIGN_POINTS = [
    DesignSpec.private(80),
    DesignSpec.private(40),
    DesignSpec.private(20),
    DesignSpec.private(10),
    DesignSpec.shared(40),
    DesignSpec.clustered(40, 5),
    DesignSpec.clustered(40, 10),
    DesignSpec.clustered(40, 20),
    DesignSpec.clustered(20, 4),
    DesignSpec.clustered(80, 10),
]


def build(spec, cores=80, l2=32):
    geo = ClusterGeometry.from_design(spec, cores, l2)
    topo = NoCTopology(spec, cores, l2, 2.0, 8.0, geometry=geo)
    return geo, topo


@pytest.mark.parametrize("spec", DESIGN_POINTS, ids=lambda s: s.label)
class TestShapesAgree:
    def test_noc1_crossbars_match_geometry(self, spec):
        geo, topo = build(spec)
        (count, n_in, n_out), = geo.noc1_shapes()
        assert len(topo.noc1_req) == count
        assert all(xb.num_in == n_in and xb.num_out == n_out for xb in topo.noc1_req)
        assert all(xb.num_in == n_out and xb.num_out == n_in for xb in topo.noc1_rep)

    def test_noc2_crossbars_match_geometry(self, spec):
        geo, topo = build(spec)
        (count, n_in, n_out), = geo.noc2_shapes()
        assert len(topo.noc2_req) == count
        assert all(xb.num_in == n_in and xb.num_out == n_out for xb in topo.noc2_req)

    def test_dsent_inventory_matches_geometry(self, spec):
        geo, _ = build(spec)
        inv = design_inventory(spec, 80, 32)
        geo_shapes = {(c, i, o) for c, i, o in geo.noc1_shapes() + geo.noc2_shapes()}
        inv_shapes = {(s.count, s.n_in, s.n_out) for s in inv}
        assert geo_shapes == inv_shapes

    def test_every_route_traverses_valid_ports(self, spec):
        """Exhaustively route a sample of (core, line) pairs through the
        topology; any out-of-range port would raise IndexError."""
        geo, topo = build(spec)
        amap = AddressMap(128, 32, 16)
        home = HomeMapper(geo)
        t = 0.0
        for core in range(0, 80, 7):
            for line in range(0, 400, 13):
                node = home.home_of(core, line)
                l2 = amap.l2_slice_of_line(line)
                t = topo.core_to_dcl1(t, core, node, 1)
                t = topo.to_l2(t, node, l2, 1)
                t = topo.from_l2(t, l2, node, 4)
                t = topo.dcl1_to_core(t, node, core, 1)
        assert t > 0

    def test_total_l1_capacity_preserved(self, spec):
        from repro.sim.config import GPUConfig

        gpu = GPUConfig()
        per_node = gpu.dcl1_size_bytes(spec.num_dcl1)
        total = per_node * spec.num_dcl1
        # Power-of-two set rounding may trim, but never below 60% or above
        # 110% of the budget for the paper's node counts.
        assert 0.6 * gpu.total_l1_bytes <= total <= 1.1 * gpu.total_l1_bytes
