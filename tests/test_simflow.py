"""SimFlow: static resource-flow liveness analysis (SF301–SF303)."""

import textwrap
from pathlib import Path

from repro.analysis.simflow import (
    flow_rule_table,
    flow_source,
    run_flow,
)
from repro.analysis.simlint import Severity

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _analyze(src, **kw):
    return flow_source(textwrap.dedent(src), "fixture.py", **kw)


# ------------------------------------------------------------ SF301 (leaks)

# A handler allocates an MSHR entry but neither it nor anything in its
# schedule closure ever releases one — every acquisition leaks.
LEAK_FIXTURE = """
class Node:
    def start(self, req):
        self.engine.schedule(0.0, self._grab, req)

    def _grab(self, req):
        self.mshrs.allocate(req.line, req)
        self.engine.schedule(1.0, self._finish, req)

    def _finish(self, req):
        req.done = True
"""


def test_acquire_without_reachable_release_is_flagged():
    findings = _analyze(LEAK_FIXTURE)
    assert len(findings) == 1
    f = findings[0]
    assert f.rule_id == "SF301"
    assert f.severity is Severity.ERROR
    assert f.resource == "mshrs"
    assert "ever releases" in f.message


def test_release_in_scheduled_continuation_is_live():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._grab, req)

            def _grab(self, req):
                self.mshrs.allocate(req.line, req)
                self.engine.schedule(1.0, self._finish, req)

            def _finish(self, req):
                self.mshrs.release(req.line)
        """
    )
    assert findings == []


def test_release_two_hops_down_the_schedule_graph_is_live():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._grab, req)

            def _grab(self, req):
                self.mshrs.allocate(req.line, req)
                self.engine.schedule(1.0, self._middle, req)

            def _middle(self, req):
                self.engine.schedule(1.0, self._finish, req)

            def _finish(self, req):
                self.mshrs.release(req.line)
        """
    )
    assert findings == []


def test_release_via_transitive_helper_is_live():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._grab, req)

            def _grab(self, req):
                self.mshrs.allocate(req.line, req)
                self._cleanup(req)

            def _cleanup(self, req):
                self.mshrs.release(req.line)
        """
    )
    assert findings == []


def test_ledger_scope_names_are_tracked():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._grab, req)

            def _grab(self, req):
                self._ledger.acquire("q1-credit", id(req), req)
                self.engine.schedule(1.0, self._finish, req)

            def _finish(self, req):
                req.done = True
        """
    )
    assert [f.rule_id for f in findings] == ["SF301"]
    assert findings[0].resource == "q1-credit"


def test_credit_arithmetic_is_tracked():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._admit, req)

            def _admit(self, req):
                self._node_credits[req.node] -= 1
                self.engine.schedule(1.0, self._finish, req)

            def _finish(self, req):
                req.done = True
        """
    )
    assert [f.rule_id for f in findings] == ["SF301"]
    assert findings[0].resource == "_node_credits"


def test_credit_decrement_paired_with_increment_is_live():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._admit, req)

            def _admit(self, req):
                credits = self._node_credits
                credits[req.node] -= 1
                self.engine.schedule(1.0, self._release, req)

            def _release(self, req):
                self._node_credits[req.node] += 1
        """
    )
    assert findings == []


def test_raise_while_holding_is_an_exception_path_leak():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._handler, req)

            def _handler(self, req):
                self.mshrs.allocate(req.line, req)
                if req.bad:
                    raise RuntimeError("bad request")
                self.mshrs.release(req.line)
        """
    )
    assert [f.rule_id for f in findings] == ["SF301"]
    assert "exception path leaks" in findings[0].message
    assert "raise" in findings[0].message or "raises" in findings[0].message


def test_release_in_finally_covers_the_raise_path():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._handler, req)

            def _handler(self, req):
                self.mshrs.allocate(req.line, req)
                try:
                    if req.bad:
                        raise RuntimeError("bad request")
                finally:
                    self.mshrs.release(req.line)
        """
    )
    assert findings == []


def test_handed_to_continuation_before_raise_is_not_a_path_leak():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._handler, req)

            def _handler(self, req):
                self.mshrs.allocate(req.line, req)
                self.engine.schedule(1.0, self._finish, req)
                if req.bad:
                    raise RuntimeError("bad request")

            def _finish(self, req):
                self.mshrs.release(req.line)
        """
    )
    assert findings == []


# ---------------------------------------------------------------- SF302


def test_stray_release_is_flagged():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._done, req)

            def _done(self, req):
                self.node_credits[req.node] += 1
        """
    )
    assert [f.rule_id for f in findings] == ["SF302"]
    assert findings[0].resource == "node_credits"
    assert "ever acquires" in findings[0].message


def test_double_release_on_one_path_is_flagged():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.mshrs.allocate(req.line, req)
                self.engine.schedule(0.0, self._done, req)

            def _done(self, req):
                self.mshrs.release(req.line)
                self.mshrs.release(req.line)
        """
    )
    assert [f.rule_id for f in findings] == ["SF302"]
    assert "twice" in findings[0].message


def test_single_release_in_each_branch_is_not_double():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.mshrs.allocate(req.line, req)
                self.engine.schedule(0.0, self._done, req)

            def _done(self, req):
                if req.fast:
                    self.mshrs.release(req.line)
                else:
                    self.mshrs.release(req.line)
        """
    )
    assert findings == []


# ---------------------------------------------------------------- SF303

CYCLE_FIXTURE = """
class Node:
    def start(self, req):
        self.engine.schedule(0.0, self._a, req)

    def _a(self, req):
        self.ports.acquire(req.port, req)
        self.mshrs.allocate(req.line, req)
        self.engine.schedule(1.0, self._done, req)

    def _b(self, req):
        self.mshrs.allocate(req.line, req)
        self.ports.acquire(req.port, req)
        self.engine.schedule(1.0, self._done, req)

    def _done(self, req):
        self.ports.release(req.port)
        self.mshrs.release(req.line)
"""


def test_acquire_order_cycle_is_flagged():
    findings = _analyze(CYCLE_FIXTURE)
    assert [f.rule_id for f in findings] == ["SF303"]
    assert "hold-and-wait" in findings[0].message
    assert "mshrs" in findings[0].message and "ports" in findings[0].message


def test_consistent_acquire_order_is_clean():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._a, req)

            def _a(self, req):
                self.ports.acquire(req.port, req)
                self.mshrs.allocate(req.line, req)
                self.engine.schedule(1.0, self._done, req)

            def _b(self, req):
                self.ports.acquire(req.port, req)
                self.mshrs.allocate(req.line, req)
                self.engine.schedule(1.0, self._done, req)

            def _done(self, req):
                self.ports.release(req.port)
                self.mshrs.release(req.line)
        """
    )
    assert findings == []


def test_order_edge_through_callee_acquires():
    # _a holds ports and calls a helper that acquires mshrs; _b acquires
    # in the opposite direct order — still a cycle.
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._a, req)

            def _a(self, req):
                self.ports.acquire(req.port, req)
                self._fill(req)
                self.engine.schedule(1.0, self._done, req)

            def _fill(self, req):
                self.mshrs.allocate(req.line, req)

            def _b(self, req):
                self.mshrs.allocate(req.line, req)
                self.ports.acquire(req.port, req)
                self.engine.schedule(1.0, self._done, req)

            def _done(self, req):
                self.ports.release(req.port)
                self.mshrs.release(req.line)
        """
    )
    assert [f.rule_id for f in findings] == ["SF303"]


# ------------------------------------------------------- scoping & plumbing


def test_classes_without_schedule_sites_are_skipped():
    # Resource wrappers implement acquire/release primitives without the
    # handler protocol; they are out of scope by design.
    findings = _analyze(
        """
        class MSHRFile:
            def allocate(self, line, req):
                self.entries[line] = req

            def release(self, line):
                return self.entries.pop(line)
        """
    )
    assert findings == []


def test_suppression_comment_silences_sf301():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._grab, req)

            def _grab(self, req):
                self.mshrs.allocate(req.line, req)  # simflow: disable=SF301
                self.engine.schedule(1.0, self._finish, req)

            def _finish(self, req):
                req.done = True
        """
    )
    assert findings == []


def test_unrelated_suppression_does_not_silence():
    findings = _analyze(
        """
        class Node:
            def start(self, req):
                self.engine.schedule(0.0, self._grab, req)

            def _grab(self, req):
                self.mshrs.allocate(req.line, req)  # simflow: disable=SF303
                self.engine.schedule(1.0, self._finish, req)

            def _finish(self, req):
                req.done = True
        """
    )
    assert [f.rule_id for f in findings] == ["SF301"]


def test_select_filters_rules():
    findings = _analyze(LEAK_FIXTURE, select=["SF303"])
    assert findings == []
    findings = _analyze(LEAK_FIXTURE, select=["sf301"])
    assert [f.rule_id for f in findings] == ["SF301"]


def test_syntax_error_reported_not_raised():
    findings = flow_source("def broken(:\n", "bad.py")
    assert [f.rule_id for f in findings] == ["SF001"]


def test_rule_table_lists_sf3xx():
    ids = [rid for rid, _sev, _title in flow_rule_table()]
    assert ids == ["SF301", "SF302", "SF303"]


def test_finding_format_matches_lint_convention():
    f = _analyze(LEAK_FIXTURE)[0]
    text = f.format()
    assert text.startswith("fixture.py:")
    assert "error SF301:" in text


def test_shipped_tree_is_clean():
    # The acceptance bar: `repro flow --strict` exits 0 on src/repro —
    # the shipped request lifecycle releases everything it acquires and
    # acquires in one global order.
    findings = run_flow([str(SRC_ROOT)])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_flow_strict_on_shipped_tree(capsys):
    from repro.cli import main

    assert main(["flow", "--strict", str(SRC_ROOT)]) == 0


def test_cli_flow_flags_fixture(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "leak.py"
    bad.write_text(textwrap.dedent(LEAK_FIXTURE))
    assert main(["flow", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "SF301" in out


def test_cli_flow_unknown_rule_is_usage_error(capsys):
    from repro.cli import main

    assert main(["flow", "--select", "SF999", "."]) == 2


def test_cli_analyze_runs_all_three_tools(tmp_path, capsys):
    from repro.cli import main

    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    assert main(["analyze", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "simlint" in out and "simrace" in out and "simflow" in out
    assert "simpure" in out
    assert "ok" in out


def test_cli_analyze_combined_exit_code(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "leak.py"
    bad.write_text(textwrap.dedent(LEAK_FIXTURE))
    assert main(["analyze", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
