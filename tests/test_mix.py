"""Tests for workload mixing."""

import numpy as np
import pytest

from repro.core.designs import DesignSpec
from repro.sim.system import simulate
from repro.workloads.generator import generate_workload
from repro.workloads.mix import (
    concatenate,
    footprint_overlap,
    interleave,
)
from repro.workloads.profile import AppProfile


@pytest.fixture
def two_workloads():
    a = generate_workload(AppProfile(
        name="mix-a", num_ctas=10, accesses_per_cta=32,
        shared_lines=64, shared_fraction=0.8, private_lines=32,
        block_lines=4, block_repeats=2))
    b = generate_workload(AppProfile(
        name="mix-b", num_ctas=6, accesses_per_cta=32,
        shared_lines=64, shared_fraction=0.8, private_lines=32,
        block_lines=4, block_repeats=2))
    return a, b


class TestInterleave:
    def test_alternates_and_renumbers(self, two_workloads):
        a, b = two_workloads
        m = interleave([a, b])
        assert m.num_ctas == 16
        assert [s.cta_id for s in m.streams] == list(range(16))
        # First two streams come from a and b respectively.
        assert np.array_equal(m.streams[0].lines, a.streams[0].lines)
        assert np.array_equal(m.streams[1].lines, b.streams[0].lines)
        # Tail carries the longer workload's leftovers.
        assert np.array_equal(m.streams[-1].lines, a.streams[-1].lines)

    def test_originals_untouched(self, two_workloads):
        a, b = two_workloads
        before = a.streams[0].cta_id
        interleave([a, b], isolate=True)
        assert a.streams[0].cta_id == before

    def test_needs_two(self, two_workloads):
        a, _ = two_workloads
        with pytest.raises(ValueError):
            interleave([a])


class TestConcatenate:
    def test_phases_in_order(self, two_workloads):
        a, b = two_workloads
        m = concatenate([a, b])
        assert m.num_ctas == 16
        assert np.array_equal(m.streams[9].lines, a.streams[9].lines)
        assert np.array_equal(m.streams[10].lines, b.streams[0].lines)


class TestIsolation:
    def test_shared_region_overlaps_by_default(self, two_workloads):
        a, b = two_workloads
        assert footprint_overlap(a, b) > 0.2  # same shared region

    def test_isolation_removes_overlap(self, two_workloads):
        a, b = two_workloads
        m = interleave([a, b], isolate=True)
        first = m.streams[0].lines  # from a (offset 0)
        second = m.streams[1].lines  # from b (offset stride)
        assert not set(first.tolist()) & set(second.tolist())

    def test_mixed_workload_simulates(self, two_workloads, tiny_config):
        a, b = two_workloads
        m = interleave([a, b], isolate=True)
        res = simulate(m, DesignSpec.clustered(8, 4), tiny_config)
        assert res.total_requests == a.total_accesses + b.total_accesses

    def test_sharing_vs_isolation_changes_behaviour(self, two_workloads, tiny_config):
        """With a common shared region the DC-L1s hold one copy for both
        kernels; isolated footprints need twice the capacity."""
        a, b = two_workloads
        shared = simulate(interleave([a, b]), DesignSpec.shared(8), tiny_config)
        isolated = simulate(interleave([a, b], isolate=True),
                            DesignSpec.shared(8), tiny_config)
        assert shared.l1.misses <= isolated.l1.misses
