"""Property-based pool-boundary serialization soundness: any
(AppProfile, DesignSpec, SimConfig) grid point must cross a pickle
boundary bit-faithfully — the restored triple is equal, derives the
same ``sim_cache_key``, and a simulated result's fingerprint survives
its own roundtrip.  These are the invariants ``repro shard --confirm``
replays with real process pools; Hypothesis drives the serialization
side with thousands of random grid points at zero simulation cost.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.store import sim_cache_key
from repro.sim.validation import validate_grid
from repro.workloads.profile import AppProfile

TINY_GPU = GPUConfig(num_cores=8, num_l2_slices=4, num_channels=2)

profiles = st.builds(
    AppProfile,
    name=st.sampled_from(["prop-a", "prop-b"]),
    suite=st.sampled_from(["", "polybench", "tango"]),
    num_ctas=st.integers(1, 24),
    accesses_per_cta=st.integers(1, 48),
    wavefront_slots=st.integers(1, 4),
    compute_gap=st.sampled_from([1.0, 3.0]),
    mlp=st.integers(1, 3),
    shared_lines=st.integers(16, 128),
    shared_fraction=st.floats(0.0, 0.9),
    private_lines=st.integers(8, 64),
    block_lines=st.integers(1, 16),
    block_repeats=st.integers(1, 3),
    store_fraction=st.floats(0.0, 0.3),
    imbalance=st.floats(0.0, 0.8),
    trace_variant=st.integers(0, 3),
)

designs = st.sampled_from(
    [
        DesignSpec.baseline(),
        DesignSpec.private(8),
        DesignSpec.shared(8),
        DesignSpec.clustered(8, 4),
        DesignSpec.clustered(8, 4, boost=2.0),
        DesignSpec.cdxbar(),
        DesignSpec.single_l1(),
    ]
)

configs = st.builds(
    SimConfig,
    gpu=st.just(TINY_GPU),
    scale=st.sampled_from([0.05, 0.1, 1.0]),
    cta_scheduler=st.sampled_from(["round_robin", "distributed"]),
    l1_latency_override=st.one_of(st.none(), st.sampled_from([11.0, 28.0])),
    home_strategy=st.sampled_from(["interleave", "bits"]),
    home_bit_shift=st.integers(0, 3),
    full_line_noc1_replies=st.booleans(),
    l1_bypass=st.booleans(),
    sanitize=st.booleans(),
    watchdog=st.booleans(),
)


def roundtrip(value):
    return pickle.loads(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


class TestGridPointsPickleFaithfully:
    """The exact payload run_many ships to its workers must survive the
    boundary: equal objects, identical content-addressed key."""

    @given(profiles, designs, configs)
    @settings(max_examples=80, deadline=None)
    def test_point_equality_survives(self, profile, spec, cfg):
        point = (profile, spec, cfg)
        assert roundtrip(point) == point

    @given(profiles, designs, configs)
    @settings(max_examples=80, deadline=None)
    def test_cache_key_survives(self, profile, spec, cfg):
        restored = roundtrip((profile, spec, cfg))
        assert sim_cache_key(*restored) == sim_cache_key(profile, spec, cfg)

    @given(profiles, designs, configs)
    @settings(max_examples=40, deadline=None)
    def test_validate_grid_accepts_any_roundtripped_point(
        self, profile, spec, cfg
    ):
        point = roundtrip((profile, spec, cfg))
        keys = validate_grid([point])
        assert keys == [sim_cache_key(profile, spec, cfg)]


class TestResultsPickleFaithfully:
    """A SimResult's fingerprint is bit-identical after crossing the
    pool boundary back to the parent (a handful of real simulations —
    results can't be synthesized without running)."""

    def test_fingerprints_survive_roundtrip(self):
        from repro.sim.system import simulate
        from repro.workloads.suite import get_app

        cfg = SimConfig(scale=0.05)
        for app_name, spec in (
            ("C-BLK", DesignSpec.baseline()),
            ("C-NN", DesignSpec.shared(40)),
        ):
            res = simulate(get_app(app_name), spec, cfg)
            assert roundtrip(res).fingerprint() == res.fingerprint()
