"""Unit tests for the DSENT-like analytical NoC model."""

import pytest

from repro.core.designs import DesignSpec
from repro.noc.dsent import (
    CrossbarShape,
    DsentModel,
    design_inventory,
    noc_area_mm2,
    noc_static_power_w,
)


class TestAreaModel:
    def test_bigger_crossbars_cost_more(self):
        assert DsentModel.crossbar_area_units(80, 40) > DsentModel.crossbar_area_units(8, 4)

    def test_direct_link_is_cheap(self):
        assert DsentModel.crossbar_area_units(1, 1) < DsentModel.crossbar_area_units(2, 1)

    def test_paper_area_targets(self):
        """The calibrated model must land within a few points of every
        relative area the paper reports (Figures 6 and 12)."""
        base = noc_area_mm2(DesignSpec.baseline())
        targets = {
            DesignSpec.private(40): (0.72, 0.03),
            DesignSpec.private(20): (0.46, 0.03),
            DesignSpec.private(10): (0.33, 0.03),
            DesignSpec.shared(40): (1.69, 0.08),
            DesignSpec.clustered(40, 10): (0.50, 0.03),
            DesignSpec.clustered(40, 5): (0.55, 0.03),
            DesignSpec.clustered(40, 20): (0.55, 0.03),
        }
        for spec, (target, tol) in targets.items():
            assert noc_area_mm2(spec) / base == pytest.approx(target, abs=tol), spec.label

    def test_pr80_adds_insignificant_area(self):
        base = noc_area_mm2(DesignSpec.baseline())
        pr80 = noc_area_mm2(DesignSpec.private(80))
        assert 1.0 < pr80 / base < 1.12


class TestStaticPower:
    def test_paper_static_targets(self):
        base = noc_static_power_w(DesignSpec.baseline())
        targets = {
            DesignSpec.private(80): (1.01, 0.03),
            DesignSpec.private(40): (0.96, 0.03),
            DesignSpec.shared(40): (1.57, 0.08),
            DesignSpec.clustered(40, 5): (0.85, 0.03),
            DesignSpec.clustered(40, 10): (0.84, 0.03),
            DesignSpec.clustered(40, 20): (0.86, 0.03),
        }
        for spec, (target, tol) in targets.items():
            measured = noc_static_power_w(spec) / base
            assert measured == pytest.approx(target, abs=tol), spec.label

    def test_deeper_aggregation_saves_more_than_pr40(self):
        base = noc_static_power_w(DesignSpec.baseline())
        pr40 = noc_static_power_w(DesignSpec.private(40)) / base
        pr20 = noc_static_power_w(DesignSpec.private(20)) / base
        pr10 = noc_static_power_w(DesignSpec.private(10)) / base
        assert pr10 < pr20 < pr40 < 1.0


class TestFrequency:
    def test_small_crossbars_clock_higher(self):
        assert DsentModel.max_frequency_ghz(2, 1) > DsentModel.max_frequency_ghz(8, 4)
        assert DsentModel.max_frequency_ghz(8, 4) > DsentModel.max_frequency_ghz(80, 40)

    def test_boost_feasibility_matches_paper(self):
        # 80x32 cannot run 2x the 700 MHz NoC clock; 8x4 can (Fig 13b).
        assert not DsentModel.supports_frequency(80, 32, 1.4)
        assert not DsentModel.supports_frequency(80, 40, 1.4)
        assert DsentModel.supports_frequency(8, 4, 1.4)
        assert DsentModel.supports_frequency(2, 1, 1.4)

    def test_baseline_clock_is_feasible(self):
        assert DsentModel.supports_frequency(80, 32, 0.7)
        assert DsentModel.supports_frequency(80, 40, 0.7)


class TestInventory:
    def test_baseline_inventory(self):
        inv = design_inventory(DesignSpec.baseline(), 80, 32)
        assert inv == [CrossbarShape(1, 80, 32, 12.3)]

    def test_clustered_inventory(self):
        inv = design_inventory(DesignSpec.clustered(40, 10), 80, 32)
        assert CrossbarShape(10, 8, 4, 3.3) in inv
        assert CrossbarShape(4, 10, 8, 12.3) in inv

    def test_cdxbar_inventory(self):
        inv = design_inventory(DesignSpec.cdxbar(), 80, 32)
        assert CrossbarShape(10, 8, 8, 3.3) in inv
        assert CrossbarShape(8, 10, 4, 12.3) in inv

    def test_direct_link_flag(self):
        assert CrossbarShape(80, 1, 1).is_direct_link
        assert not CrossbarShape(1, 2, 1).is_direct_link


class TestDynamicEnergy:
    def test_energy_scales_with_hops_and_length(self):
        e1 = DsentModel.dynamic_energy_units([(100, 3.3)])
        e2 = DsentModel.dynamic_energy_units([(100, 12.3)])
        e3 = DsentModel.dynamic_energy_units([(200, 3.3)])
        assert e2 > e1
        assert e3 == pytest.approx(2 * e1)
        assert DsentModel.dynamic_energy_units([]) == 0.0
