"""Property-based SimVec identity: batched event dispatch must be
bit-invisible on *random* small workloads and designs, not just the
hand-picked grid points in tests/test_simturbo.py.

Every example runs the same (profile, design) config twice — once with
SimVec batch twins wired, once with ``force_scalar_dispatch()`` — and
requires a single fingerprint.  The profile strategy deliberately spans
the shapes the twins branch on: stores/atomics/bypasses (generic-twin
delegation), MLP > 1 (the fused re-issue push), tiny streams (runs that
hit the exhausted-wavefront branch) and imbalance (ragged same-cycle
buckets).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.system import GPUSystem
from repro.workloads.profile import AppProfile

TINY_GPU = GPUConfig(num_cores=8, num_l2_slices=4, num_channels=2)

designs = st.sampled_from(
    [
        DesignSpec.baseline(),
        DesignSpec.private(4),
        DesignSpec.shared(4),
        DesignSpec.clustered(4, 2),
        DesignSpec.single_l1(),
    ]
)

profiles = st.builds(
    AppProfile,
    name=st.sampled_from(["vec-a", "vec-b"]),
    num_ctas=st.integers(1, 24),
    accesses_per_cta=st.integers(1, 48),
    wavefront_slots=st.integers(1, 4),
    compute_gap=st.sampled_from([1.0, 3.0]),
    mlp=st.integers(1, 3),
    shared_lines=st.integers(16, 128),
    shared_fraction=st.floats(0.0, 0.9),
    private_lines=st.integers(8, 64),
    block_lines=st.integers(1, 16),
    block_repeats=st.integers(1, 3),
    store_fraction=st.floats(0.0, 0.3),
    atomic_fraction=st.floats(0.0, 0.2),
    bypass_fraction=st.floats(0.0, 0.2),
    camp_fraction=st.floats(0.0, 1.0),
    camp_width=st.integers(1, 8),
    imbalance=st.floats(0.0, 0.8),
)


class TestSimVecProperties:
    @given(profiles, designs)
    @settings(max_examples=40, deadline=None)
    def test_batched_fingerprint_equals_scalar(self, profile, spec):
        cfg = SimConfig(gpu=TINY_GPU)
        batched = GPUSystem(profile, spec, cfg).run()
        scalar_sys = GPUSystem(profile, spec, cfg)
        scalar_sys.force_scalar_dispatch()
        scalar = scalar_sys.run()
        assert batched.fingerprint() == scalar.fingerprint()

    @given(profiles)
    @settings(max_examples=10, deadline=None)
    def test_batched_fingerprint_equals_slow_on_shared(self, profile):
        """Three-way anchor on the decoupled shape that engages the most
        batch machinery: batched == forced-slow closes the loop scalar
        parity alone would leave open."""
        spec = DesignSpec.shared(4)
        cfg = SimConfig(gpu=TINY_GPU)
        batched = GPUSystem(profile, spec, cfg).run()
        slow_sys = GPUSystem(profile, spec, cfg)
        slow_sys.force_slow_path()
        slow = slow_sys.run()
        assert batched.fingerprint() == slow.fingerprint()
