"""Unit tests for reservation servers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.resources import Server, ServerGroup


class TestServer:
    def test_idle_server_serves_immediately(self):
        s = Server("s", service=2.0, latency=10.0)
        assert s.reserve(5.0) == 17.0  # start 5, busy 2, latency 10

    def test_back_to_back_queueing(self):
        s = Server("s", service=2.0)
        assert s.reserve(0.0) == 2.0
        # Arrives while busy: queued behind the first transaction.
        assert s.reserve(0.0) == 4.0
        assert s.reserve(1.0) == 6.0

    def test_size_scales_occupancy(self):
        s = Server("s", service=2.0, latency=1.0)
        assert s.reserve(0.0, size=4) == 9.0  # 8 busy + 1 latency
        assert s.next_free == 8.0

    def test_gap_resets_queue(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        assert s.reserve(100.0) == 102.0

    def test_busy_accounting_and_utilization(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        s.reserve(0.0)
        assert s.busy_cycles == 4.0
        assert s.num_served == 2
        assert s.utilization(8.0) == 0.5
        assert s.utilization(2.0) == 1.0  # clamped
        assert s.utilization(0.0) == 0.0

    def test_peek_start_does_not_reserve(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        assert s.peek_start(0.0) == 2.0
        assert s.peek_start(5.0) == 5.0
        assert s.num_served == 1

    def test_reset(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        s.reset()
        assert s.next_free == 0.0
        assert s.busy_cycles == 0.0
        assert s.num_served == 0

    def test_negative_timing_rejected(self):
        with pytest.raises(ValueError):
            Server("bad", service=-1.0)
        with pytest.raises(ValueError):
            Server("bad", service=1.0, latency=-1.0)


class TestServerGroup:
    def test_indexing_and_len(self):
        g = ServerGroup("g", 4, service=1.0)
        assert len(g) == 4
        assert g[2].name == "g[2]"
        assert len(list(g)) == 4

    def test_max_and_mean_utilization(self):
        g = ServerGroup("g", 2, service=1.0)
        g[0].reserve(0.0)
        g[0].reserve(0.0)
        g[1].reserve(0.0)
        assert g.max_utilization(4.0) == pytest.approx(0.5)
        assert g.mean_utilization(4.0) == pytest.approx(0.375)

    def test_total_served(self):
        g = ServerGroup("g", 3, service=1.0)
        g[0].reserve(0.0)
        g[2].reserve(0.0)
        assert g.total_served() == 2

    def test_reset_clears_all(self):
        g = ServerGroup("g", 2, service=1.0)
        g[0].reserve(0.0)
        g.reset()
        assert g.total_served() == 0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ServerGroup("g", 0, service=1.0)


class _RecordingLedger:
    """Minimal stand-in for ResourceLedger.check_reservation."""

    def __init__(self):
        self.calls = []

    def check_reservation(self, name, start, size, completion):
        self.calls.append((name, start, size, completion))


class TestHolderAttribution:
    """The sanitizer/watchdog mirror: who a camped port is serving."""

    def test_reserve_with_owner_records_holder(self):
        s = Server("s", service=2.0)
        req = object()
        s.reserve(0.0, owner=req)
        assert s.holder is req
        assert s.holder_since == 0.0
        assert s.current_holder(1.0) is req

    def test_holder_expires_with_the_reservation(self):
        s = Server("s", service=2.0)
        s.reserve(0.0, owner="req")
        assert s.current_holder(2.0) is None  # next_free == 2.0: idle again

    def test_ownerless_reserve_leaves_no_attribution(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        assert s.current_holder(1.0) is None

    def test_reset_clears_holder_mirror_but_keeps_ledger(self):
        s = Server("s", service=2.0)
        ledger = _RecordingLedger()
        s.attach_sanitizer(ledger)
        s.reserve(0.0, owner="req")
        s.reset()
        assert s.holder is None
        assert s.holder_since == 0.0
        assert s.current_holder(0.0) is None
        assert s.ledger is ledger  # wiring survives; state does not

    def test_group_reset_clears_every_holder(self):
        g = ServerGroup("g", 2, service=1.0)
        g[0].reserve(0.0, owner="a")
        g[1].reserve(0.0, owner="b")
        g.reset()
        assert all(s.holder is None for s in g)

    def test_attached_ledger_sees_every_reservation(self):
        s = Server("s", service=2.0, latency=1.0)
        ledger = _RecordingLedger()
        s.attach_sanitizer(ledger)
        s.reserve(0.0)
        s.reserve(0.0, size=2.0)
        assert ledger.calls == [("s", 0.0, 1.0, 3.0), ("s", 2.0, 2.0, 7.0)]

    def test_group_attach_reaches_all_servers(self):
        g = ServerGroup("g", 3, service=1.0)
        ledger = _RecordingLedger()
        g.attach_sanitizer(ledger)
        assert all(s.ledger is ledger for s in g)


_times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
_sizes = st.floats(min_value=0.1, max_value=16.0, allow_nan=False, allow_infinity=False)


class TestServerProperties:
    @given(st.lists(st.tuples(_times, _sizes), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_service_starts_monotone_and_never_before_arrival(self, arrivals):
        # start = max(now, next_free) and next_free never moves backwards,
        # so service starts are non-decreasing in reservation order even
        # for out-of-order arrival times — and never precede the arrival.
        s = Server("s", service=1.5, latency=3.0)
        prev_start = 0.0
        for now, size in arrivals:
            completion = s.reserve(now, size=size)
            start = completion - s.latency - s.service * size
            assert start >= now - 1e-9
            assert start >= prev_start - 1e-9
            prev_start = start

    @given(st.lists(st.tuples(_times, _sizes), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_busy_cycles_equal_sum_of_occupancies(self, arrivals):
        s = Server("s", service=2.0)
        for now, size in arrivals:
            s.reserve(now, size=size)
        expected = sum(s.service * size for _, size in arrivals)
        assert s.busy_cycles == pytest.approx(expected)
        assert s.num_served == len(arrivals)


class TestServerGroupProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.tuples(st.integers(min_value=0, max_value=63), _times), max_size=60),
        _times.filter(lambda t: t > 0),
    )
    @settings(max_examples=60, deadline=None)
    def test_utilization_bounds(self, count, reservations, horizon):
        g = ServerGroup("g", count, service=1.0)
        for idx, now in reservations:
            g[idx % count].reserve(now)
        for s in g:
            assert 0.0 <= s.utilization(horizon) <= 1.0
        assert 0.0 <= g.mean_utilization(horizon) <= g.max_utilization(horizon) <= 1.0
        assert g.total_served() == len(reservations)
