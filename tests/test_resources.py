"""Unit tests for reservation servers."""

import pytest

from repro.sim.resources import Server, ServerGroup


class TestServer:
    def test_idle_server_serves_immediately(self):
        s = Server("s", service=2.0, latency=10.0)
        assert s.reserve(5.0) == 17.0  # start 5, busy 2, latency 10

    def test_back_to_back_queueing(self):
        s = Server("s", service=2.0)
        assert s.reserve(0.0) == 2.0
        # Arrives while busy: queued behind the first transaction.
        assert s.reserve(0.0) == 4.0
        assert s.reserve(1.0) == 6.0

    def test_size_scales_occupancy(self):
        s = Server("s", service=2.0, latency=1.0)
        assert s.reserve(0.0, size=4) == 9.0  # 8 busy + 1 latency
        assert s.next_free == 8.0

    def test_gap_resets_queue(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        assert s.reserve(100.0) == 102.0

    def test_busy_accounting_and_utilization(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        s.reserve(0.0)
        assert s.busy_cycles == 4.0
        assert s.num_served == 2
        assert s.utilization(8.0) == 0.5
        assert s.utilization(2.0) == 1.0  # clamped
        assert s.utilization(0.0) == 0.0

    def test_peek_start_does_not_reserve(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        assert s.peek_start(0.0) == 2.0
        assert s.peek_start(5.0) == 5.0
        assert s.num_served == 1

    def test_reset(self):
        s = Server("s", service=2.0)
        s.reserve(0.0)
        s.reset()
        assert s.next_free == 0.0
        assert s.busy_cycles == 0.0
        assert s.num_served == 0

    def test_negative_timing_rejected(self):
        with pytest.raises(ValueError):
            Server("bad", service=-1.0)
        with pytest.raises(ValueError):
            Server("bad", service=1.0, latency=-1.0)


class TestServerGroup:
    def test_indexing_and_len(self):
        g = ServerGroup("g", 4, service=1.0)
        assert len(g) == 4
        assert g[2].name == "g[2]"
        assert len(list(g)) == 4

    def test_max_and_mean_utilization(self):
        g = ServerGroup("g", 2, service=1.0)
        g[0].reserve(0.0)
        g[0].reserve(0.0)
        g[1].reserve(0.0)
        assert g.max_utilization(4.0) == pytest.approx(0.5)
        assert g.mean_utilization(4.0) == pytest.approx(0.375)

    def test_total_served(self):
        g = ServerGroup("g", 3, service=1.0)
        g[0].reserve(0.0)
        g[2].reserve(0.0)
        assert g.total_served() == 2

    def test_reset_clears_all(self):
        g = ServerGroup("g", 2, service=1.0)
        g[0].reserve(0.0)
        g.reset()
        assert g.total_served() == 0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ServerGroup("g", 0, service=1.0)
