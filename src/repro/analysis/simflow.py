"""SimFlow — static resource-flow liveness analysis for the event engine.

The DC-L1 designs live or die on credit/queue behaviour: NoC#1 Q1
credits, L1/L2 MSHR entries and crossbar ports form a chain of
hold-and-wait acquisitions threaded across ``GPUSystem``'s event
handlers.  A single leaked credit (acquired, never released on some
path) or a circular acquire order silently wedges a run instead of
failing.  SimLint proves determinism hygiene and SimRace proves
same-cycle order-independence; SimFlow is the third leg of the tripod —
**liveness**: every acquired resource is eventually released, and the
acquire-order graph is cycle-free.

**What counts as a resource event.**  Per handler (with SimRace's local
alias + transitive self-call resolution):

* ``<res>.acquire(...)`` / ``<res>.allocate(...)`` — acquire of the
  rooted ``self`` attribute (e.g. ``self.l1_mshrs[i].allocate`` acquires
  ``l1_mshrs``).  Calls through the sanitizer ledger
  (``self._ledger.acquire("dcl1-q1", ...)``) acquire the *named* ledger
  scope instead.
* ``<res>.release(...)`` / ``<res>.free(...)`` — release, same rooting.
* ``<credits>[n] -= 1`` / ``+= 1`` on an attribute whose name contains
  ``credit`` — credit acquire / release (flow-control tokens).

``Server.reserve`` is deliberately *not* an acquire: reservation servers
are time-released by construction (``next_free`` expires), so they
cannot leak.  Only classes that schedule at least one of their own
methods on the engine are analysed — resource wrappers themselves
(``MSHRFile``, ``ResourceLedger``) implement the primitives and are out
of scope.

**Rules.**

========  ========  =====================================================
Rule ID   Severity  What it flags
========  ========  =====================================================
SF301     error     acquire without a reachable release: no handler in
                    the schedule-reachability closure of the acquiring
                    handler (itself included, self-calls folded in) ever
                    releases the resource — or an explicit ``raise`` is
                    reached while the resource is held and not yet handed
                    to a scheduled continuation (exception-path leak)
SF302     error     release of a resource no handler in the class ever
                    acquires, or a double release on one path without an
                    intervening acquire
SF303     error     cycle in the inter-handler acquire-order graph
                    (acquiring R2 while holding R1 adds edge R1 -> R2;
                    a cycle is hold-and-wait deadlock potential)
========  ========  =====================================================

An acquire is "handed to a continuation" once the path performs a
``schedule``/``schedule_in`` call (or calls a helper that transitively
schedules): from then on the release is the continuation's job and the
schedule-reachability closure judges it, not the local path.  The path
walker explores branch/try unions with per-method state caps, so the
pass stays linear in practice.

Suppress a finding with ``# simflow: disable=SF301`` (comma list, or
``all``) on the flagged line or on the enclosing ``def`` line —
SimLint's convention with the ``simflow:`` marker.  Exit codes and
``--select/--strict/--list-rules`` mirror ``repro lint``.

The runtime complement is the stall watchdog
(:mod:`repro.sim.watchdog`): what SimFlow cannot prove statically, the
watchdog diagnoses dynamically with a resource wait-graph dump.  See
``docs/analysis.md``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.simlint import Severity, iter_python_files
from repro.analysis.simrace import (
    _root_attr,
    method_aliases,
    single_assignment_defs,
)

__all__ = [
    "FlowFinding",
    "flow_source",
    "run_flow",
    "flow_rule_table",
]

_SUPPRESS_RE = re.compile(r"#\s*simflow:\s*disable=([A-Za-z0-9_,\s]+)")

#: (rule_id, severity, title) for every SimFlow rule.
FLOW_RULES: List[Tuple[str, Severity, str]] = [
    ("SF301", Severity.ERROR,
     "resource acquired without a reachable release (leak)"),
    ("SF302", Severity.ERROR,
     "release without acquire / double release"),
    ("SF303", Severity.ERROR,
     "cycle in the inter-handler acquire-order graph (deadlock potential)"),
]

#: Method names that acquire / release the object they are called on.
ACQUIRE_METHODS: Set[str] = {"acquire", "allocate"}
RELEASE_METHODS: Set[str] = {"release", "free"}

#: Roots treated as the sanitizer ledger: the resource is the constant
#: scope-name argument, not the ledger attribute itself.
LEDGER_ATTRS: Set[str] = {"_ledger", "ledger"}

_CREDIT_RE = re.compile(r"credit", re.IGNORECASE)

#: Cap on simultaneously-tracked path states per method.  Branch unions
#: are deduplicated first; methods that still exceed the cap are merged
#: conservatively (states beyond the cap are dropped — a may-analysis,
#: so dropping states can only lose findings, never invent them).
_MAX_PATH_STATES = 64


@dataclass(frozen=True)
class FlowFinding:
    """One liveness finding (leak, bad release, or acquire-order cycle)."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    resource: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule_id}: {self.message}"
        )


def flow_rule_table() -> List[Tuple[str, str, str]]:
    """(rule_id, severity, title) for every SimFlow rule."""
    return [(rid, sev.value, title) for rid, sev, title in FLOW_RULES]


# --------------------------------------------------------- event extraction


@dataclass(frozen=True)
class _Event:
    """One resource-flow event inside a statement, in source order."""

    kind: str   # "acquire" | "release" | "schedule" | "call"
    name: str   # resource name, or scheduled/called method name
    line: int
    col: int


def _preorder(node: ast.AST) -> Iterator[ast.AST]:
    """Source-order (pre-order) traversal — ``ast.walk`` is BFS and
    would interleave events from sibling subtrees."""
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _preorder(child)


def _resource_of(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Resource name for an acquire/release call, or None when the base
    does not root in ``self`` state."""
    base = call.func.value  # type: ignore[attr-defined]
    root = _root_attr(base, aliases)
    if root is None:
        return None
    if root in LEDGER_ATTRS:
        if (
            call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            return call.args[0].value
        return None  # dynamic scope name: not trackable
    return root


def _expr_events(node: ast.AST, aliases: Dict[str, str]) -> List[_Event]:
    """Ordered resource events inside one expression/simple statement."""
    events: List[_Event] = []
    for sub in _preorder(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            attr = sub.func.attr
            base = sub.func.value
            if attr in ("schedule", "schedule_in"):
                cb: Optional[ast.AST] = sub.args[1] if len(sub.args) > 1 else None
                for kw in sub.keywords:
                    if kw.arg == "callback":
                        cb = kw.value
                handler = ""
                if (
                    isinstance(cb, ast.Attribute)
                    and isinstance(cb.value, ast.Name)
                    and cb.value.id == "self"
                ):
                    handler = cb.attr
                events.append(_Event("schedule", handler, sub.lineno, sub.col_offset))
                continue
            if isinstance(base, ast.Name) and base.id == "self":
                events.append(_Event("call", attr, sub.lineno, sub.col_offset))
                continue
            if attr in ACQUIRE_METHODS or attr in RELEASE_METHODS:
                res = _resource_of(sub, aliases)
                if res is not None:
                    kind = "acquire" if attr in ACQUIRE_METHODS else "release"
                    events.append(_Event(kind, res, sub.lineno, sub.col_offset))
        elif isinstance(sub, ast.AugAssign) and isinstance(
            sub.target, (ast.Attribute, ast.Subscript)
        ):
            root = _root_attr(sub.target, aliases)
            if root is not None and _CREDIT_RE.search(root):
                if isinstance(sub.op, ast.Sub):
                    events.append(
                        _Event("acquire", root, sub.lineno, sub.col_offset)
                    )
                elif isinstance(sub.op, ast.Add):
                    events.append(
                        _Event("release", root, sub.lineno, sub.col_offset)
                    )
    return events


# ------------------------------------------------------- per-method facts


@dataclass
class _MethodFacts:
    """Direct resource-flow facts of one method (flat scan, no paths)."""

    name: str
    lineno: int
    acquires: Dict[str, List[int]] = field(default_factory=dict)   # res -> lines
    releases: Dict[str, List[int]] = field(default_factory=dict)   # res -> lines
    schedules: Set[str] = field(default_factory=set)               # self-handlers
    any_schedule: bool = False
    calls: Set[str] = field(default_factory=set)


@dataclass
class _TransFacts:
    """Facts with direct self-calls folded in (fixpoint over the call
    graph, cycles cut at the back edge)."""

    acquires: Set[str] = field(default_factory=set)
    releases: Set[str] = field(default_factory=set)
    schedules: Set[str] = field(default_factory=set)
    any_schedule: bool = False


def _scan_method(func: ast.AST, aliases: Dict[str, str]) -> _MethodFacts:
    facts = _MethodFacts(name=func.name, lineno=func.lineno)
    for ev in _expr_events(func, aliases):
        if ev.kind == "acquire":
            facts.acquires.setdefault(ev.name, []).append(ev.line)
        elif ev.kind == "release":
            facts.releases.setdefault(ev.name, []).append(ev.line)
        elif ev.kind == "schedule":
            facts.any_schedule = True
            if ev.name:
                facts.schedules.add(ev.name)
        elif ev.kind == "call":
            facts.calls.add(ev.name)
    return facts


def _transitive_facts(methods: Dict[str, _MethodFacts]) -> Dict[str, _TransFacts]:
    memo: Dict[str, _TransFacts] = {}

    def visit(name: str, stack: Set[str]) -> _TransFacts:
        if name in memo:
            return memo[name]
        facts = methods.get(name)
        if facts is None or name in stack:
            return _TransFacts()
        stack.add(name)
        out = _TransFacts(
            acquires={r for r in facts.acquires},
            releases={r for r in facts.releases},
            schedules=set(facts.schedules),
            any_schedule=facts.any_schedule,
        )
        for callee in sorted(facts.calls):
            sub = visit(callee, stack)
            out.acquires |= sub.acquires
            out.releases |= sub.releases
            out.schedules |= sub.schedules
            out.any_schedule = out.any_schedule or sub.any_schedule
        stack.discard(name)
        memo[name] = out
        return out

    for name in methods:
        visit(name, set())
    return memo


# ------------------------------------------------------------- path walker


@dataclass
class _Hold:
    """A held resource on one path: where acquired, and whether a
    scheduled continuation has since taken responsibility for it."""

    line: int
    handed: bool = False


class _State:
    """Held/released resource state along one abstract path."""

    __slots__ = ("held", "released")

    def __init__(
        self,
        held: Optional[Dict[str, _Hold]] = None,
        released: Optional[Set[str]] = None,
    ):
        self.held: Dict[str, _Hold] = held if held is not None else {}
        self.released: Set[str] = released if released is not None else set()

    def copy(self) -> "_State":
        return _State(
            {r: _Hold(h.line, h.handed) for r, h in self.held.items()},
            set(self.released),
        )

    def key(self) -> Tuple:
        return (
            tuple(sorted((r, h.line, h.handed) for r, h in self.held.items())),
            tuple(sorted(self.released)),
        )


@dataclass
class _PathReport:
    """Path-sensitive findings collected while walking one method."""

    order_edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    raise_leaks: Set[Tuple[str, int, int]] = field(default_factory=set)
    double_releases: Set[Tuple[str, int]] = field(default_factory=set)


class _PathWalker:
    """Statement-level abstract interpreter over one method body.

    Tracks, per path, which resources are held (and whether handed to a
    scheduled continuation) and which were released; records acquire-order
    edges, exception-path leaks and double releases.  ``If`` forks,
    ``Try`` unions body and handler paths (handlers approximated from the
    try-entry state), loops walk the body once plus the zero-iteration
    path.  May-analysis: the state cap drops excess paths, losing — never
    inventing — findings.
    """

    def __init__(
        self,
        aliases: Dict[str, str],
        trans: Dict[str, _TransFacts],
        report: _PathReport,
    ):
        self.aliases = aliases
        self.trans = trans
        self.report = report
        # Enclosing (finalbody, has_handlers) entries, outermost first: a
        # raise runs through the finalbodies before leak-checking, and is
        # skipped entirely when an enclosing handler may catch it.
        self._finally_stack: List[Tuple[List[ast.stmt], bool]] = []

    # -- event application -------------------------------------------------

    def _apply_event(self, state: _State, ev: _Event) -> None:
        report = self.report
        if ev.kind == "acquire":
            for held_res in state.held:
                if held_res != ev.name:
                    report.order_edges.setdefault((held_res, ev.name), ev.line)
            state.held[ev.name] = _Hold(ev.line)
            state.released.discard(ev.name)
        elif ev.kind == "release":
            if ev.name in state.held:
                del state.held[ev.name]
                state.released.add(ev.name)
            elif ev.name in state.released:
                report.double_releases.add((ev.name, ev.line))
            else:
                # Releasing something acquired by an earlier handler —
                # the normal producer/consumer handoff.
                state.released.add(ev.name)
        elif ev.kind == "schedule":
            for hold in state.held.values():
                hold.handed = True
        elif ev.kind == "call":
            callee = self.trans.get(ev.name)
            if callee is None:
                return
            for held_res in state.held:
                for acq in callee.acquires:
                    if acq != held_res:
                        report.order_edges.setdefault((held_res, acq), ev.line)
            for rel in sorted(callee.releases):
                if rel in state.held:
                    del state.held[rel]
                    state.released.add(rel)
            if callee.any_schedule:
                for hold in state.held.values():
                    hold.handed = True

    def _apply_expr(self, states: List[_State], node: ast.AST) -> List[_State]:
        events = _expr_events(node, self.aliases)
        if events:
            for state in states:
                for ev in events:
                    self._apply_event(state, ev)
        return states

    # -- statement walk ----------------------------------------------------

    def _dedup(self, states: List[_State]) -> List[_State]:
        seen: Set[Tuple] = set()
        out: List[_State] = []
        for state in states:
            k = state.key()
            if k not in seen:
                seen.add(k)
                out.append(state)
            if len(out) >= _MAX_PATH_STATES:
                break
        return out

    def walk_block(self, stmts: Sequence[ast.stmt], states: List[_State]) -> List[_State]:
        for stmt in stmts:
            if not states:
                break
            states = self._walk_stmt(stmt, states)
            states = self._dedup(states)
        return states

    def _walk_stmt(self, stmt: ast.stmt, states: List[_State]) -> List[_State]:
        if isinstance(stmt, ast.If):
            states = self._apply_expr(states, stmt.test)
            then_states = self.walk_block(stmt.body, [s.copy() for s in states])
            else_states = self.walk_block(stmt.orelse, states)
            return then_states + else_states
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            states = self._apply_expr(states, stmt.iter)
            once = self.walk_block(stmt.body, [s.copy() for s in states])
            skip = self.walk_block(stmt.orelse, states)
            return once + skip
        if isinstance(stmt, ast.While):
            states = self._apply_expr(states, stmt.test)
            once = self.walk_block(stmt.body, [s.copy() for s in states])
            skip = self.walk_block(stmt.orelse, states)
            return once + skip
        if isinstance(stmt, ast.Try):
            entry = [s.copy() for s in states]
            self._finally_stack.append((list(stmt.finalbody), bool(stmt.handlers)))
            body_states = self.walk_block(stmt.body, states)
            body_states = self.walk_block(stmt.orelse, body_states)
            merged = body_states
            for handler in stmt.handlers:
                merged = merged + self.walk_block(
                    handler.body, [s.copy() for s in entry]
                )
            self._finally_stack.pop()
            return self.walk_block(stmt.finalbody, self._dedup(merged))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                states = self._apply_expr(states, item.context_expr)
            return self.walk_block(stmt.body, states)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                states = self._apply_expr(states, stmt.value)
            return []  # path ends; end-of-path leaks are the global check's job
        if isinstance(stmt, ast.Raise):
            states = self._apply_expr(states, stmt)
            if any(has_handlers for _fb, has_handlers in self._finally_stack):
                # May be caught by an enclosing handler; handler paths are
                # modelled separately, so stay silent (may-analysis).
                return []
            # The exception propagates through every enclosing finally
            # block (innermost first) before leaving the method.
            saved = self._finally_stack
            leak_states = [s.copy() for s in states]
            for i in range(len(saved) - 1, -1, -1):
                self._finally_stack = saved[:i]
                leak_states = self.walk_block(saved[i][0], leak_states)
            self._finally_stack = saved
            for state in leak_states:
                for res, hold in state.held.items():
                    if not hold.handed:
                        self.report.raise_leaks.add((res, hold.line, stmt.lineno))
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return []  # rejoins the loop exit paths already modelled
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return states  # nested defs: not executed here
        return self._apply_expr(states, stmt)


# -------------------------------------------------------------- class pass


class _SourceContext:
    """Per-file suppression-comment lookup (SimLint convention, with the
    ``simflow:`` marker)."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()

    def suppressed(self, lines: Iterable[int], rule_id: str) -> bool:
        for line in lines:
            if not (1 <= line <= len(self.lines)):
                continue
            m = _SUPPRESS_RE.search(self.lines[line - 1])
            if m is None:
                continue
            rules = {r.strip().upper() for r in m.group(1).split(",")}
            if "ALL" in rules or rule_id.upper() in rules:
                return True
        return False


def _schedule_closure(
    start: str, trans: Dict[str, _TransFacts]
) -> Set[str]:
    """Handlers reachable from ``start`` over the schedule graph
    (``start`` included): M -> H when M transitively schedules H."""
    seen: Set[str] = {start}
    frontier = [start]
    while frontier:
        cur = frontier.pop()
        for nxt in trans.get(cur, _TransFacts()).schedules:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _find_cycle(edges: Dict[Tuple[str, str], int]) -> Optional[Tuple[List[str], int]]:
    """A cycle (as a resource list, first == last) in the acquire-order
    graph plus its anchor line, or None.  Deterministic DFS in sorted
    order."""
    graph: Dict[str, List[str]] = {}
    for (a, b) in sorted(edges):
        graph.setdefault(a, []).append(b)

    color: Dict[str, int] = {}  # 0 absent/white, 1 grey, 2 black
    stack: List[str] = []

    def dfs(node: str) -> Optional[List[str]]:
        color[node] = 1
        stack.append(node)
        for nxt in graph.get(node, ()):
            if color.get(nxt, 0) == 1:
                return stack[stack.index(nxt):] + [nxt]
            if color.get(nxt, 0) == 0:
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = 2
        return None

    for root in sorted(graph):
        if color.get(root, 0) == 0:
            cycle = dfs(root)
            if cycle is not None:
                anchor = min(
                    edges[(cycle[i], cycle[i + 1])]
                    for i in range(len(cycle) - 1)
                )
                return cycle, anchor
    return None


def _analyze_class(
    cls: ast.ClassDef, ctx: _SourceContext, select: Optional[Set[str]]
) -> List[FlowFinding]:
    methods: Dict[str, _MethodFacts] = {}
    asts: Dict[str, ast.AST] = {}
    aliases_by_method: Dict[str, Dict[str, str]] = {}
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            aliases = method_aliases(item, single_assignment_defs(item))
            methods[item.name] = _scan_method(item, aliases)
            asts[item.name] = item
            aliases_by_method[item.name] = aliases

    # Only event-driven classes: at least one method schedules another
    # self-method on the engine.  Resource wrappers (MSHRFile, Server,
    # ResourceLedger...) define acquire/release primitives without the
    # handler protocol and are out of scope.
    if not any(m.schedules for m in methods.values()):
        return []

    trans = _transitive_facts(methods)

    # Path-sensitive pass: order edges, raise-path leaks, double releases.
    reports: Dict[str, _PathReport] = {}
    for name, func in sorted(asts.items()):
        report = _PathReport()
        walker = _PathWalker(aliases_by_method[name], trans, report)
        walker.walk_block(func.body, [_State()])  # type: ignore[attr-defined]
        reports[name] = report

    findings: List[FlowFinding] = []

    def wanted(rule_id: str) -> bool:
        return select is None or rule_id in select

    def emit(
        rule_id: str,
        resource: str,
        line: int,
        extra_suppress: Sequence[int],
        message: str,
    ) -> None:
        if not wanted(rule_id):
            return
        severity = next(sev for rid, sev, _ in FLOW_RULES if rid == rule_id)
        if ctx.suppressed([line, *extra_suppress], rule_id):
            return
        findings.append(
            FlowFinding(
                path=ctx.path, line=line, col=0, rule_id=rule_id,
                severity=severity, resource=resource, message=message,
            )
        )

    # -- SF301: acquire without a reachable release ------------------------
    # Judged at root methods (not called by any other method): a helper's
    # acquires are handed back to its caller, whose schedule closure is
    # the one that must contain the release.
    called_by_others: Set[str] = set()
    for facts in methods.values():
        called_by_others |= facts.calls
    for name in sorted(methods):
        if name in called_by_others:
            continue
        facts = methods[name]
        tfacts = trans.get(name, _TransFacts())
        if not tfacts.acquires:
            continue
        closure = _schedule_closure(name, trans)
        reachable_releases: Set[str] = set()
        for member in closure:
            reachable_releases |= trans.get(member, _TransFacts()).releases
        for resource in sorted(tfacts.acquires):
            if resource in reachable_releases:
                continue
            if resource in facts.acquires:
                line = facts.acquires[resource][0]
            else:  # acquired inside a helper this method calls
                line = min(
                    m.acquires[resource][0]
                    for m in methods.values()
                    if resource in m.acquires
                )
            emit(
                "SF301", resource, line, [facts.lineno],
                f"{cls.name}.{name} acquires '{resource}' but no handler "
                f"reachable from it (checked {len(closure)} handler(s) in "
                "its schedule closure) ever releases it — every acquisition "
                "leaks; pair it with a release or hand it to a handler "
                "that releases it",
            )

    # -- SF301: exception-path leaks ---------------------------------------
    for name in sorted(reports):
        facts = methods[name]
        for resource, acq_line, raise_line in sorted(reports[name].raise_leaks):
            emit(
                "SF301", resource, raise_line, [acq_line, facts.lineno],
                f"{cls.name}.{name} raises while holding '{resource}' "
                f"(acquired at line {acq_line}) before any scheduled "
                "continuation takes it over — the exception path leaks "
                "the resource; release it in a finally block or before "
                "raising",
            )

    # -- SF302: release without acquire / double release -------------------
    class_acquires: Set[str] = set()
    for facts in methods.values():
        class_acquires |= set(facts.acquires)
    for name in sorted(methods):
        facts = methods[name]
        for resource in sorted(facts.releases):
            if resource in class_acquires:
                continue
            line = facts.releases[resource][0]
            emit(
                "SF302", resource, line, [facts.lineno],
                f"{cls.name}.{name} releases '{resource}' but no handler "
                "in the class ever acquires it — a stray release corrupts "
                "the resource's accounting (double-free once the real "
                "owner releases too)",
            )
    for name in sorted(reports):
        facts = methods[name]
        for resource, line in sorted(reports[name].double_releases):
            emit(
                "SF302", resource, line, [facts.lineno],
                f"{cls.name}.{name} releases '{resource}' twice on one "
                "path without an intervening acquire — the second release "
                "frees state another request may already own",
            )

    # -- SF303: acquire-order cycles ---------------------------------------
    if wanted("SF303"):
        edges: Dict[Tuple[str, str], int] = {}
        for report in reports.values():
            for edge, line in report.order_edges.items():
                prev = edges.get(edge)
                if prev is None or line < prev:
                    edges[edge] = line
        found = _find_cycle(edges)
        if found is not None:
            cycle, anchor = found
            emit(
                "SF303", cycle[0], anchor, [cls.lineno],
                f"acquire-order cycle in {cls.name}: "
                + " -> ".join(cycle)
                + " — two requests interleaving these handlers can each "
                "hold one resource while waiting for the other "
                "(hold-and-wait deadlock); acquire in one global order "
                "or release before re-acquiring",
            )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


# ------------------------------------------------------------- entry points


def flow_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[FlowFinding]:
    """Run the liveness analysis over one source string."""
    wanted = {r.upper() for r in select} if select is not None else None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            FlowFinding(
                path, exc.lineno or 1, exc.offset or 0, "SF001",
                Severity.ERROR, "<module>", f"syntax error: {exc.msg}",
            )
        ]
    ctx = _SourceContext(path, source)
    findings: List[FlowFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(_analyze_class(node, ctx, wanted))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def run_flow(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> List[FlowFinding]:
    """Run the liveness analysis over every Python file under ``paths``."""
    findings: List[FlowFinding] = []
    for file in iter_python_files(paths):
        findings.extend(
            flow_source(file.read_text(encoding="utf-8"), str(file), select=select)
        )
    return findings
