"""ASCII curve rendering.

The paper presents several results as S-curves (Figures 2, 15, 17).  The
benchmark harness is text-only, so this module renders small, legible
ASCII charts: one column per rank, one row per value bucket.  Useful in
terminals, CI logs, and the rendered ``benchmarks/results`` files.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def ascii_curve(
    values: Sequence[float],
    height: int = 10,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    marker: str = "*",
) -> str:
    """Render one series as an ASCII chart (index on x, value on y)."""
    if not values:
        raise ValueError("nothing to plot")
    if height < 2:
        raise ValueError("height must be >= 2")
    lo = min(values) if y_min is None else y_min
    hi = max(values) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    grid = [[" "] * len(values) for _ in range(height)]
    for x, v in enumerate(values):
        frac = (min(max(v, lo), hi) - lo) / span
        y = round(frac * (height - 1))
        grid[height - 1 - y][x] = marker
    lines = []
    for i, row in enumerate(grid):
        level = hi - span * i / (height - 1)
        lines.append(f"{level:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * len(values))
    return "\n".join(lines)


def ascii_s_curves(
    curves: Dict[str, Sequence[float]],
    height: int = 12,
) -> str:
    """Overlay several pre-sorted series, one marker per series.

    Later series overwrite earlier ones where they collide; the legend maps
    markers to names.
    """
    if not curves:
        raise ValueError("nothing to plot")
    lengths = {len(v) for v in curves.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    width = lengths.pop()
    markers = "*o+x#@%&"
    if len(curves) > len(markers):
        raise ValueError(f"at most {len(markers)} series supported")
    lo = min(min(v) for v in curves.values())
    hi = max(max(v) for v in curves.values())
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    grid = [[" "] * width for _ in range(height)]
    legend: List[Tuple[str, str]] = []
    for marker, (name, series) in zip(markers, curves.items()):
        legend.append((marker, name))
        for x, v in enumerate(series):
            frac = (v - lo) / span
            y = round(frac * (height - 1))
            grid[height - 1 - y][x] = marker
    lines = []
    for i, row in enumerate(grid):
        level = hi - span * i / (height - 1)
        lines.append(f"{level:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append("legend: " + ", ".join(f"{m} {n}" for m, n in legend))
    return "\n".join(lines)
