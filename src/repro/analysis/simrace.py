"""SimRace — a same-cycle ordering-hazard (race) detector for the event engine.

The engine breaks same-timestamp ties by insertion order (``seq``), so any
two events scheduled at the same simulated cycle that touch the same
resource (an MSHR, a crossbar port, a Q1 credit, a cache set) produce
results that silently depend on the *textual order* of ``schedule()``
calls.  A refactor that reorders two innocent-looking lines can shift
every figure the repo reproduces.  SimRace hunts those hazards with two
complementary prongs:

**Static pass** (``repro race --static``, :func:`run_race`): walks the
AST of the simulator packages and, per handler (a method passed to
``schedule``/``schedule_in``), builds a read/write summary of the shared
resources it touches — attribute state on the owning class (caches,
MSHRs, banks, node credits, NoC topology), with simple local-alias
tracking, commutative scalar counters excluded, and summaries propagated
transitively through direct ``self._helper()`` calls.  Handler pairs that
can be *co-scheduled at equal timestamps* — both scheduled with the same
derived time expression from one function, at the same constant time, or
one of them at a now-derived/zero-delay time — are then checked for
conflicts:

========  ========  =====================================================
Rule ID   Severity  What it flags
========  ========  =====================================================
SR201     error     write/write conflict between two co-scheduled
                    handlers (result depends on schedule-call order)
SR202     warning   read/write conflict between two co-scheduled handlers
SR203     warning   a handler scheduled at a now-derived / zero-delay
                    time writes state also written by another handler
                    (it can land in *any* batch, so it conflicts with
                    every co-resident writer)
========  ========  =====================================================

A ``schedule(..., priority=...)`` call site *declares* its same-cycle
order (the engine sorts on ``(time, priority, seq)``), so pairs with a
declared priority are exempt — that is the sanctioned fix.  Suppress a
finding with ``# simrace: disable=SR201`` (comma list, or ``all``) on the
flagged schedule line or on either handler's ``def`` line, mirroring
SimLint's convention.  Self-pairs (one handler co-scheduled with itself)
are out of scope: FIFO among identical symmetric events models
arbitration, and any real design resolves it arbitrarily too.

**Dynamic confirmer** (``repro race --confirm``, :func:`confirm_races`):
replays one simulation K times under the engine's shadow-shuffle mode
(``SimConfig(race_check=True)``), which deterministically permutes the
distinct-handler blocks of every same-``(time, priority)`` batch under a
seeded RNG, records which handler pairs were actually co-scheduled, and
diffs the bit-exact :meth:`~repro.sim.results.SimResult.fingerprint` of
each replay against the FIFO baseline.  Each static finding is upgraded
to **CONFIRMED** (some permutation changed the results and the pair was
observed co-scheduled), **BENIGN** (observed co-scheduled, bit-identical
under every permutation), or **UNOBSERVED** (the pair never shared a
batch in this workload).

Known limitations (all deliberate, to stay dependency-free and fast):
analysis is per-class (cross-module handler interactions are invisible),
time-expression matching is textual after one level of local-variable
resolution, and interprocedural time flow (a ``now`` passed as a
parameter) is not tracked.  The dynamic confirmer exists precisely to
cover what the static pass cannot prove.

See ``docs/analysis.md`` for the full story; :mod:`repro.analysis.simlint`
and :mod:`repro.analysis.sanitizer` are the sibling tools.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.simlint import Severity, iter_python_files

__all__ = [
    "RaceFinding",
    "ConfirmReport",
    "PermutationRun",
    "analyze_source",
    "run_race",
    "confirm_races",
    "diff_fingerprints",
    "shuffle_outcomes",
    "race_rule_table",
    "method_aliases",
    "single_assignment_defs",
]

_SUPPRESS_RE = re.compile(r"#\s*simrace:\s*disable=([A-Za-z0-9_,\s]+)")

#: (rule_id, severity, title) for every SimRace rule.
RACE_RULES: List[Tuple[str, Severity, str]] = [
    ("SR201", Severity.ERROR,
     "same-cycle write/write conflict between co-scheduled handlers"),
    ("SR202", Severity.WARNING,
     "same-cycle read/write conflict between co-scheduled handlers"),
    ("SR203", Severity.WARNING,
     "now-scheduled handler writes state written by other handlers"),
]

#: Methods that mutate the object they are called on.  A call through a
#: ``self`` attribute (or a local alias of one) to any of these counts as
#: a *write* of that attribute; any other method call counts as a read.
MUTATING_METHODS: Set[str] = {
    # reservation servers / ports / memory controllers
    "reserve", "reset", "access",
    # caches, MSHRs, directories
    "allocate", "release", "install", "access_load", "access_store",
    "pop_stalled", "drain_writebacks", "evict", "invalidate", "fill",
    # containers used as queues
    "append", "appendleft", "pop", "popleft", "push", "insert", "extend",
    "add", "remove", "discard", "clear", "update", "setdefault",
    # NoC traversal helpers reserve crossbar ports internally
    "to_l2", "from_l2", "core_to_dcl1", "dcl1_to_core", "traverse", "inject",
    "inject_out",
    # streaming-bypass filter state
    "on_hit", "on_evict", "on_install",
    # core / wavefront bookkeeping
    "count_access", "bind", "next_stream", "assign_ctas",
}

#: ``self`` attributes excluded from conflict summaries: the engine (every
#: handler schedules), result counters (commutative accumulation), and the
#: sanitizer/watchdog mirrors (pure bookkeeping, never model state).
IGNORED_ATTRS: Set[str] = {
    "engine", "result", "cfg", "spec", "_ledger", "ledger",
    "_sanitized_completions", "_watchdog",
}


@dataclass(frozen=True)
class RaceFinding:
    """One potential same-cycle ordering hazard between two handlers."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    handlers: Tuple[str, str]
    resources: Tuple[str, ...]
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule_id}: {self.message}"
        )


def race_rule_table() -> List[Tuple[str, str, str]]:
    """(rule_id, severity, title) for every SimRace rule."""
    return [(rid, sev.value, title) for rid, sev, title in RACE_RULES]


# ------------------------------------------------------------- static pass


@dataclass
class _ScheduleSite:
    """One ``schedule``/``schedule_in`` call scheduling a self-method."""

    func: str            # enclosing method name
    handler: str         # scheduled self-method name
    line: int
    col: int
    key: str             # normalized (resolved) time-expression text
    is_const: bool       # constant absolute time (class-scoped key)
    is_now: bool         # now-derived / zero-delay time
    has_priority: bool   # explicit priority= declared


@dataclass
class _MethodSummary:
    """Direct effects of one method body."""

    name: str
    lineno: int
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)
    sites: List[_ScheduleSite] = field(default_factory=list)


def _root_attr(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute/subscript chain to the ``self`` attribute at
    its root (through local aliases), or None for non-self state."""
    cur = node
    attrs: List[str] = []
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        if isinstance(cur, ast.Attribute):
            attrs.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        if cur.id == "self":
            return attrs[-1] if attrs else None
        return aliases.get(cur.id)
    return None


def _is_alias_rhs(node: ast.AST) -> bool:
    """True when a RHS is a pure attribute/subscript chain (no calls), so
    the assigned name aliases the root resource rather than a result."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Call):
            return False
        node = node.value
    return isinstance(node, ast.Name)


def _contains_now(node: ast.AST) -> bool:
    """True when the expression *is* the current time: ``now``/``x.now``
    itself, or a ``max(...)`` clamp with a now-valued argument.  A call
    that merely takes ``now`` as input (e.g. ``reserve(now)``) returns a
    later time and does not count."""
    if isinstance(node, ast.Name) and node.id == "now":
        return True
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "max"
    ):
        return any(_contains_now(arg) for arg in node.args)
    return False


def _const_value(node: ast.AST) -> Optional[float]:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return float(node.value)
    return None


def single_assignment_defs(func: ast.AST) -> Dict[str, ast.AST]:
    """Local single-assignment map (for alias and time-expression
    resolution).  Names assigned more than once are dropped — resolving
    them would pick an arbitrary definition."""
    defs: Dict[str, ast.AST] = {}
    assigned_counts: Dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigned_counts[target.id] = assigned_counts.get(target.id, 0) + 1
                defs[target.id] = node.value
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and isinstance(
            getattr(node, "target", None), ast.Name
        ):
            assigned_counts[node.target.id] = assigned_counts.get(node.target.id, 0) + 2
        elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(node.target, ast.Name):
            assigned_counts[node.target.id] = assigned_counts.get(node.target.id, 0) + 2
    return {k: v for k, v in defs.items() if assigned_counts.get(k, 0) == 1}


def method_aliases(
    func: ast.AST, defs: Optional[Dict[str, ast.AST]] = None
) -> Dict[str, str]:
    """Local-name -> owning ``self`` attribute alias map for one method
    (shared by SimRace and SimFlow)."""
    if defs is None:
        defs = single_assignment_defs(func)
    aliases: Dict[str, str] = {}
    for name, rhs in defs.items():
        if _is_alias_rhs(rhs):
            root = _root_attr(rhs, {})
            if root is None and isinstance(rhs, ast.Name):
                continue  # alias of a parameter/local, resolved below
            if root is not None:
                aliases[name] = root
    # One more round so chains like ``slice_ = self.l2_slices[s]`` then
    # ``mshr = slice_.mshr`` resolve to the same root.
    for name, rhs in defs.items():
        if name not in aliases and _is_alias_rhs(rhs):
            root = _root_attr(rhs, aliases)
            if root is not None:
                aliases[name] = root
    return aliases


def _summarize_method(func: ast.AST) -> _MethodSummary:
    """Build the direct read/write/call/schedule summary of one method."""
    summary = _MethodSummary(name=func.name, lineno=func.lineno)
    defs = single_assignment_defs(func)
    aliases = method_aliases(func, defs)

    def resolve_time(expr: ast.AST) -> ast.AST:
        seen: Set[str] = set()
        while isinstance(expr, ast.Name) and expr.id in defs and expr.id not in seen:
            seen.add(expr.id)
            expr = defs[expr.id]
        return expr

    # Pass 2: accesses and schedule sites.
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_attr(target, aliases)
                    if root is not None and root not in IGNORED_ATTRS:
                        summary.writes.add(root)
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Attribute) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                # Commutative scalar counter (self.outstanding += 1):
                # order-insensitive, excluded from conflict detection.
                continue
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_attr(target, aliases)
                if root is not None and root not in IGNORED_ATTRS:
                    summary.writes.add(root)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and base.id == "self":
                summary.calls.add(node.func.attr)
            if node.func.attr in ("schedule", "schedule_in"):
                site = _schedule_site(summary.name, node, resolve_time)
                if site is not None:
                    summary.sites.append(site)
                continue
            root = _root_attr(base, aliases)
            if root is not None and root not in IGNORED_ATTRS:
                if node.func.attr in MUTATING_METHODS:
                    summary.writes.add(root)
                else:
                    summary.reads.add(root)
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            if node.attr not in IGNORED_ATTRS:
                summary.reads.add(node.attr)
    return summary


def _schedule_site(func_name: str, node: ast.Call, resolve_time) -> Optional[_ScheduleSite]:
    """Extract a :class:`_ScheduleSite` from one schedule() call, or None
    when the callback is not a self-method."""
    is_in = node.func.attr == "schedule_in"
    args = node.args
    time_arg: Optional[ast.AST] = args[0] if args else None
    cb_arg: Optional[ast.AST] = args[1] if len(args) > 1 else None
    has_priority = len(args) > 3
    for kw in node.keywords:
        if kw.arg in ("time", "delay"):
            time_arg = kw.value
        elif kw.arg == "callback":
            cb_arg = kw.value
        elif kw.arg == "priority":
            has_priority = True
    if time_arg is None or not (
        isinstance(cb_arg, ast.Attribute)
        and isinstance(cb_arg.value, ast.Name)
        and cb_arg.value.id == "self"
    ):
        return None
    resolved = resolve_time(time_arg)
    const = _const_value(resolved)
    is_now = _contains_now(resolved)
    if const is not None:
        if is_in:
            # schedule_in(0) fires at the current cycle; a positive
            # constant delay lands at now + c — interprocedurally unknown.
            is_now = is_now or const == 0.0
            key = f"in:{const:g}"
            is_const = False
        else:
            key = f"const:{const:g}"
            is_const = True
    else:
        try:
            text = ast.unparse(resolved)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            text = ast.dump(resolved)
        key = ("in:" if is_in else "") + " ".join(text.split())
        is_const = False
    return _ScheduleSite(
        func=func_name,
        handler=cb_arg.attr,
        line=node.lineno,
        col=node.col_offset,
        key=key,
        is_const=is_const,
        is_now=is_now,
        has_priority=has_priority,
    )


def _transitive_summaries(
    methods: Dict[str, _MethodSummary],
) -> Dict[str, Tuple[Set[str], Set[str]]]:
    """(reads, writes) per method with direct self-calls folded in."""
    memo: Dict[str, Tuple[Set[str], Set[str]]] = {}

    def visit(name: str, stack: Set[str]) -> Tuple[Set[str], Set[str]]:
        if name in memo:
            return memo[name]
        summ = methods.get(name)
        if summ is None or name in stack:
            return set(), set()
        stack.add(name)
        reads = set(summ.reads)
        writes = set(summ.writes)
        for callee in sorted(summ.calls):
            r, w = visit(callee, stack)
            reads |= r
            writes |= w
        stack.discard(name)
        memo[name] = (reads, writes)
        return memo[name]

    for name in methods:
        visit(name, set())
    return memo


class _SourceContext:
    """Per-file suppression-comment lookup (SimLint convention, with the
    ``simrace:`` marker)."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()

    def suppressed(self, lines: Iterable[int], rule_id: str) -> bool:
        for line in lines:
            if not (1 <= line <= len(self.lines)):
                continue
            m = _SUPPRESS_RE.search(self.lines[line - 1])
            if m is None:
                continue
            rules = {r.strip().upper() for r in m.group(1).split(",")}
            if "ALL" in rules or rule_id.upper() in rules:
                return True
        return False


def _pair_conflicts(
    a: str,
    b: str,
    effects: Dict[str, Tuple[Set[str], Set[str]]],
) -> Tuple[List[str], List[str]]:
    """(write/write, read/write) resource lists for a handler pair."""
    ra, wa = effects.get(a, (set(), set()))
    rb, wb = effects.get(b, (set(), set()))
    ww = sorted(wa & wb)
    rw = sorted(((ra & wb) | (rb & wa)) - set(ww))
    return ww, rw


def _analyze_class(
    cls: ast.ClassDef, ctx: _SourceContext, select: Optional[Set[str]]
) -> List[RaceFinding]:
    methods: Dict[str, _MethodSummary] = {}
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = _summarize_method(item)
    effects = _transitive_summaries(methods)
    sites = [s for m in methods.values() for s in m.sites if s.handler in methods]

    findings: List[RaceFinding] = []
    reported: Set[Tuple[str, str]] = set()

    def wanted(rule_id: str) -> bool:
        return select is None or rule_id in select

    def emit(
        rule_id: str,
        severity: Severity,
        pair: Tuple[str, str],
        resources: Sequence[str],
        anchor: _ScheduleSite,
        evidence_lines: Sequence[int],
        evidence: str,
    ) -> None:
        if not wanted(rule_id):
            return
        suppress_lines = list(evidence_lines) + [
            methods[h].lineno for h in pair if h in methods
        ]
        if ctx.suppressed(suppress_lines, rule_id):
            return
        kind = "write/write" if rule_id == "SR201" else (
            "read/write" if rule_id == "SR202" else "write/write"
        )
        findings.append(
            RaceFinding(
                path=ctx.path,
                line=anchor.line,
                col=anchor.col,
                rule_id=rule_id,
                severity=severity,
                handlers=pair,
                resources=tuple(resources),
                message=(
                    f"handlers {cls.name}.{pair[0]} and {cls.name}.{pair[1]} can "
                    f"run at the same cycle ({evidence}) with a {kind} conflict "
                    f"on {', '.join(resources)} — the outcome depends on "
                    "schedule() call order; declare the order with "
                    "schedule(..., priority=...) or restructure"
                ),
            )
        )
        reported.add(pair)

    # -- same-site / same-key co-scheduling (SR201 / SR202) ----------------
    groups: Dict[Tuple[str, str], List[_ScheduleSite]] = {}
    for site in sites:
        gk = ("<const>", site.key) if site.is_const else (site.func, site.key)
        groups.setdefault(gk, []).append(site)
    for gk in sorted(groups, key=lambda g: (g[0], g[1])):
        group = groups[gk]
        for i, sa in enumerate(group):
            for sb in group[i + 1:]:
                if sa.handler == sb.handler:
                    continue  # self-pairs: arbitration, out of scope
                if sa.has_priority or sb.has_priority:
                    continue  # order declared explicitly
                pair = tuple(sorted((sa.handler, sb.handler)))
                if pair in reported:
                    continue
                ww, rw = _pair_conflicts(pair[0], pair[1], effects)
                where = (
                    f"both scheduled at time `{sa.key}` "
                    f"[{gk[0]}: lines {sa.line} and {sb.line}]"
                )
                anchor = sa if sa.line <= sb.line else sb
                if ww:
                    emit("SR201", Severity.ERROR, pair, ww, anchor,
                         (sa.line, sb.line), where)
                elif rw:
                    emit("SR202", Severity.WARNING, pair, rw, anchor,
                         (sa.line, sb.line), where)

    # -- now-derived co-scheduling (SR203) ---------------------------------
    now_sites: Dict[str, _ScheduleSite] = {}
    for site in sites:
        if site.is_now and not site.has_priority and site.handler not in now_sites:
            now_sites[site.handler] = site
    scheduled_handlers = sorted({s.handler for s in sites})
    for handler in sorted(now_sites):
        site = now_sites[handler]
        for other in scheduled_handlers:
            if other == handler:
                continue
            pair = tuple(sorted((handler, other)))
            if pair in reported:
                continue
            ww, _rw = _pair_conflicts(handler, other, effects)
            if not ww:
                continue
            emit(
                "SR203", Severity.WARNING, pair, ww, site, (site.line,),
                f"{handler} is scheduled at a now-derived time "
                f"[{site.func}: line {site.line}] and can land in any "
                f"same-cycle batch alongside {other}",
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[RaceFinding]:
    """Run the static race analysis over one source string."""
    wanted = {r.upper() for r in select} if select is not None else None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            RaceFinding(
                path, exc.lineno or 1, exc.offset or 0, "SR001", Severity.ERROR,
                ("<module>", "<module>"), (),
                f"syntax error: {exc.msg}",
            )
        ]
    ctx = _SourceContext(path, source)
    findings: List[RaceFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(_analyze_class(node, ctx, wanted))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def run_race(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> List[RaceFinding]:
    """Run the static race analysis over every Python file under ``paths``."""
    findings: List[RaceFinding] = []
    for file in iter_python_files(paths):
        findings.extend(
            analyze_source(file.read_text(encoding="utf-8"), str(file), select=select)
        )
    return findings


# -------------------------------------------------------- dynamic confirmer


def diff_fingerprints(
    a: Dict[str, object], b: Dict[str, object], limit: int = 8
) -> List[str]:
    """Fields that differ between two result fingerprints (bit-exact)."""
    out: List[str] = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out.append(f"{key}: {va!r} != {vb!r}")
            if len(out) >= limit:
                out.append("...")
                break
    return out


@dataclass
class PermutationRun:
    """One shadow-shuffle replay vs the FIFO baseline."""

    seed: int
    shuffled_batches: int
    diff: List[str]

    @property
    def identical(self) -> bool:
        return not self.diff


@dataclass
class ConfirmReport:
    """Outcome of a K-replay dynamic confirmation."""

    app: str
    design: str
    k: int
    runs: List[PermutationRun]
    observed_pairs: Dict[Tuple[str, str], int]

    @property
    def bit_identical(self) -> bool:
        return all(run.identical for run in self.runs)

    def pair_observed(self, handler_a: str, handler_b: str) -> int:
        """Co-scheduled batch count for a handler pair (bare method names
        are matched against recorded qualnames)."""
        count = 0
        for (qa, qb), n in self.observed_pairs.items():
            names = {qa.rsplit(".", 1)[-1], qb.rsplit(".", 1)[-1]}
            if names == {handler_a, handler_b}:
                count += n
        return count

    def verdict_for(self, finding: "RaceFinding") -> str:
        """CONFIRMED / BENIGN / UNOBSERVED for one static finding."""
        if not self.pair_observed(*finding.handlers):
            return "UNOBSERVED"
        return "BENIGN" if self.bit_identical else "CONFIRMED"

    def render(self, findings: Optional[Sequence["RaceFinding"]] = None) -> str:
        lines = [
            f"SimRace confirm: app={self.app} design={self.design} "
            f"K={self.k} co-scheduled pairs observed={len(self.observed_pairs)}"
        ]
        for run in self.runs:
            if run.identical:
                lines.append(
                    f"  seed={run.seed}: bit-identical "
                    f"({run.shuffled_batches} batches shuffled)"
                )
            else:
                lines.append(
                    f"  seed={run.seed}: RESULTS DIFFER "
                    f"({run.shuffled_batches} batches shuffled)"
                )
                lines.extend(f"    {d}" for d in run.diff)
        for pair in sorted(self.observed_pairs):
            lines.append(
                f"  co-scheduled {pair[0]} / {pair[1]}: "
                f"{self.observed_pairs[pair]} batch(es)"
            )
        if findings:
            for f in findings:
                lines.append(
                    f"  {f.rule_id} {f.handlers[0]}/{f.handlers[1]}: "
                    f"{self.verdict_for(f)}"
                )
        lines.append(
            "overall: "
            + (
                "BENIGN (bit-identical under all permutations)"
                if self.bit_identical
                else "CONFIRMED ordering hazard (results depend on same-cycle order)"
            )
        )
        return "\n".join(lines)


def confirm_races(
    app: Any,
    spec: Any,
    config: Any = None,
    k: int = 5,
    findings: Optional[Sequence[RaceFinding]] = None,
) -> ConfirmReport:
    """Replay ``(app, spec, config)`` under K shadow-shuffle permutations
    and diff result fingerprints against the FIFO baseline.

    ``findings`` (from :func:`run_race`) are not consumed here but callers
    typically pass them to :meth:`ConfirmReport.render` for per-finding
    verdicts.
    """
    # Lazy imports: repro.sim.system imports repro.analysis at module
    # load, so importing it here (not at module top) avoids the cycle.
    from dataclasses import replace

    from repro.sim.config import SimConfig
    from repro.sim.system import GPUSystem

    cfg = config if config is not None else SimConfig()
    baseline = GPUSystem(app, spec, cfg).run()
    base_fp = baseline.fingerprint()
    runs: List[PermutationRun] = []
    observed: Dict[Tuple[str, str], int] = {}
    for i in range(1, k + 1):
        shuffled_cfg = replace(cfg, race_check=True, race_seed=cfg.race_seed + i)
        system = GPUSystem(app, spec, shuffled_cfg)
        result = system.run()
        for pair, n in system.engine.batch_pairs.items():
            observed[pair] = observed.get(pair, 0) + n
        runs.append(
            PermutationRun(
                seed=shuffled_cfg.race_seed,
                shuffled_batches=system.engine.shuffled_batches,
                diff=diff_fingerprints(base_fp, result.fingerprint()),
            )
        )
    return ConfirmReport(
        app=baseline.app,
        design=baseline.design,
        k=k,
        runs=runs,
        observed_pairs=observed,
    )


def shuffle_outcomes(factory: Any, k: int = 5, seed: int = 1) -> List[Any]:
    """Run ``factory(engine) -> outcome`` under K shuffled engines.

    A convenience harness for unit-testing ordering sensitivity of small
    hand-built event graphs: if the returned outcomes are not all equal,
    the graph's result depends on same-cycle ordering (CONFIRMED); if they
    are all equal it is BENIGN under these K permutations.
    """
    from repro.sim.engine import Engine

    outcomes = []
    for i in range(k):
        engine = Engine(shuffle_seed=seed + i)
        outcomes.append(factory(engine))
    return outcomes
