"""SimHeat — twin-path drift & hot-path performance analyzer.

The SimTurbo hot path (see ``docs/performance.md``) buys its ~2.9x
speedup with hand-maintained *twin implementations*: every instrumented
slow path (``Server.reserve``, ``Crossbar.traverse``, the cold issue
path) has an uninstrumented fast twin whose arithmetic must stay in
bit-exact lockstep.  The contract is guarded dynamically by the golden
fingerprints in ``tests/test_simturbo.py`` — SimHeat adds the static
half, plus review-time hygiene rules for the hot handlers themselves.

Rule family one — twin-path drift.  Sim-core modules declare a
``FAST_PATH_PAIRS`` manifest: ``(fast_qualname, slow_qualname(s), mode,
options)`` tuples naming each fast variant, its canonical slow twin and
the comparison *mode* the analyzer applies:

* ``"lockstep"`` — the two bodies must produce the same effect sequence
  once the declared elidable instrumentation (owner/ledger/watchdog
  hooks) is removed and single-assignment locals are substituted.
* ``"inline"`` — the fast side hand-inlines ``Server.reserve_fast``; the
  analyzer alpha-matches each inlined block against the reserve template
  and requires one block per ``.reserve(`` call in the slow twin.
* ``"closure"`` — the fast side is a factory returning specialized
  closures; each closure, with the factory-local bindings substituted,
  must match the corresponding canonical branch (helpers named in
  ``options["inline_helpers"]`` are inlined into the slow twin first).
* ``"specialized"`` — the fast side handles a subset of the slow twin's
  cases (the LOAD-only issue path); the analyzer checks the fast side's
  scheduled handlers are a subset of the slow side's, that assignments
  both sides make to the same target agree, and that counter updates
  differ only by ``options["slow_only_counters"]``.
* ``"delegated"`` — structural equivalence is delegated to the
  differential confirmer and the fingerprint tests; only SH603/SH604
  are enforced statically.

Rule family two — hot-path perf anti-patterns, applied to *hot
handlers*: every callback the class schedules, the declared fast twins,
their transitive self-call closure (skipping calls made under elided
instrumentation guards), and the functions a module names in
``SIMHEAT_HOT_FUNCTIONS``.

The dynamic half, :func:`confirm_heat`, replays a small app/design grid
twice — fast wiring vs. :meth:`GPUSystem.force_slow_path` — and requires
bit-identical fingerprints, then attributes per-handler heap allocation
via the tracemalloc-backed profiler, grading the static findings
CONFIRMED / BENIGN / UNOBSERVED.

Suppression: ``# simheat: disable=SH611`` (or ``ALL``) on the flagged
line, SimLint convention.
"""

from __future__ import annotations

import ast
import copy
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.simlint import Severity, iter_python_files
from repro.analysis.simrace import (
    diff_fingerprints,
    single_assignment_defs,
)

__all__ = [
    "HEAT_RULES",
    "HeatFinding",
    "HeatProbe",
    "HeatReport",
    "DEFAULT_CONFIRM_GRID",
    "heat_rule_table",
    "heat_source",
    "run_heat",
    "confirm_heat",
]

_SUPPRESS_RE = re.compile(r"#\s*simheat:\s*disable=([A-Za-z0-9_,\s]+)")

HEAT_RULES: List[Tuple[str, Severity, str]] = [
    ("SH600", Severity.ERROR,
     "module failed to parse (twin manifests unverifiable)"),
    ("SH601", Severity.ERROR,
     "fast twin diverges from its slow twin (arithmetic/schedule drift)"),
    ("SH602", Severity.ERROR,
     "counter updated on only one side of a twin pair"),
    ("SH603", Severity.ERROR,
     "unreachable fast path (never wired, or gate can never hold)"),
    ("SH604", Severity.ERROR,
     "slow-twin call inside a fast-path branch"),
    ("SH611", Severity.WARNING,
     "per-event allocation in a hot handler (container/closure/f-string)"),
    ("SH612", Severity.WARNING,
     "attribute chain re-resolved repeatedly inside an event loop"),
    ("SH613", Severity.ERROR,
     "per-event environment/config read in a hot handler"),
    ("SH614", Severity.ERROR,
     "pooled request stored into a container that outlives completion"),
    ("SH615", Severity.WARNING,
     "logging/printing in a hot handler"),
]

_RULE_IDS = {rid for rid, _, _ in HEAT_RULES}

#: ``self`` attributes (and bare names) that are instrumentation, not
#: model semantics: statements/branches keyed on them are elided before
#: twin comparison, and code under their guards is exempt from the
#: hot-path rules.  Modules may extend this via ``SIMHEAT_ELIDABLE``.
ELIDABLE_ATTRS: Set[str] = {
    "_ledger", "ledger", "_sanitizer", "_watchdog", "owner", "holder",
    "holder_since", "_fast", "_force_slow", "_note", "_live_audit",
    "_sanitized_completions",
}

#: Local names that look like in-flight requests (SH614's escape check).
_REQUEST_NAMES: Set[str] = {"req", "retry", "waiter", "nxt", "request"}

#: Container-mutation verbs that capture a reference (SH614).  ``allocate``
#: is deliberately absent: MSHR allocation is a modelled lifecycle hold,
#: not an accidental escape.
_SINK_VERBS: Set[str] = {
    "append", "add", "appendleft", "insert", "extend", "setdefault",
}

_LOG_METHODS: Set[str] = {"debug", "info", "warning", "error", "critical",
                          "exception", "log"}

#: The canonical reservation arithmetic ("inline" mode matches each
#: hand-inlined block of a fast twin against this, alpha-renaming
#: ``p``/``now``/``size``/locals; ``ret`` stands for assign-or-return).
_RESERVE_TEMPLATE_SRC = """\
start = now if now > p.next_free else p.next_free
occupancy = p.service * size
p.next_free = start + occupancy
p.busy_cycles += occupancy
p.num_served += 1
ret = start + occupancy + p.latency
"""


def heat_rule_table() -> List[Tuple[str, str, str]]:
    """(rule_id, severity, title) for every SimHeat rule."""
    return [(rid, sev.value, title) for rid, sev, title in HEAT_RULES]


@dataclass(frozen=True)
class HeatFinding:
    """One twin-drift or hot-path-hygiene violation."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    #: Hot handler the finding sits in (family two; confirmer grading).
    handler: str = ""
    #: ``fast->slow`` pair label (family one; confirmer grading).
    pair: str = ""

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule_id}: {self.message}"
        )


class _SourceContext:
    """Per-file suppression-comment lookup (``# simheat: disable=``)."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()

    def suppressed(self, lines: Iterable[int], rule_id: str) -> bool:
        for line in lines:
            if not (1 <= line <= len(self.lines)):
                continue
            m = _SUPPRESS_RE.search(self.lines[line - 1])
            if m is None:
                continue
            rules = {r.strip().upper() for r in m.group(1).split(",")}
            if "ALL" in rules or rule_id.upper() in rules:
                return True
        return False


# ------------------------------------------------------------ manifests


@dataclass
class _Pair:
    fast: str                  # "Class.method"
    slows: Tuple[str, ...]     # one or more "Class.method"
    mode: str
    options: Dict[str, object]

    @property
    def label(self) -> str:
        return f"{self.fast}->{self.slows[0]}"

    @property
    def fast_name(self) -> str:
        return self.fast.rsplit(".", 1)[-1]

    def slow_names(self) -> Set[str]:
        return {s.rsplit(".", 1)[-1] for s in self.slows}


@dataclass
class _Manifest:
    pairs: List[_Pair] = field(default_factory=list)
    hot_functions: Tuple[str, ...] = ()
    safe_sinks: Set[str] = field(default_factory=set)
    elidable: Set[str] = field(default_factory=set)


def _extract_manifest(tree: ast.Module) -> _Manifest:
    man = _Manifest()
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            continue
        name = stmt.targets[0].id
        if name not in ("FAST_PATH_PAIRS", "SIMHEAT_HOT_FUNCTIONS",
                        "SIMHEAT_REQUEST_SAFE_SINKS", "SIMHEAT_ELIDABLE"):
            continue
        try:
            value = ast.literal_eval(stmt.value)
        except (ValueError, SyntaxError):
            continue
        if name == "FAST_PATH_PAIRS":
            for entry in value:
                entry = tuple(entry)
                fast, slow = entry[0], entry[1]
                mode = entry[2] if len(entry) > 2 else "lockstep"
                opts = dict(entry[3]) if len(entry) > 3 else {}
                slows = tuple(slow) if isinstance(slow, (tuple, list)) else (slow,)
                man.pairs.append(_Pair(fast, slows, mode, opts))
        elif name == "SIMHEAT_HOT_FUNCTIONS":
            man.hot_functions = tuple(value)
        elif name == "SIMHEAT_REQUEST_SAFE_SINKS":
            man.safe_sinks = set(value)
        elif name == "SIMHEAT_ELIDABLE":
            man.elidable = set(value)
    return man


def _collect_defs(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """``Class.method`` (and bare module function) name -> def node."""
    defs: Dict[str, ast.FunctionDef] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defs[f"{stmt.name}.{sub.name}"] = sub
    return defs


# --------------------------------------------------- expression utilities


def _attr_root_and_chain(node: ast.AST) -> Tuple[Optional[str], List[str]]:
    """(root Name id, attribute names innermost-first) of an
    attribute/subscript chain; root is None for non-Name roots."""
    attrs: List[str] = []
    cur = node
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        if isinstance(cur, ast.Attribute):
            attrs.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        return cur.id, list(reversed(attrs))
    return None, list(reversed(attrs))


def _self_attr(node: ast.AST) -> Optional[str]:
    """First attribute of a ``self``-rooted chain, else None."""
    root, attrs = _attr_root_and_chain(node)
    if root == "self" and attrs:
        return attrs[0]
    return None


def _mentions(node: ast.AST, names: Set[str]) -> bool:
    """True when any Name id or Attribute attr in ``node`` is in ``names``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in names:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in names:
            return True
    return False


class _Subst(ast.NodeTransformer):
    """Replace Load-context Names by (copies of) bound expressions."""

    def __init__(self, env: Dict[str, ast.AST]):
        self.env = env

    def visit_Name(self, node: ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id in self.env:
            return copy.deepcopy(self.env[node.id])
        return node


def _substitute(node: ast.AST, env: Dict[str, ast.AST],
                rounds: int = 4) -> ast.AST:
    """Substitute ``env`` bindings into a copy of ``node`` to fixpoint
    (bounded — locals may reference other locals)."""
    out = copy.deepcopy(node)
    for _ in range(rounds):
        before = ast.dump(out)
        out = _Subst(env).visit(out)
        if ast.dump(out) == before:
            break
    return out


def _norm(node: ast.AST, env: Optional[Dict[str, ast.AST]] = None) -> str:
    """Canonical text of an expression/statement, locals substituted."""
    if env:
        node = _substitute(node, env)
    return ast.unparse(node)


def _env_of(func: ast.FunctionDef) -> Dict[str, ast.AST]:
    """Single-assignment locals of ``func``, including elementwise tuple
    unpacking (``m, n = self._m, self._n``) which
    :func:`single_assignment_defs` skips."""
    env = dict(single_assignment_defs(func))
    counts: Dict[str, int] = {}
    for node in ast.walk(func):
        for tgt in (node.targets if isinstance(node, ast.Assign) else
                    [node.target] if isinstance(node, (ast.AugAssign,
                                                       ast.AnnAssign)) else []):
            for sub in ast.walk(tgt):
                if isinstance(sub, ast.Name):
                    counts[sub.id] = counts.get(sub.id, 0) + 1
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(node.targets[0].elts) == len(node.value.elts)):
            for t, v in zip(node.targets[0].elts, node.value.elts):
                if isinstance(t, ast.Name) and counts.get(t.id, 0) == 1:
                    env[t.id] = v
    return env


# --------------------------------------------------------- elision logic


def _is_elidable_test(test: ast.AST, elidable: Set[str]) -> bool:
    """True for guards that exist purely for instrumentation: any test
    mentioning an elidable attribute (``owner is not None``,
    ``self._ledger is not None``, ``not self._fast`` …)."""
    return _mentions(test, elidable)


def _is_raise_only(body: List[ast.stmt]) -> bool:
    return all(isinstance(s, ast.Raise) for s in body)


def _fast_truthiness(test: ast.AST, elidable_fast: Set[str]) -> Optional[bool]:
    """Classify an If/IfExp test against the fast gate: True when the
    *body* runs only on the fast path (bare ``self._fast`` / alias),
    False when it runs only on the slow path (``not self._fast``), None
    when the gate is compound or unrelated."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _fast_truthiness(test.operand, elidable_fast)
        return None if inner is None else not inner
    if isinstance(test, ast.Name) and test.id in elidable_fast:
        return True
    if isinstance(test, ast.Attribute) and test.attr in elidable_fast:
        return True
    return None


def _fast_gate_names(func: ast.FunctionDef) -> Set[str]:
    """``_fast`` plus any local aliases of it in ``func``."""
    names = {"_fast"}
    for name, rhs in single_assignment_defs(func).items():
        if isinstance(rhs, ast.Attribute) and rhs.attr == "_fast":
            names.add(name)
        elif isinstance(rhs, ast.Name) and rhs.id in names:
            names.add(name)
    return names


def _elide_statements(body: Sequence[ast.stmt],
                      elidable: Set[str]) -> List[ast.stmt]:
    """Drop instrumentation statements from a statement list (shallow:
    nested compound statements are kept whole unless elidable)."""
    out: List[ast.stmt] = []
    for stmt in body:
        if isinstance(stmt, ast.If) and (
                _is_elidable_test(stmt.test, elidable)
                or _is_raise_only(stmt.body)):
            continue
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            roots = [_self_attr(t) for t in targets]
            if roots and all(r in elidable for r in roots if r is not None) \
                    and any(r is not None for r in roots):
                continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            attr = getattr(stmt.value.func, "attr", None)
            if attr in elidable:
                continue
        out.append(stmt)
    return out


# ------------------------------------------------------ effect sequences


def _effect_sequence(func: ast.FunctionDef,
                     elidable: Set[str]) -> List[str]:
    """Normalized statement texts of ``func`` with instrumentation elided
    and single-assignment locals substituted ("lockstep" comparison)."""
    env = _env_of(func)
    out: List[str] = []
    for stmt in _elide_statements(func.body, elidable):
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)):
            continue  # docstring
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id in env:
            continue  # definition of a substituted local
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            out.append(f"return {_norm(stmt.value, env)}")
        else:
            out.append(_norm(stmt, env))
    return out


def _counter_targets(func: ast.FunctionDef, elidable: Set[str]) -> Set[str]:
    """Self-rooted AugAssign targets — the batched result counters."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target)
            if attr is not None and attr not in elidable:
                out.add(attr)
    return out


def _schedule_callbacks(func: ast.FunctionDef) -> Set[str]:
    """Handler attribute names passed to ``schedule(...)`` calls."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else None)
        if name not in ("schedule", "schedule_in"):
            continue
        if len(node.args) >= 2:
            cb = node.args[1]
            attr = getattr(cb, "attr", None)
            if attr is not None:
                out.add(attr)
            elif isinstance(cb, ast.Name):
                out.add(cb.id)
    return out


def _self_call_names(func: ast.FunctionDef, elidable: Set[str]) -> Set[str]:
    """Names of self-methods called outside elided contexts."""
    out: Set[str] = set()

    def walk(stmts: Sequence[ast.stmt]) -> None:
        for stmt in _elide_statements(stmts, elidable):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute):
                    if isinstance(node.func.value, ast.Name) \
                            and node.func.value.id == "self":
                        out.add(node.func.attr)

    walk(func.body)
    return out


# -------------------------------------------------- alpha-equivalence


def _alpha_eq(a: ast.AST, b: ast.AST, fwd: Dict[str, str],
              rev: Dict[str, str]) -> bool:
    """Structural equality of two expressions modulo a consistent
    renaming of bare Names (attribute names and constants must match)."""
    if isinstance(a, ast.Name) and isinstance(b, ast.Name):
        if a.id in fwd:
            return fwd[a.id] == b.id
        if b.id in rev:
            return False
        fwd[a.id] = b.id
        rev[b.id] = a.id
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Attribute):
        return a.attr == b.attr and _alpha_eq(a.value, b.value, fwd, rev)
    if isinstance(a, ast.Constant):
        return a.value == b.value and type(a.value) is type(b.value)
    for fname, fa in ast.iter_fields(a):
        if fname in ("ctx", "lineno", "col_offset", "end_lineno",
                     "end_col_offset", "type_comment"):
            continue
        fb = getattr(b, fname)
        if isinstance(fa, ast.AST):
            if not isinstance(fb, ast.AST) or not _alpha_eq(fa, fb, fwd, rev):
                return False
        elif isinstance(fa, list):
            if not isinstance(fb, list) or len(fa) != len(fb):
                return False
            for xa, xb in zip(fa, fb):
                if isinstance(xa, ast.AST):
                    if not _alpha_eq(xa, xb, fwd, rev):
                        return False
                elif xa != xb:
                    return False
        else:
            if fa != fb:
                return False
    return True


def _as_assignment(stmt: ast.stmt) -> Optional[Tuple[ast.AST, ast.AST]]:
    """View a statement as (target, value): Assign-to-one-target,
    AugAssign (kept as-is via a marker), or Return (target ``ret``)."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        return stmt.targets[0], stmt.value
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        return ast.Name(id="ret", ctx=ast.Store()), stmt.value
    return None


def _match_reserve_block(block: List[ast.stmt]) -> bool:
    """Alpha-match one inlined block against the reserve template."""
    template = ast.parse(_RESERVE_TEMPLATE_SRC).body
    if len(block) != len(template):
        return False
    fwd: Dict[str, str] = {}
    rev: Dict[str, str] = {}
    for tstmt, cstmt in zip(template, block):
        if isinstance(tstmt, ast.AugAssign):
            if not isinstance(cstmt, ast.AugAssign):
                return False
            if type(tstmt.op) is not type(cstmt.op):
                return False
            if not _alpha_eq(tstmt.target, cstmt.target, fwd, rev):
                return False
            if not _alpha_eq(tstmt.value, cstmt.value, fwd, rev):
                return False
            continue
        tpair = _as_assignment(tstmt)
        cpair = _as_assignment(cstmt)
        if tpair is None or cpair is None:
            return False
        ttgt, tval = tpair
        ctgt, cval = cpair
        # ``ret = ...`` in the template accepts assignment or return.
        if not _alpha_eq(tval, cval, fwd, rev):
            return False
        if isinstance(ttgt, ast.Name) and ttgt.id == "ret":
            continue
        # Targets: Name<->Name via the map, attributes structurally.
        tk = ast.Name(id=ttgt.id, ctx=ast.Load()) if isinstance(ttgt, ast.Name) else ttgt
        ck = ast.Name(id=ctgt.id, ctx=ast.Load()) if isinstance(ctgt, ast.Name) else ctgt
        if not _alpha_eq(tk, ck, fwd, rev):
            return False
    return True


# ----------------------------------------------------- pair comparison


def _count_reserve_calls(func: ast.FunctionDef, slow_names: Set[str]) -> int:
    n = 0
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in slow_names:
                n += 1
    return n


def _check_lockstep(pair: _Pair, fast: ast.FunctionDef,
                    slow: ast.FunctionDef, elidable: Set[str],
                    ctx: _SourceContext) -> List[HeatFinding]:
    out: List[HeatFinding] = []
    seq_fast = _effect_sequence(fast, elidable)
    seq_slow = _effect_sequence(slow, elidable)
    if seq_fast != seq_slow:
        extra_f = [s for s in seq_fast if s not in seq_slow]
        extra_s = [s for s in seq_slow if s not in seq_fast]
        detail = "; ".join(
            ([f"fast-only: {extra_f[0]!r}"] if extra_f else [])
            + ([f"slow-only: {extra_s[0]!r}"] if extra_s else [])
        ) or "statement order differs"
        out.append(HeatFinding(
            ctx.path, fast.lineno, fast.col_offset, "SH601", Severity.ERROR,
            f"{pair.fast} drifts from {pair.slows[0]} after eliding "
            f"instrumentation ({detail})", pair=pair.label))
    return out


def _check_inline(pair: _Pair, fast: ast.FunctionDef,
                  slow: ast.FunctionDef, elidable: Set[str],
                  ctx: _SourceContext) -> List[HeatFinding]:
    out: List[HeatFinding] = []
    want = _count_reserve_calls(slow, {"reserve", "reserve_fast"})
    # Segment the fast body into inlined blocks at receiver rebinds:
    # an Assign whose RHS is a subscript/attribute lookup starts a block.
    body = _elide_statements(fast.body, elidable)
    blocks: List[List[ast.stmt]] = []
    cur: Optional[List[ast.stmt]] = None
    for stmt in body:
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)):
            continue
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, (ast.Subscript, ast.Attribute))):
            if cur:
                blocks.append(cur)
            cur = []
            continue
        if cur is not None:
            cur.append(stmt)
        elif isinstance(stmt, ast.AugAssign):
            continue  # leading counters (checked by SH602)
    if cur:
        blocks.append(cur)
    if len(blocks) != want:
        out.append(HeatFinding(
            ctx.path, fast.lineno, fast.col_offset, "SH601", Severity.ERROR,
            f"{pair.fast} inlines {len(blocks)} reservation block(s) but "
            f"{pair.slows[0]} makes {want} reservation call(s)",
            pair=pair.label))
        return out
    for i, block in enumerate(blocks):
        if not _match_reserve_block(block):
            out.append(HeatFinding(
                ctx.path, fast.lineno, fast.col_offset, "SH601",
                Severity.ERROR,
                f"{pair.fast} inlined block {i + 1} does not match the "
                "Server.reserve arithmetic template", pair=pair.label))
    return out


def _branch_returns(func: ast.FunctionDef) -> List[Tuple[Optional[ast.AST], ast.AST]]:
    """(condition, return-expression) per early-return branch; the final
    bare Return has condition None."""
    out: List[Tuple[Optional[ast.AST], ast.AST]] = []
    for stmt in func.body:
        if (isinstance(stmt, ast.If) and not stmt.orelse and stmt.body
                and isinstance(stmt.body[-1], ast.Return)):
            out.append((stmt.test, stmt.body[-1].value))
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            out.append((None, stmt.value))
    return out


def _conditional_defs(func: ast.FunctionDef) -> List[Tuple[Optional[ast.AST], Optional[ast.FunctionDef]]]:
    """(condition, closure def) per branch of a factory's if/elif/else."""
    out: List[Tuple[Optional[ast.AST], Optional[ast.FunctionDef]]] = []

    def first_def(stmts: Sequence[ast.stmt]) -> Optional[ast.FunctionDef]:
        for s in stmts:
            if isinstance(s, ast.FunctionDef):
                return s
        return None

    def walk_if(node: ast.If) -> None:
        out.append((node.test, first_def(node.body)))
        if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
            walk_if(node.orelse[0])
        elif node.orelse:
            out.append((None, first_def(node.orelse)))

    for stmt in func.body:
        if isinstance(stmt, ast.If):
            walk_if(stmt)
    if not out:
        inner = first_def(func.body)
        if inner is not None:
            out.append((None, inner))
    return out


class _CallReplacer(ast.NodeTransformer):
    """Replace ``self.<helper>(args)`` calls with an expression."""

    def __init__(self, helper: str, replacement: ast.AST):
        self.helper = helper
        self.replacement = replacement

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if isinstance(node.func, ast.Attribute) and node.func.attr == self.helper:
            return copy.deepcopy(self.replacement)
        return node


def _check_closure(pair: _Pair, fast: ast.FunctionDef,
                   slow: ast.FunctionDef, defs: Dict[str, ast.FunctionDef],
                   ctx: _SourceContext) -> List[HeatFinding]:
    out: List[HeatFinding] = []
    cls = pair.slows[0].rsplit(".", 1)[0]
    helpers = [str(h) for h in pair.options.get("inline_helpers", [])]
    env_slow = _env_of(slow)

    # Canonical branches: the slow twin's return with each helper branch
    # inlined (helper params substituted by the call arguments).
    slow_ret = None
    for stmt in slow.body:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            slow_ret = _substitute(stmt.value, env_slow)
    if slow_ret is None:
        return out
    canonical: List[Tuple[Optional[ast.AST], ast.AST]] = [(None, slow_ret)]
    for helper_name in helpers:
        helper = defs.get(f"{cls}.{helper_name}")
        if helper is None:
            continue
        call_args: List[ast.AST] = []
        for node in ast.walk(slow):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == helper_name:
                call_args = node.args
        params = [a.arg for a in helper.args.args if a.arg != "self"]
        param_env = {p: _substitute(a, env_slow)
                     for p, a in zip(params, call_args)}
        expanded: List[Tuple[Optional[ast.AST], ast.AST]] = []
        for cond, hret in _branch_returns(helper):
            hret_sub = _substitute(hret, param_env)
            cond_sub = _substitute(cond, param_env) if cond is not None else None
            for base_cond, base in canonical:
                replaced = _CallReplacer(helper_name, hret_sub).visit(
                    copy.deepcopy(base))
                use_cond = cond_sub if cond_sub is not None else base_cond
                expanded.append((use_cond, replaced))
        canonical = expanded

    closures = _conditional_defs(fast)
    if len(closures) != len(canonical):
        out.append(HeatFinding(
            ctx.path, fast.lineno, fast.col_offset, "SH601", Severity.ERROR,
            f"{pair.fast} builds {len(closures)} specialized closure(s) but "
            f"the canonical {pair.slows[0]} has {len(canonical)} branch(es)",
            pair=pair.label))
        return out

    env_fast = _env_of(fast)
    for i, ((fcond, closure), (scond, canon)) in enumerate(
            zip(closures, canonical)):
        where = closure.lineno if closure is not None else fast.lineno
        if (fcond is None) != (scond is None):
            out.append(HeatFinding(
                ctx.path, where, fast.col_offset, "SH601", Severity.ERROR,
                f"{pair.fast} branch {i + 1} guard structure differs from "
                f"the canonical {pair.slows[0]}", pair=pair.label))
            continue
        if fcond is not None and _norm(fcond, env_fast) != ast.unparse(scond):
            out.append(HeatFinding(
                ctx.path, where, fast.col_offset, "SH601", Severity.ERROR,
                f"{pair.fast} branch {i + 1} guard "
                f"{_norm(fcond, env_fast)!r} != canonical "
                f"{ast.unparse(scond)!r}", pair=pair.label))
            continue
        if closure is None:
            out.append(HeatFinding(
                ctx.path, where, fast.col_offset, "SH601", Severity.ERROR,
                f"{pair.fast} branch {i + 1} builds no closure",
                pair=pair.label))
            continue
        cret = None
        for stmt in closure.body:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                cret = stmt.value
        if cret is None:
            continue
        got = _norm(cret, env_fast)
        accepted = {ast.unparse(canon)}
        # Degenerate-branch simplification: when the canonical branch adds
        # a constant 0 under an ``M == 1`` guard, the specialized closure
        # may drop the ``* M + 0`` terms entirely.
        node = canon
        if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)
                and isinstance(node.right, ast.Constant)
                and node.right.value == 0):
            accepted.add(ast.unparse(node.left))
            inner = node.left
            if isinstance(inner, ast.BinOp) and isinstance(inner.op, ast.Mult):
                accepted.add(ast.unparse(inner.left))
        if got not in accepted:
            out.append(HeatFinding(
                ctx.path, closure.lineno, closure.col_offset, "SH601",
                Severity.ERROR,
                f"{pair.fast} closure {got!r} does not match canonical "
                f"{ast.unparse(canon)!r}", pair=pair.label))
    return out


def _check_specialized(pair: _Pair, fast: ast.FunctionDef,
                       slow: ast.FunctionDef, elidable: Set[str],
                       ctx: _SourceContext) -> List[HeatFinding]:
    out: List[HeatFinding] = []
    cb_fast = _schedule_callbacks(fast)
    cb_slow = _schedule_callbacks(slow)
    extra = cb_fast - cb_slow
    if extra:
        out.append(HeatFinding(
            ctx.path, fast.lineno, fast.col_offset, "SH601", Severity.ERROR,
            f"{pair.fast} schedules handler(s) {sorted(extra)} that "
            f"{pair.slows[0]} never schedules", pair=pair.label))
    # Assignments both sides make to the same object attribute must agree
    # (after local substitution) — e.g. req.mc_id derivation.
    env_f, env_s = _env_of(fast), _env_of(slow)

    def attr_assigns(func: ast.FunctionDef, env) -> Dict[str, Set[str]]:
        got: Dict[str, Set[str]] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Attribute) and isinstance(
                        tgt.value, ast.Name) and tgt.value.id != "self":
                    key = tgt.attr
                    got.setdefault(key, set()).add(_norm(node.value, env))
        return got

    a_fast = attr_assigns(fast, env_f)
    a_slow = attr_assigns(slow, env_s)
    for attr in sorted(set(a_fast) & set(a_slow)):
        if not (a_fast[attr] & a_slow[attr]):
            out.append(HeatFinding(
                ctx.path, fast.lineno, fast.col_offset, "SH601",
                Severity.ERROR,
                f"{pair.fast} and {pair.slows[0]} assign .{attr} "
                f"differently ({sorted(a_fast[attr])[0]!r} vs "
                f"{sorted(a_slow[attr])[0]!r})", pair=pair.label))
    return out


def _check_counters(pair: _Pair, fast: ast.FunctionDef,
                    slow: ast.FunctionDef, elidable: Set[str],
                    ctx: _SourceContext) -> List[HeatFinding]:
    out: List[HeatFinding] = []
    slow_only = {str(c) for c in pair.options.get("slow_only_counters", [])}
    c_fast = _counter_targets(fast, elidable)
    c_slow = _counter_targets(slow, elidable)
    fast_missing = (c_slow - slow_only) - c_fast
    slow_missing = c_fast - c_slow
    undeclared = c_fast & slow_only
    for name in sorted(fast_missing):
        out.append(HeatFinding(
            ctx.path, fast.lineno, fast.col_offset, "SH602", Severity.ERROR,
            f"counter {name} is updated by {pair.slows[0]} but not by "
            f"{pair.fast}", pair=pair.label))
    for name in sorted(slow_missing):
        out.append(HeatFinding(
            ctx.path, slow.lineno, slow.col_offset, "SH602", Severity.ERROR,
            f"counter {name} is updated by {pair.fast} but not by "
            f"{pair.slows[0]}", pair=pair.label))
    for name in sorted(undeclared):
        out.append(HeatFinding(
            ctx.path, fast.lineno, fast.col_offset, "SH602", Severity.ERROR,
            f"counter {name} is declared slow-only but updated by "
            f"{pair.fast}", pair=pair.label))
    return out


# -------------------------------------------------------- gate checks


def _check_gates(tree: ast.Module, man: _Manifest, elidable: Set[str],
                 refs: Dict[str, int], ctx: _SourceContext
                 ) -> List[HeatFinding]:
    """SH603: a fast path that can never run — either its gating
    predicate is contradictory, or the fast member is never wired in."""
    out: List[HeatFinding] = []
    # (b) contradictory gates: within a class whose wiring assigns
    # ``self._fast = self.<X> is None ...``, a test ANDing a positive
    # ``_fast`` with ``self.<X> is not None`` can never hold.
    for cls in [s for s in tree.body if isinstance(s, ast.ClassDef)]:
        none_keyed: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and _self_attr(node.targets[0]) == "_fast":
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Compare) and len(sub.ops) == 1 \
                            and isinstance(sub.ops[0], ast.Is) \
                            and isinstance(sub.comparators[0], ast.Constant) \
                            and sub.comparators[0].value is None:
                        attr = _self_attr(sub.left)
                        if attr is not None:
                            none_keyed.add(attr)
        if not none_keyed:
            continue
        for node in ast.walk(cls):
            if not isinstance(node, (ast.If, ast.IfExp)):
                continue
            test = node.test
            if not (isinstance(test, ast.BoolOp)
                    and isinstance(test.op, ast.And)):
                continue
            has_fast = any(
                (isinstance(op, ast.Attribute) and op.attr == "_fast")
                or (isinstance(op, ast.Name) and op.id == "_fast")
                for op in test.values)
            contradicted = any(
                isinstance(op, ast.Compare) and len(op.ops) == 1
                and isinstance(op.ops[0], ast.IsNot)
                and isinstance(op.comparators[0], ast.Constant)
                and op.comparators[0].value is None
                and _self_attr(op.left) in none_keyed
                for op in test.values)
            if has_fast and contradicted \
                    and not ctx.suppressed([test.lineno], "SH603"):
                out.append(HeatFinding(
                    ctx.path, test.lineno, test.col_offset, "SH603",
                    Severity.ERROR,
                    "fast-path gate can never hold: self._fast implies the "
                    "ledger is None but the gate also requires it attached"))
    # (a) unreferenced fast member.
    for pair in man.pairs:
        if refs.get(pair.fast_name, 0) < 1:
            fdef = _collect_defs(tree).get(pair.fast)
            line = fdef.lineno if fdef is not None else 1
            if not ctx.suppressed([line], "SH603"):
                out.append(HeatFinding(
                    ctx.path, line, 0, "SH603", Severity.ERROR,
                    f"fast path {pair.fast} is declared in FAST_PATH_PAIRS "
                    "but never referenced (never wired in)",
                    pair=pair.label))
    return out


def _check_slow_calls_in_fast(tree: ast.Module, man: _Manifest,
                              defs: Dict[str, ast.FunctionDef],
                              ctx: _SourceContext) -> List[HeatFinding]:
    """SH604: a slow-twin call inside a positive ``self._fast`` branch or
    inside a fast twin's own body."""
    out: List[HeatFinding] = []
    slow_names: Set[str] = set()
    for pair in man.pairs:
        slow_names |= pair.slow_names()
    if not slow_names:
        return out

    def scan(stmts: Sequence[ast.stmt], in_fast: bool, gates: Set[str],
             pair_label: str) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.If,)):
                truth = _fast_truthiness(stmt.test, gates)
                scan(stmt.body, in_fast or truth is True, gates, pair_label)
                scan(stmt.orelse, in_fast if truth is None else
                     (in_fast or truth is False is False and False),
                     gates, pair_label)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.IfExp):
                    truth = _fast_truthiness(node.test, gates)
                    if truth is True:
                        _flag_calls(node.body, pair_label)
                    elif truth is False:
                        _flag_calls(node.orelse, pair_label)
                if in_fast and isinstance(node, ast.Call):
                    _flag_call(node, pair_label)
            if in_fast:
                continue
            # Non-fast region: IfExp true-arms gated on fast still count,
            # handled in the walk above.

    def _flag_calls(node: ast.AST, pair_label: str) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                _flag_call(sub, pair_label)

    flagged: Set[int] = set()

    def _flag_call(node: ast.Call, pair_label: str) -> None:
        name = getattr(node.func, "attr", None) or (
            node.func.id if isinstance(node.func, ast.Name) else None)
        if name in slow_names and id(node) not in flagged \
                and not ctx.suppressed([node.lineno], "SH604"):
            flagged.add(id(node))
            out.append(HeatFinding(
                ctx.path, node.lineno, node.col_offset, "SH604",
                Severity.ERROR,
                f"slow twin {name}() called on the fast path "
                "(use the fast twin or hoist the call)", pair=pair_label))

    fast_defs = {p.fast: p.label for p in man.pairs}
    for cls in [s for s in tree.body if isinstance(s, ast.ClassDef)]:
        for func in [s for s in cls.body if isinstance(s, ast.FunctionDef)]:
            qual = f"{cls.name}.{func.name}"
            gates = _fast_gate_names(func)
            if qual in fast_defs:
                # Everything in a fast twin's body is fast context,
                # including closures a factory builds.
                scan(func.body, True, gates, fast_defs[qual])
            else:
                scan(func.body, False, gates, "")
    return out


# ----------------------------------------------------- hot-path hygiene


def _hot_handlers(tree: ast.Module, man: _Manifest,
                  elidable: Set[str]) -> Dict[str, ast.FunctionDef]:
    """Qualname -> def of every function held to the hot-path rules."""
    defs = _collect_defs(tree)
    hot: Dict[str, ast.FunctionDef] = {}
    for qual in man.hot_functions:
        if qual in defs:
            hot[qual] = defs[qual]
    for cls in [s for s in tree.body if isinstance(s, ast.ClassDef)]:
        seeds: Set[str] = set()
        for func in [s for s in cls.body if isinstance(s, ast.FunctionDef)]:
            seeds |= _schedule_callbacks(func)
        for pair in man.pairs:
            c, _, m = pair.fast.rpartition(".")
            if c == cls.name:
                seeds.add(m)
        # Transitive self-call closure, skipping elided contexts.
        frontier = [s for s in seeds]
        seen: Set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            func = defs.get(f"{cls.name}.{name}")
            if func is None:
                continue
            hot[f"{cls.name}.{name}"] = func
            for callee in _self_call_names(func, elidable):
                if callee not in seen and f"{cls.name}.{callee}" in defs:
                    frontier.append(callee)
    return hot


class _HotScanner:
    """Statement walker applying SH611-SH615 inside one hot function,
    honouring elided (instrumentation-only) regions."""

    def __init__(self, qual: str, func: ast.FunctionDef, man: _Manifest,
                 elidable: Set[str], select: Optional[Set[str]],
                 ctx: _SourceContext):
        self.qual = qual
        self.func = func
        self.man = man
        self.elidable = elidable
        self.select = select
        self.ctx = ctx
        self.gates = _fast_gate_names(func)
        self.findings: List[HeatFinding] = []

    def _want(self, rule: str) -> bool:
        return self.select is None or rule in self.select

    def _emit(self, node: ast.AST, rule: str, severity: Severity,
              message: str) -> None:
        if not self._want(rule):
            return
        line = getattr(node, "lineno", self.func.lineno)
        col = getattr(node, "col_offset", 0)
        if self.ctx.suppressed([line], rule):
            return
        self.findings.append(HeatFinding(
            self.ctx.path, line, col, rule, severity, message,
            handler=self.qual))

    def scan(self) -> List[HeatFinding]:
        self._scan_stmts(self.func.body, in_loop=False)
        return self.findings

    def _scan_stmts(self, stmts: Sequence[ast.stmt], in_loop: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                if _is_elidable_test(stmt.test, self.elidable) \
                        or _is_raise_only(stmt.body):
                    truth = _fast_truthiness(stmt.test, self.gates)
                    if truth is True:
                        # if self._fast: <hot> else: <instrumented>
                        self._scan_test(stmt.test, in_loop)
                        self._scan_stmts(stmt.body, in_loop)
                    elif truth is False:
                        self._scan_test(stmt.test, in_loop)
                        self._scan_stmts(stmt.orelse, in_loop)
                    # Pure instrumentation guard: skip both arms.
                    continue
                self._scan_test(stmt.test, in_loop)
                self._scan_stmts(stmt.body, in_loop)
                self._scan_stmts(stmt.orelse, in_loop)
                continue
            if isinstance(stmt, (ast.While, ast.For)):
                if isinstance(stmt, ast.While):
                    self._scan_test(stmt.test, in_loop)
                self._scan_stmts(stmt.body, in_loop=True)
                self._scan_stmts(stmt.orelse, in_loop)
                self._check_rebinds(stmt)
                continue
            if isinstance(stmt, (ast.Try,)):
                self._scan_stmts(stmt.body, in_loop)
                for h in stmt.handlers:
                    self._scan_stmts(h.body, in_loop)
                self._scan_stmts(stmt.orelse, in_loop)
                self._scan_stmts(stmt.finalbody, in_loop)
                continue
            if isinstance(stmt, ast.FunctionDef):
                continue  # nested factories are their own twins
            self._scan_expr_stmt(stmt, in_loop)

    def _scan_test(self, test: ast.AST, in_loop: bool) -> None:
        self._scan_node(test, in_loop)

    def _scan_expr_stmt(self, stmt: ast.stmt, in_loop: bool) -> None:
        # Skip instrumentation assignments/calls outright.
        for one in _elide_statements([stmt], self.elidable):
            self._scan_node(one, in_loop)
            self._check_escape(one)

    def _scan_node(self, root: ast.AST, in_loop: bool) -> None:
        cfg_seen: Set[object] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.IfExp):
                truth = _fast_truthiness(node.test, self.gates)
                if truth is not None:
                    # Slow arm of a fast-gated ternary is instrumentation.
                    continue
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp, ast.List, ast.Dict,
                                 ast.Set, ast.JoinedStr, ast.Lambda)):
                if isinstance(node, (ast.List, ast.Dict, ast.Set)) \
                        and not self._in_load_position(node):
                    continue
                if self._under_slow_ifexp(root, node):
                    continue
                kind = type(node).__name__
                self._emit(node, "SH611", Severity.WARNING,
                           f"per-event allocation in {self.qual}: {kind} "
                           "constructed on the hot path (hoist or pool it)")
            elif isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load):
                root_id, attrs = _attr_root_and_chain(node)
                if root_id == "self" and len(attrs) >= 3 \
                        and attrs[0] in ("cfg", "config") \
                        and node.lineno not in cfg_seen:
                    # One finding per line: sub-chains of a flagged
                    # traversal are implied (ast.walk is outermost-first).
                    cfg_seen.add(node.lineno)
                    self._emit(node, "SH613", Severity.ERROR,
                               f"per-event config traversal "
                               f"self.{'.'.join(attrs)} in hot handler "
                               f"{self.qual} (prebind it at wiring time)")

    @staticmethod
    def _in_load_position(node: ast.AST) -> bool:
        ctx = getattr(node, "ctx", None)
        return ctx is None or isinstance(ctx, ast.Load)

    def _under_slow_ifexp(self, root: ast.AST, target: ast.AST) -> bool:
        """True when ``target`` only occurs in the slow arm of a
        fast-gated conditional expression."""
        for node in ast.walk(root):
            if isinstance(node, ast.IfExp):
                truth = _fast_truthiness(node.test, self.gates)
                if truth is None:
                    continue
                slow_arm = node.orelse if truth is True else node.body
                for sub in ast.walk(slow_arm):
                    if sub is target:
                        return True
        return False

    def _scan_call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Name):
            if fn.id in ("list", "dict", "set", "frozenset"):
                self._emit(node, "SH611", Severity.WARNING,
                           f"per-event allocation in {self.qual}: "
                           f"{fn.id}() constructed on the hot path")
            elif fn.id == "print":
                self._emit(node, "SH615", Severity.WARNING,
                           f"print() in hot handler {self.qual}")
            elif fn.id == "getenv":
                self._emit(node, "SH613", Severity.ERROR,
                           f"environment read in hot handler {self.qual}")
            return
        if not isinstance(fn, ast.Attribute):
            return
        root, attrs = _attr_root_and_chain(fn)
        if root == "os" and attrs and attrs[0] in ("getenv", "environ"):
            self._emit(node, "SH613", Severity.ERROR,
                       f"environment read in hot handler {self.qual} "
                       "(resolve it once at config time — SimPure SP401)")
        elif (root in ("logging", "logger", "log")
              or "logger" in attrs[:-1]
              or (fn.attr in _LOG_METHODS
                  and root is not None and "log" in root)):
            self._emit(node, "SH615", Severity.WARNING,
                       f"logging call in hot handler {self.qual} "
                       "(gate it behind instrumentation or remove it)")

    def _check_rebinds(self, loop: ast.stmt) -> None:
        """SH612: identical >=2-deep attribute chains resolved >=2 times
        within one loop body."""
        seen: Dict[str, List[ast.Attribute]] = {}
        for node in ast.walk(loop):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            root, attrs = _attr_root_and_chain(node)
            if root != "self" or len(attrs) < 2:
                continue
            if attrs[0] in self.elidable or attrs[-1] in self.elidable:
                continue
            text = ast.unparse(node)
            seen.setdefault(text, []).append(node)
        repeated = {t for t, nodes in seen.items() if len(nodes) >= 2}
        for text in sorted(repeated):
            # Report only the longest repeated chain: its repeated
            # prefixes are the same re-lookup, not separate findings.
            if any(other != text and other.startswith(text + ".")
                   for other in repeated):
                continue
            nodes = seen[text]
            self._emit(nodes[1], "SH612", Severity.WARNING,
                       f"attribute chain {text} resolved "
                       f"{len(nodes)}x inside the event loop in "
                       f"{self.qual} (prebind it before the loop)")

    def _check_escape(self, stmt: ast.stmt) -> None:
        """SH614: a request-shaped local captured by a self-rooted
        container that is not a declared safe sink."""
        safe = self.man.safe_sinks
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) \
                    and node.func.attr in _SINK_VERBS:
                if not any(isinstance(a, ast.Name)
                           and a.id in _REQUEST_NAMES for a in node.args):
                    continue
                attr = _self_attr(node.func.value)
                if attr is None or attr in safe or attr in self.elidable:
                    continue
                self._emit(node, "SH614", Severity.ERROR,
                           f"pooled request stored into self.{attr} in "
                           f"{self.qual}; a reference outliving completion "
                           "defeats reinit() recycling (declare it in "
                           "SIMHEAT_REQUEST_SAFE_SINKS if the container is "
                           "drained before completion)")
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in _REQUEST_NAMES:
                attr = _self_attr(node.targets[0])
                if attr is None or attr in safe or attr in self.elidable:
                    continue
                self._emit(node, "SH614", Severity.ERROR,
                           f"pooled request stored into self.{attr}[...] in "
                           f"{self.qual}; a reference outliving completion "
                           "defeats reinit() recycling")


# ------------------------------------------------------------- drivers


def _reference_counts(trees: Sequence[ast.Module],
                      manifests: Sequence[_Manifest]) -> Dict[str, int]:
    """Package-wide attribute/name reference counts for the fast members
    (the SH603 never-wired check).  The defining FunctionDef itself does
    not contribute (its name is not a Name/Attribute node)."""
    wanted: Set[str] = set()
    for man in manifests:
        for pair in man.pairs:
            wanted.add(pair.fast_name)
    counts: Dict[str, int] = {}
    for tree in trees:
        for node in ast.walk(tree):
            name = None
            if isinstance(node, ast.Attribute) and node.attr in wanted:
                name = node.attr
            elif isinstance(node, ast.Name) and node.id in wanted:
                name = node.id
            if name is not None:
                counts[name] = counts.get(name, 0) + 1
    return counts


def _analyze_tree(tree: ast.Module, source: str, path: str,
                  select: Optional[Set[str]],
                  refs: Dict[str, int]) -> List[HeatFinding]:
    ctx = _SourceContext(path, source)
    man = _extract_manifest(tree)
    elidable = ELIDABLE_ATTRS | man.elidable
    defs = _collect_defs(tree)
    findings: List[HeatFinding] = []

    def want(rule: str) -> bool:
        return select is None or rule in select

    checkers = {
        "lockstep": _check_lockstep,
        "inline": _check_inline,
        "specialized": _check_specialized,
    }
    for pair in man.pairs:
        fast = defs.get(pair.fast)
        slow = defs.get(pair.slows[0])
        if fast is None or slow is None:
            if fast is None and want("SH601"):
                findings.append(HeatFinding(
                    path, 1, 0, "SH601", Severity.ERROR,
                    f"FAST_PATH_PAIRS names {pair.fast} but no such "
                    "definition exists in this module", pair=pair.label))
            continue
        if pair.mode == "closure":
            if want("SH601"):
                raw = _check_closure(pair, fast, slow, defs, ctx)
                findings.extend(f for f in raw if not ctx.suppressed(
                    [f.line, fast.lineno], f.rule_id))
        elif pair.mode in checkers:
            if want("SH601"):
                raw = checkers[pair.mode](pair, fast, slow, elidable, ctx)
                findings.extend(f for f in raw if not ctx.suppressed(
                    [f.line, fast.lineno], f.rule_id))
        # "delegated": no structural check.
        if pair.mode in ("lockstep", "inline", "specialized") \
                and want("SH602"):
            raw = _check_counters(pair, fast, slow, elidable, ctx)
            findings.extend(f for f in raw if not ctx.suppressed(
                [f.line], f.rule_id))

    if want("SH603"):
        findings.extend(_check_gates(tree, man, elidable, refs, ctx))
    if want("SH604"):
        findings.extend(_check_slow_calls_in_fast(tree, man, defs, ctx))

    for qual, func in sorted(_hot_handlers(tree, man, elidable).items()):
        scanner = _HotScanner(qual, func, man, elidable, select, ctx)
        findings.extend(scanner.scan())
    return findings


def heat_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None) -> List[HeatFinding]:
    """Analyze one source string (fixtures/tests).  References for the
    SH603 never-wired check are resolved within this source only."""
    sel = set(select) if select is not None else None
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [HeatFinding(path, exc.lineno or 1, exc.offset or 0,
                            "SH600", Severity.ERROR,
                            f"syntax error: {exc.msg}")]
    refs = _reference_counts([tree], [_extract_manifest(tree)])
    findings = _analyze_tree(tree, source, path, sel, refs)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def run_heat(paths: Sequence[str],
             select: Optional[Iterable[str]] = None) -> List[HeatFinding]:
    """Analyze every Python file under ``paths``.  The SH603 never-wired
    check resolves references package-wide (a fast twin defined in one
    module and wired in another is not unreachable)."""
    sel = set(select) if select is not None else None
    parsed: List[Tuple[str, str, ast.Module]] = []
    findings: List[HeatFinding] = []
    for file in iter_python_files(paths):
        src = file.read_text(encoding="utf-8")
        try:
            parsed.append((str(file), src, ast.parse(src)))
        except SyntaxError as exc:
            findings.append(HeatFinding(
                str(file), exc.lineno or 1, exc.offset or 0, "SH600",
                Severity.ERROR, f"syntax error: {exc.msg}"))
    refs = _reference_counts([t for _, _, t in parsed],
                             [_extract_manifest(t) for _, _, t in parsed])
    for path, src, tree in parsed:
        findings.extend(_analyze_tree(tree, src, path, sel, refs))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


# ------------------------------------------------------------ confirmer


#: Default force-fast vs force-slow replay grid: the acceptance workload
#: on Sh40, a clustered decoupled point, a store-heavy app (C-SP, 30%
#: stores — exercises the cold issue path on fast wiring), and the
#: baseline (no NoC#1, no home mapping).
DEFAULT_CONFIRM_GRID: Tuple[Tuple[str, str], ...] = (
    ("T-AlexNet", "Sh40"),
    ("P-2MM", "Sh40+C10"),
    ("C-SP", "Pr40"),
    ("C-BLK", "Baseline"),
)

_VERDICT_CONFIRMED = "CONFIRMED"
_VERDICT_BENIGN = "BENIGN"
_VERDICT_UNOBSERVED = "UNOBSERVED"


@dataclass(frozen=True)
class HeatProbe:
    """One dynamic check: a twin replay or the allocation profile."""

    kind: str      # "twin-diff" | "alloc"
    target: str    # "APP/DESIGN" or the profiled point
    ok: bool
    detail: str = ""

    def format(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        text = f"[{mark}] {self.kind} {self.target}"
        return f"{text}: {self.detail}" if self.detail else text


class HeatReport:
    """Aggregated result of :func:`confirm_heat`."""

    def __init__(self, grid: Sequence[Tuple[str, str]], scale: float,
                 probes: List[HeatProbe],
                 alloc_rows: Sequence[object] = ()):
        self.grid = list(grid)
        self.scale = scale
        self.probes = probes
        #: Per-handler ProfileRows from the tracemalloc-backed run.
        self.alloc_rows = list(alloc_rows)
        self.any_decoupled = any(
            design.lower() not in ("baseline", "cdxbar")
            for _, design in self.grid)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.probes)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for p in self.probes:
            out[p.kind] = out.get(p.kind, 0) + 1
        return out

    # ------------------------------------------------------- grading

    def _alloc_row_for(self, handler: str):
        tail = handler.rsplit(".", 1)[-1]
        for row in self.alloc_rows:
            name = getattr(row, "handler", "")
            if name == handler or name.rsplit(".", 1)[-1] == tail:
                return row
        return None

    def _alloc_threshold(self) -> float:
        """2x the median per-event allocation across handlers — every
        handler allocates a little (the schedule tuple itself); a
        confirmed SH611/SH614 hot spot stands clearly above the crowd."""
        vals = sorted(getattr(r, "alloc_b_per_event", 0.0)
                      for r in self.alloc_rows)
        if not vals:
            return float("inf")
        median = vals[len(vals) // 2]
        return max(2.0 * median, 64.0)

    def verdict_for(self, finding: HeatFinding) -> str:
        if finding.rule_id in ("SH601", "SH602", "SH603", "SH604", "SH600"):
            twin_failed = any(p.kind == "twin-diff" and not p.ok
                              for p in self.probes)
            if twin_failed:
                return _VERDICT_CONFIRMED
            needs_decoupled = ("home_of" in finding.pair
                               or "core_to_dcl1" in finding.pair)
            if needs_decoupled and not self.any_decoupled:
                return _VERDICT_UNOBSERVED
            return _VERDICT_BENIGN
        row = self._alloc_row_for(finding.handler) if finding.handler else None
        if row is None:
            return _VERDICT_UNOBSERVED
        if finding.rule_id in ("SH611", "SH614"):
            if getattr(row, "alloc_b_per_event", 0.0) >= self._alloc_threshold():
                return _VERDICT_CONFIRMED
            return _VERDICT_BENIGN
        return _VERDICT_BENIGN

    # ------------------------------------------------------- rendering

    def render(self, findings: Optional[Sequence[HeatFinding]] = None) -> str:
        lines = [
            f"SimHeat differential confirmer: {len(self.grid)} grid "
            f"point(s) at scale {self.scale}",
        ]
        lines.extend(f"  {p.format()}" for p in self.probes)
        if self.alloc_rows:
            lines.append("  per-handler allocation (tracemalloc, B/event):")
            for row in self.alloc_rows[:8]:
                lines.append(
                    f"    {getattr(row, 'handler', '?'):<40} "
                    f"{getattr(row, 'alloc_b_per_event', 0.0):>8.1f}")
        if findings:
            lines.append("  graded static findings:")
            for f in findings:
                lines.append(f"    {self.verdict_for(f):<11} "
                             f"{f.rule_id} {f.path}:{f.line}")
        n_twin = sum(1 for p in self.probes if p.kind == "twin-diff")
        if self.ok:
            lines.append(
                f"overall: SOUND ({n_twin} force-fast/force-slow replays "
                f"bit-identical, {len(self.alloc_rows)} handlers "
                "alloc-profiled)")
        else:
            bad = next(p for p in self.probes if not p.ok)
            lines.append(f"overall: UNSOUND — {bad.format()}")
        return "\n".join(lines)


def confirm_heat(grid: Optional[Sequence[Tuple[str, str]]] = None,
                 scale: float = 0.1,
                 config: Optional[object] = None,
                 trace_alloc: bool = True) -> HeatReport:
    """Replay a small grid force-fast vs force-slow and require
    bit-identical fingerprints; attribute per-handler allocation via the
    tracemalloc-backed profiler.

    Imports the simulator lazily (analyzer modules must stay importable
    without the sim core, SimLint convention).
    """
    from repro.cli import parse_design
    from repro.sim.config import SimConfig
    from repro.sim.profiler import profile_simulation
    from repro.sim.system import GPUSystem
    from repro.workloads.suite import get_app

    points = list(grid) if grid is not None else list(DEFAULT_CONFIRM_GRID)
    cfg = config if config is not None else SimConfig(scale=scale)
    probes: List[HeatProbe] = []
    for app_name, design in points:
        target = f"{app_name}/{design}"
        try:
            spec = parse_design(design)
            app = get_app(app_name)
            fast_sys = GPUSystem(app, spec, cfg)
            if not fast_sys._fast:
                probes.append(HeatProbe(
                    "twin-diff", target, False,
                    "config attaches a ledger; fast wiring unavailable"))
                continue
            fp_fast = fast_sys.run().fingerprint()
            slow_sys = GPUSystem(app, spec, cfg)
            slow_sys.force_slow_path()
            fp_slow = slow_sys.run().fingerprint()
        except Exception as exc:  # pragma: no cover - defensive
            probes.append(HeatProbe("twin-diff", target, False, repr(exc)))
            continue
        diffs = diff_fingerprints(fp_fast, fp_slow)
        if diffs:
            probes.append(HeatProbe(
                "twin-diff", target, False,
                f"fast/slow fingerprints diverge: {diffs[0]}"))
        else:
            probes.append(HeatProbe(
                "twin-diff", target, True, "fingerprints bit-identical"))

    alloc_rows: List[object] = []
    if trace_alloc and points:
        app_name, design = points[0]
        try:
            _, prof = profile_simulation(
                get_app(app_name), parse_design(design), cfg,
                trace_alloc=True)
            alloc_rows = prof.rows()
            probes.append(HeatProbe(
                "alloc", f"{app_name}/{design}", True,
                f"{len(alloc_rows)} handler(s) profiled"))
        except Exception as exc:  # pragma: no cover - defensive
            probes.append(HeatProbe(
                "alloc", f"{app_name}/{design}", False, repr(exc)))

    return HeatReport(points, getattr(cfg, "scale", scale), probes,
                      alloc_rows)
