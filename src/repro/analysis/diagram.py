"""Topology diagrams (the paper's Figures 5, 7 and 10 as SVG).

Renders a :class:`~repro.core.designs.DesignSpec` as a three-tier diagram:
cores on top, DC-L1 nodes in the middle (coloured by the address range
they home, the paper's hatching), L2 slices at the bottom (coloured by the
range they serve).  Crossbars appear as labelled bus bars; clusters as
rounded outlines.  Baseline/CDXBar designs draw their core-side L1s inside
the cores.

Purely presentational — geometry comes from the same
:class:`~repro.core.clusters.ClusterGeometry` the simulator uses, so a
diagram is always faithful to what would be simulated.
"""

from __future__ import annotations

from typing import List

from repro.core.clusters import ClusterGeometry
from repro.core.designs import DesignKind, DesignSpec

RANGE_COLOURS = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
)

_CORE_Y, _NODE_Y, _L2_Y = 60, 170, 290
_BOX = 16


def _esc(s: str) -> str:
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


class _Drawing:
    def __init__(self, width: int, height: int, title: str):
        self.width = width
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            'font-family="Helvetica, Arial, sans-serif">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{_esc(title)}</text>',
        ]

    def box(self, x, y, w, h, fill, stroke="#333", rx=2):
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'rx="{rx}" fill="{fill}" stroke="{stroke}" stroke-width="0.8"/>'
        )

    def bus(self, x1, x2, y, label):
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y:.1f}" x2="{x2:.1f}" y2="{y:.1f}" '
            'stroke="#555" stroke-width="3"/>'
        )
        self.parts.append(
            f'<text x="{(x1 + x2) / 2:.1f}" y="{y - 5:.1f}" text-anchor="middle" '
            f'font-size="9" fill="#555">{_esc(label)}</text>'
        )

    def drop(self, x, y1, y2):
        self.parts.append(
            f'<line x1="{x:.1f}" y1="{y1:.1f}" x2="{x:.1f}" y2="{y2:.1f}" '
            'stroke="#999" stroke-width="0.8"/>'
        )

    def label(self, x, y, text, size=10, anchor="middle"):
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="{anchor}" '
            f'font-size="{size}" fill="#222">{_esc(text)}</text>'
        )

    def outline(self, x, y, w, h):
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            'rx="8" fill="none" stroke="#888" stroke-dasharray="4 3"/>'
        )

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def _positions(count: int, width: int, margin: int = 50) -> List[float]:
    if count == 1:
        return [width / 2.0]
    span = width - 2 * margin
    return [margin + span * i / (count - 1) for i in range(count)]


def design_diagram(spec: DesignSpec, num_cores: int = 80, num_l2: int = 32,
                   width: int = 1200) -> str:
    """Render one design point as an SVG diagram string."""
    d = _Drawing(width, 340, f"{spec.label}: {num_cores} cores, {num_l2} L2 slices")
    core_x = _positions(num_cores, width)
    l2_x = _positions(num_l2, width)

    if spec.kind in (DesignKind.BASELINE, DesignKind.CDXBAR):
        for x in core_x:
            d.box(x - _BOX / 2, _CORE_Y, _BOX, _BOX, "#dddddd")
            d.box(x - _BOX / 2 + 2, _CORE_Y + _BOX - 6, _BOX - 4, 5, "#4477aa",
                  stroke="none")
            d.drop(x, _CORE_Y + _BOX, _NODE_Y)
        d.label(26, _CORE_Y + 12, "cores+L1", size=9, anchor="start")
        if spec.kind == DesignKind.CDXBAR:
            d.bus(40, width - 40, _NODE_Y, "CDXBar stage 1 (per-group) + stage 2 (per-column)")
        else:
            d.bus(40, width - 40, _NODE_Y, f"NoC: {num_cores}x{num_l2} crossbar")
        for s, x in enumerate(l2_x):
            d.drop(x, _NODE_Y, _L2_Y)
            d.box(x - _BOX / 2, _L2_Y, _BOX, _BOX, "#f4f4f4")
        d.label(26, _L2_Y + 12, "L2", size=9, anchor="start")
        return d.render()

    geo = ClusterGeometry.from_design(spec, num_cores, num_l2)
    node_x = _positions(geo.num_dcl1, width)
    m = geo.dcl1_per_cluster

    # Cores (Lite Cores: no L1 inside).
    for x in core_x:
        d.box(x - _BOX / 2, _CORE_Y, _BOX, _BOX, "#dddddd")
    d.label(26, _CORE_Y + 12, "lite cores", size=9, anchor="start")

    # Per-cluster NoC#1 buses + cluster outlines.
    for z in range(geo.num_clusters):
        cores = list(geo.cores_of_cluster(z))
        nodes = list(geo.dcl1s_of_cluster(z))
        x1 = min(core_x[cores[0]], node_x[nodes[0]]) - 10
        x2 = max(core_x[cores[-1]], node_x[nodes[-1]]) + 10
        label = (
            f"NoC#1 {geo.cores_per_cluster}x{m}"
            + (" @2x" if spec.noc1_freq_mult > 1 else "")
        )
        d.bus(x1, x2, _NODE_Y - 45, label if z == 0 else "")
        for c in cores:
            d.drop(core_x[c], _CORE_Y + _BOX, _NODE_Y - 45)
        for n in nodes:
            d.drop(node_x[n], _NODE_Y - 45, _NODE_Y)
        if geo.num_clusters > 1:
            d.outline(x1 - 6, _CORE_Y - 10, x2 - x1 + 12, _NODE_Y - _CORE_Y + 40)

    # DC-L1 nodes coloured by home range.
    for n, x in enumerate(node_x):
        colour = RANGE_COLOURS[geo.dcl1_range_of(n) % len(RANGE_COLOURS)]
        d.box(x - _BOX / 2, _NODE_Y, _BOX, _BOX, colour)
    d.label(26, _NODE_Y + 12, "DC-L1", size=9, anchor="start")

    # NoC#2: per-range buses when partitioned, one big bus otherwise.
    if geo.noc2_partitioned:
        for r in range(m):
            y = _L2_Y - 40 + r * 8
            xs = [node_x[n] for n in range(geo.num_dcl1) if geo.dcl1_range_of(n) == r]
            l2s = [l2_x[s] for s in range(num_l2) if s % m == r]
            d.bus(min(xs + l2s), max(xs + l2s), y,
                  f"NoC#2 {geo.num_clusters}x{geo.l2_per_range}" if r == 0 else "")
            for x in xs:
                d.drop(x, _NODE_Y + _BOX, y)
            for x in l2s:
                d.drop(x, y, _L2_Y)
    else:
        d.bus(40, width - 40, _L2_Y - 40, f"NoC#2 {geo.num_dcl1}x{num_l2}")
        for x in node_x:
            d.drop(x, _NODE_Y + _BOX, _L2_Y - 40)
        for x in l2_x:
            d.drop(x, _L2_Y - 40, _L2_Y)

    # L2 slices coloured by the range they serve (when aligned).
    for s, x in enumerate(l2_x):
        colour = RANGE_COLOURS[(s % m) % len(RANGE_COLOURS)] if geo.noc2_partitioned else "#f4f4f4"
        d.box(x - _BOX / 2, _L2_Y, _BOX, _BOX, colour)
    d.label(26, _L2_Y + 12, "L2", size=9, anchor="start")
    return d.render()
