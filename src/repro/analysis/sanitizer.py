"""SimSanitizer — a runtime resource sanitizer for the simulator.

Think ASan/TSan for the discrete-event model: every acquire/release-shaped
resource in the system (MSHR entries, DC-L1 Q1 queue slots, in-flight
requests) is mirrored in a central :class:`ResourceLedger`.  Violations —
double-acquires, double-frees, events scheduled after the queue drained,
runaway port reservations, capacity overflows — raise a
:class:`SanitizerError` *at the moment they happen*, attributed to the
owning request and its acquisition history, instead of surfacing hundreds
of millions of events later as an opaque livelock against the engine's
event budget.  Leaks (resources still held when the system drains) are
reported by :meth:`ResourceLedger.assert_drained`.

The sanitizer is opt-in: enable it with ``SimConfig(sanitize=True)``, the
``repro simulate --sanitize`` CLI flag, or the ``REPRO_SANITIZE=1``
environment variable.  When disabled, the instrumented hot paths pay only
a single ``is None`` check, keeping the fast path fast.

This module is dependency-free (no imports from :mod:`repro.sim`) so the
engine and cache layers can hold a ledger without import cycles.

See ``docs/analysis.md`` for the full story, and
:mod:`repro.analysis.simlint` for the static (AST) half of the analysis
subsystem.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: A reservation that pushes a port's ``next_free`` more than this many
#: cycles past "now" is considered runaway (a camped/never-released port).
RUNAWAY_RESERVATION_CYCLES = 1e9


class SanitizerError(RuntimeError):
    """An invariant violation caught by the SimSanitizer."""


def sanitize_from_env() -> bool:
    """True when the ``REPRO_SANITIZE`` environment variable enables the
    sanitizer (any value other than empty or ``0``).

    Kept as a compatibility alias: the environment is resolved by
    :func:`repro.sim.config.sanitize_env_enabled` at :class:`SimConfig`
    construction, never by the sim core at run time (SimPure SP401).
    The import is lazy — the analysis package never imports the sim
    layer at module scope.
    """
    from repro.sim.config import sanitize_env_enabled

    return sanitize_env_enabled()


def describe_owner(owner: Any) -> str:
    """Human-readable identity of a resource owner.

    Memory requests get a rich description (core, line, kind, issue time);
    anything else falls back to ``repr``.
    """
    if owner is None:
        return "<no owner>"
    core_id = getattr(owner, "core_id", None)
    line = getattr(owner, "line", None)
    if core_id is not None and line is not None:
        kind = getattr(owner, "kind", None)
        if isinstance(kind, int) and not hasattr(kind, "name"):
            # Trace streams carry kinds as raw ints; decode on this cold
            # path only (deferred import keeps this module dependency-free).
            try:
                from repro.gpu.request import AccessKind

                kind = AccessKind(kind)
            except Exception:
                pass
        kind_name = getattr(kind, "name", str(kind))
        issued = getattr(owner, "issue_time", None)
        extra = f" issued@{issued:.1f}" if isinstance(issued, float) else ""
        return f"request(core={core_id}, line={line:#x}, kind={kind_name}{extra})"
    return repr(owner)


class ResourceHold:
    """One currently-held resource and its attribution history."""

    __slots__ = ("kind", "key", "owner", "acquired_at", "history")

    def __init__(self, kind: str, key: Any, owner: Any, acquired_at: float):
        self.kind = kind
        self.key = key
        self.owner = owner
        self.acquired_at = acquired_at
        self.history: List[str] = []

    def describe(self) -> str:
        text = (
            f"{self.kind}[{self.key!r}] acquired at t={self.acquired_at:.1f} "
            f"by {describe_owner(self.owner)}"
        )
        if self.history:
            text += "; history: " + " | ".join(self.history)
        return text


class ResourceLedger:
    """Central acquire/release bookkeeping for every sanitized resource.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time (wire
        it to ``lambda: engine.now``); defaults to a constant 0.0 clock so
        the ledger is usable standalone in unit tests.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._held: Dict[Tuple[str, Any], ResourceHold] = {}
        self.acquires = 0
        self.releases = 0
        self.notes = 0

    # -- clock -------------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    # -- acquire / release -------------------------------------------------

    def acquire(self, kind: str, key: Any, owner: Any = None) -> None:
        """Record that ``owner`` now holds ``kind[key]``.

        A second acquire of a held resource is a double-allocation and
        raises immediately, naming the current holder.
        """
        hk = (kind, key)
        held = self._held.get(hk)
        if held is not None:
            raise SanitizerError(
                f"double-acquire of {kind}[{key!r}] at t={self.now():.1f} by "
                f"{describe_owner(owner)}; already held: {held.describe()}"
            )
        self._held[hk] = ResourceHold(kind, key, owner, self.now())
        self.acquires += 1

    def release(self, kind: str, key: Any) -> ResourceHold:
        """Record that ``kind[key]`` was released; returns the hold.

        Releasing a resource that is not held is a double-free (or a free
        of something never acquired) and raises immediately.
        """
        hold = self._held.pop((kind, key), None)
        if hold is None:
            raise SanitizerError(
                f"double-free: release of {kind}[{key!r}] at t={self.now():.1f} "
                "with no matching acquire"
            )
        self.releases += 1
        return hold

    def note(self, kind: str, key: Any, message: str) -> None:
        """Append an attribution breadcrumb to a held resource's history
        (no-op when the resource is not held)."""
        hold = self._held.get((kind, key))
        if hold is not None:
            hold.history.append(f"t={self.now():.1f}: {message}")
            self.notes += 1

    # -- queries -----------------------------------------------------------

    def outstanding(self, kind: Optional[str] = None) -> int:
        """Number of currently-held resources (optionally of one kind)."""
        if kind is None:
            return len(self._held)
        return sum(1 for (k, _key) in self._held if k == kind)

    def holds(self, kind: Optional[str] = None) -> List[ResourceHold]:
        """Currently-held resources, in acquisition order."""
        return [
            h for (k, _key), h in self._held.items() if kind is None or k == kind
        ]

    # -- violations --------------------------------------------------------

    def violation(self, message: str) -> None:
        """Raise an attributed sanitizer error at the current sim time."""
        raise SanitizerError(f"t={self.now():.1f}: {message}")

    def scheduled_after_drain(self, time: float, callback: Any, payload: Any) -> None:
        """Called by the engine when an event is scheduled after the queue
        drained — always a lifecycle bug (work created after completion)."""
        cb = getattr(callback, "__qualname__", repr(callback))
        self.violation(
            f"event scheduled after drain: {cb} at t={time!r} "
            f"(payload={describe_owner(payload)})"
        )

    def check_reservation(
        self, name: str, start: float, size: float, completion: float
    ) -> None:
        """Validate one port/bank reservation (crossbar or server).

        Flags non-finite or negative times, non-positive sizes, and
        reservations stretching implausibly far into the future (a camped,
        effectively never-released port).
        """
        # NaN fails every comparison, so each chained check catches it too.
        if not (0.0 <= start < RUNAWAY_RESERVATION_CYCLES * 1e3):
            self.violation(f"{name}: reservation with bad start time {start!r}")
        if not (size > 0):
            self.violation(f"{name}: reservation with non-positive size {size!r}")
        if not (start <= completion < start + RUNAWAY_RESERVATION_CYCLES):
            self.violation(
                f"{name}: runaway reservation (start={start!r}, "
                f"completion={completion!r}) — port held past the runaway bound"
            )

    # -- drain checking ----------------------------------------------------

    def check_drained(self) -> List[str]:
        """One finding per leaked (still-held) resource; empty when clean."""
        return ["leaked " + hold.describe() for hold in self._held.values()]

    def assert_drained(self) -> None:
        """Raise :class:`SanitizerError` listing every leaked resource."""
        findings = self.check_drained()
        if findings:
            raise SanitizerError(
                f"{len(findings)} resource(s) leaked at drain:\n  "
                + "\n  ".join(findings)
            )

    def summary(self) -> str:
        return (
            f"ResourceLedger(acquires={self.acquires}, releases={self.releases}, "
            f"outstanding={len(self._held)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.summary()


def merge_findings(*groups: Iterable[str]) -> List[str]:
    """Flatten several finding lists (ledger + live audit) into one."""
    merged: List[str] = []
    for group in groups:
        merged.extend(group)
    return merged
