"""Replication-sensitivity classification (Section II-A's rule).

The paper marks an application replication-sensitive when all three hold:

1. replication ratio > 25% (a meaningful share of misses could have been
   served by a sibling L1),
2. L1 miss rate > 50% (the cache is actually struggling),
3. speedup > 5% with a 16x larger L1 (the app responds to capacity).

:func:`classify` applies the rule to measured baseline + 16x runs; the
fig01 experiment uses it to *verify* the suite's intended classification
rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SimResult

REPLICATION_THRESHOLD = 0.25
MISS_RATE_THRESHOLD = 0.50
CAPACITY_SPEEDUP_THRESHOLD = 1.05


@dataclass(frozen=True)
class CharacterizationRow:
    """Figure 1's per-application characterization."""

    app: str
    replication_ratio: float
    l1_miss_rate: float
    speedup_16x: float
    replication_sensitive: bool

    def __str__(self) -> str:
        tag = "sensitive" if self.replication_sensitive else "insensitive"
        return (
            f"{self.app:14s} repl={self.replication_ratio:6.1%} "
            f"miss={self.l1_miss_rate:6.1%} 16x={self.speedup_16x:5.2f}  [{tag}]"
        )


def is_replication_sensitive(
    replication_ratio: float, l1_miss_rate: float, speedup_16x: float
) -> bool:
    """Apply the paper's three-part rule."""
    return (
        replication_ratio > REPLICATION_THRESHOLD
        and l1_miss_rate > MISS_RATE_THRESHOLD
        and speedup_16x > CAPACITY_SPEEDUP_THRESHOLD
    )


def classify(baseline: SimResult, big_cache: SimResult) -> CharacterizationRow:
    """Characterize one application from its baseline and 16x-L1 runs."""
    if baseline.app != big_cache.app:
        raise ValueError(f"mismatched apps: {baseline.app} vs {big_cache.app}")
    speedup = big_cache.ipc / baseline.ipc if baseline.ipc > 0 else 0.0
    return CharacterizationRow(
        app=baseline.app,
        replication_ratio=baseline.replication_ratio,
        l1_miss_rate=baseline.l1_miss_rate,
        speedup_16x=speedup,
        replication_sensitive=is_replication_sensitive(
            baseline.replication_ratio, baseline.l1_miss_rate, speedup
        ),
    )
