"""Standalone SVG chart rendering (no plotting dependencies).

Enough of a charting layer to regenerate the paper's figures as real
graphics: grouped bar charts (Figures 4, 6, 8, 11, 12, 14, 16, 18) and
multi-series line/S-curve charts (Figures 2, 15, 17).  Output is a
self-contained SVG string; :func:`write` saves it.

The look is deliberately plain: white background, light gridlines, one
fill per series from a small colour-blind-safe palette, value labels on
bars when space allows.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Sequence

PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377")

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 62, 16, 34, 72


def _esc(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / count
    return [lo + i * step for i in range(count + 1)]


class _Canvas:
    def __init__(self, width: int, height: int, title: str):
        self.width, self.height = width, height
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            'font-family="Helvetica, Arial, sans-serif">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
            f'<text x="{width / 2:.1f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>',
        ]

    def line(self, x1, y1, x2, y2, stroke="#cccccc", width=1.0):
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def rect(self, x, y, w, h, fill):
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}"/>'
        )

    def text(self, x, y, content, size=10, anchor="middle", rotate=None, fill="#222"):
        transform = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="{anchor}" '
            f'font-size="{size}" fill="{fill}"{transform}>{_esc(content)}</text>'
        )

    def polyline(self, points, stroke, width=1.6):
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def circle(self, x, y, r, fill):
        self.parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{fill}"/>')

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def _plot_frame(canvas: _Canvas, y_lo: float, y_hi: float, y_label: str):
    x0, x1 = _MARGIN_L, canvas.width - _MARGIN_R
    y0, y1 = canvas.height - _MARGIN_B, _MARGIN_T
    for tick in _ticks(y_lo, y_hi):
        frac = (tick - y_lo) / (y_hi - y_lo)
        y = y0 - frac * (y0 - y1)
        canvas.line(x0, y, x1, y)
        canvas.text(x0 - 6, y + 3, f"{tick:g}", size=9, anchor="end")
    canvas.line(x0, y0, x1, y0, stroke="#444444")
    canvas.line(x0, y0, x0, y1, stroke="#444444")
    canvas.text(16, (y0 + y1) / 2, y_label, size=10, rotate=-90)
    return x0, x1, y0, y1


def _legend(canvas: _Canvas, names: Sequence[str]):
    x = _MARGIN_L
    y = canvas.height - 14
    for i, name in enumerate(names):
        colour = PALETTE[i % len(PALETTE)]
        canvas.rect(x, y - 8, 10, 10, colour)
        canvas.text(x + 14, y, name, size=9, anchor="start")
        x += 14 + 7 * len(name) + 18


def bar_chart(
    categories: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: str = "",
    y_label: str = "",
    width: int = 900,
    height: int = 360,
    y_max: Optional[float] = None,
    baseline: Optional[float] = None,
) -> str:
    """Grouped bar chart: one group per category, one bar per series."""
    if not categories or not series:
        raise ValueError("nothing to plot")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(f"series {name!r} length != categories")
    hi = y_max if y_max is not None else max(max(v) for v in series.values()) * 1.1
    canvas = _Canvas(width, height, title)
    x0, x1, y0, y1 = _plot_frame(canvas, 0.0, hi, y_label)

    group_w = (x1 - x0) / len(categories)
    bar_w = group_w * 0.8 / len(series)
    for ci, cat in enumerate(categories):
        gx = x0 + ci * group_w + group_w * 0.1
        for si, (name, values) in enumerate(series.items()):
            v = min(values[ci], hi)
            h = (v / hi) * (y0 - y1)
            canvas.rect(gx + si * bar_w, y0 - h, bar_w * 0.92,
                        h, PALETTE[si % len(PALETTE)])
            if bar_w > 26:
                canvas.text(gx + si * bar_w + bar_w / 2, y0 - h - 3,
                            f"{values[ci]:.2f}", size=8)
        canvas.text(gx + group_w * 0.4, y0 + 12, cat, size=9,
                    rotate=-35 if len(cat) > 6 else None,
                    anchor="end" if len(cat) > 6 else "middle")
    if baseline is not None:
        frac = baseline / hi
        y = y0 - frac * (y0 - y1)
        canvas.line(x0, y, x1, y, stroke="#aa3377", width=1.2)
    _legend(canvas, list(series))
    return canvas.render()


def line_chart(
    series: Dict[str, Sequence[float]],
    title: str = "",
    y_label: str = "",
    x_label: str = "",
    width: int = 900,
    height: int = 360,
    markers: bool = True,
) -> str:
    """Multi-series line chart over a shared integer x-axis (S-curves)."""
    if not series:
        raise ValueError("nothing to plot")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must share a length")
    n = lengths.pop()
    if n < 2:
        raise ValueError("need at least two points")
    lo = min(min(v) for v in series.values())
    hi = max(max(v) for v in series.values())
    lo, hi = min(lo, 0.0) if lo < 0 else 0.0, hi * 1.05
    canvas = _Canvas(width, height, title)
    x0, x1, y0, y1 = _plot_frame(canvas, lo, hi, y_label)
    for si, (name, values) in enumerate(series.items()):
        colour = PALETTE[si % len(PALETTE)]
        points = []
        for i, v in enumerate(values):
            x = x0 + (x1 - x0) * i / (n - 1)
            y = y0 - (v - lo) / (hi - lo) * (y0 - y1)
            points.append((x, y))
        canvas.polyline(points, colour)
        if markers:
            for x, y in points:
                canvas.circle(x, y, 2.2, colour)
    canvas.text((x0 + x1) / 2, y0 + 26, x_label, size=10)
    _legend(canvas, list(series))
    return canvas.render()


def write(svg: str, path) -> pathlib.Path:
    """Write an SVG string to disk; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg)
    return path
