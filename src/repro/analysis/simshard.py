"""SimShard — distribution-safety analysis for the sweep layer.

ROADMAP items 1–2 (a sweep-as-a-service HTTP front-end, distributed sweep
sharding over a shared object store) rest on one property nothing else
verifies: every payload that crosses a process or host boundary — grid
points into :meth:`repro.experiments.base.Runner.run_many`'s process
pool, :class:`~repro.sim.results.SimResult`\\ s coming back, cache entries
through :mod:`repro.sim.store` — must serialize faithfully and execute
*worker-pure*.  A lambda in a grid builder, a worker that appends to a
module-level list, or a field added to :class:`SimConfig` without
``cache_key_manifest()`` coverage all work fine in-process and fail (or
worse, silently diverge) the moment the sweep is sharded across
processes or hosts.

SimShard is the fifth leg of the analysis hexapod (SimLint → SimRace →
SimFlow → SimPure → SimShard → SimHeat): a static AST pass over the
sweep/experiment/store layers plus a dynamic confirmer that actually
replays a grid under serial, fork-pool and spawn-pool execution and
requires bit-identical fingerprints.

Static rules
------------

* **SD501** — a non-picklable value (lambda, locally defined
  function/class, open file handle, live engine/system/lock/pool object)
  flows into a pool boundary: ``run_many`` points, ``pool.map`` /
  ``pool.submit`` payloads, or a worker function's return value.
* **SD502** — worker-reachable code reads or writes a *mutable* module
  global.  Each pool process gets its own copy (fork) or a fresh import
  (spawn), so writes never replicate back and reads may observe state
  the parent mutated after the fork point.  Globals that are provably
  safe (rebuilt identically by module import in every process) are
  declared in :data:`WORKER_SAFE_GLOBALS`, SimPure-style.
* **SD503** — fork-unsafety in worker-reachable code: lock/thread
  construction, module-level RNG, ``os.fork``, nested pool construction,
  or a worker callable that is not an importable top-level function
  (lambdas, nested defs and bound methods cannot be pickled by the
  ``spawn`` start method at all).
* **SD504** — malformed grid construction: out-of-domain field names in
  ``AppProfile``/``DesignSpec``/``SimConfig``/``GPUConfig`` constructor
  calls, unknown ``Runner.run`` keyword names or ``overrides`` keys in
  sweep-point kwargs dicts, and sweep-point tuples that are not
  ``(app, spec[, kwargs])``.  Backed at runtime by
  :func:`repro.sim.validation.validate_grid`, the pre-flight check
  ``run_many`` and the CLI call before submitting anything.
* **SD505** — result-merge order dependence: worker results combined by
  iterating ``as_completed(...)`` (completion order is a race) or an
  unordered set instead of submission order.
* **SD506** — pool-boundary payload drift: a field added to one of the
  payload dataclasses (``AppProfile``/``DesignSpec``/``SimConfig``/
  ``GPUConfig``/``SimResult``) without coverage in the declared domains
  (:func:`repro.sim.store.cache_key_manifest` /
  :func:`repro.sim.results.identity_manifest`), so pickled grid points,
  cache keys and ``to_jsonable`` payloads silently diverge.

Suppression uses ``# simshard: disable=SD501`` (or ``ALL``) on the
flagged line, mirroring the sibling analyzers.

Dynamic confirmer
-----------------

``repro shard --confirm`` (:func:`confirm_shard`) grades the static
story against reality: it pre-flights the default grid through
``validate_grid``, pickle-roundtrips every resolved grid point and
requires identical ``sim_cache_key``\\ s, pickle-roundtrips every
``SimResult``, then replays the grid three ways — serial, fork-pool and
spawn-pool — and requires bit-identical
:meth:`~repro.sim.results.SimResult.fingerprint`\\ s in submission order.
Findings are graded CONFIRMED / BENIGN / UNOBSERVED like SimRace: a
finding in a module the replay actually exercised is BENIGN when all
probes pass and CONFIRMED when one fails; findings elsewhere stay
UNOBSERVED.

See ``docs/analysis.md`` ("Distribution safety") for the full story.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.simlint import ModuleContext, Severity, iter_python_files
from repro.analysis.simrace import (
    MUTATING_METHODS,
    diff_fingerprints,
    single_assignment_defs,
)

__all__ = [
    "ShardFinding",
    "ShardProbe",
    "ShardReport",
    "WORKER_SAFE_GLOBALS",
    "WORKER_MEMO_GLOBALS",
    "DEFAULT_CONFIRM_GRID",
    "shard_source",
    "run_shard",
    "confirm_shard",
    "shard_rule_table",
]

_SUPPRESS_RE = re.compile(r"#\s*simshard:\s*disable=([A-Za-z0-9_,\s]+)")

#: (rule_id, severity, title) for every SimShard rule.
SHARD_RULES: List[Tuple[str, Severity, str]] = [
    ("SD501", Severity.ERROR,
     "non-picklable value reaches a pool boundary"),
    ("SD502", Severity.ERROR,
     "worker-side use of a mutable module global"),
    ("SD503", Severity.ERROR,
     "fork-unsafe construct in worker-reachable code"),
    ("SD504", Severity.ERROR,
     "malformed sweep-grid construction"),
    ("SD505", Severity.ERROR,
     "worker results merged in nondeterministic order"),
    ("SD506", Severity.ERROR,
     "pool-boundary payload field drift"),
]

#: Module globals worker-reachable code may read even though they are
#: mutable containers: each is either rebuilt *identically* by module
#: import in every pool process (fork and spawn alike), so reads
#: replicate and the sweep layer never writes them post-import, or is a
#: declared per-process memoization cache (see
#: :data:`WORKER_MEMO_GLOBALS`).  The value documents why.
WORKER_SAFE_GLOBALS: Dict[str, str] = {
    "EXPERIMENTS": "experiment registry, populated deterministically at "
                   "import time; identical in every worker process",
    "_POLICIES": "replacement-policy registry literal; never mutated "
                 "after import",
    "_NAMED_DESIGNS": "CLI design-label table literal; never mutated "
                      "after import",
    "_STREAM_CACHE": "per-worker workload LRU (repro.sim.fleet): a pure "
                     "memoization cache keyed by the profile cache key — "
                     "hits are bit-identical to recomputation and entries "
                     "never flow back to the parent",
}

#: The subset of :data:`WORKER_SAFE_GLOBALS` that worker-reachable code
#: may also *mutate*: per-process memoization caches whose entries are
#: pure functions of their key, so a hit is bit-identical to
#: recomputation and per-worker divergence of cache *contents* cannot
#: produce per-worker divergence of results.  Anything else that writes
#: a module global in a worker stays an SD502 error.
WORKER_MEMO_GLOBALS: FrozenSet[str] = frozenset({"_STREAM_CACHE"})

#: Path fragments marking the sweep/experiment/store layers the
#: per-module rules cover.  ``<string>`` sources (unit-test fixtures)
#: are always in scope, mirroring SimPure.
_SWEEP_LAYER_PARTS = (
    "repro/experiments", "repro/sim", "repro/cli",
    "repro/workloads", "repro/core",
)

#: Pool constructor terminal names (``ProcessPoolExecutor(...)``,
#: ``multiprocessing.Pool(...)``, ``ctx.Pool(...)``).
_POOL_CTORS = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool"})

#: Constructor terminal names whose instances cannot cross a pickle
#: boundary: live synchronisation primitives, threads, pools, sockets,
#: and the simulator's own live objects (an Engine holds a heap of bound
#:-method events; a GPUSystem holds an Engine).
_NONPICKLABLE_CTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
    "Thread", "ProcessPoolExecutor", "ThreadPoolExecutor", "Pool",
    "socket", "Engine", "GPUSystem",
})

#: Mutable-container constructors that make a module-level assignment a
#: mutable global (SD502).
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque", "bytearray",
})

#: The payload dataclasses whose field domains SD504/SD506 check.
_PAYLOAD_CLASS_NAMES = frozenset(
    {"AppProfile", "DesignSpec", "SimConfig", "GPUConfig"}
)

#: Keyword names :meth:`Runner.run` accepts (the valid domain of a sweep
#: point's kwargs dict).
_RUN_KWARGS = frozenset(
    {"scheduler", "l1_latency_override", "gpu", "scale", "overrides"}
)

#: Canonical defining file per payload class: the "declared field is
#: missing from the class" direction of SD506 only anchors there, so
#: partial scans and test fixtures never flood stale-definition noise.
_CANONICAL_FILES = {
    "AppProfile": "workloads/profile.py",
    "DesignSpec": "core/designs.py",
    "SimConfig": "sim/config.py",
    "GPUConfig": "sim/config.py",
    "SimResult": "sim/results.py",
}

#: RNG call prefixes that are fork-unsafe in worker-reachable code: the
#: module RNG state is copied at fork (every worker replays the same
#: stream) and freshly seeded under spawn (streams diverge from fork).
_RNG_PREFIXES = ("random.", "numpy.random.")


@dataclass(frozen=True)
class ShardFinding:
    """One distribution-safety violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule_id}: {self.message}"
        )


def shard_rule_table() -> List[Tuple[str, str, str]]:
    """(rule_id, severity, title) for every SimShard rule."""
    return [(rid, sev.value, title) for rid, sev, title in SHARD_RULES]


def in_sweep_layer(path: str) -> bool:
    """True when ``path`` belongs to the sweep/experiment/store layers
    (or is an inline ``<string>`` source, so unit-test snippets are
    checked by default)."""
    if path == "<string>":
        return True
    norm = path.replace("\\", "/")
    return any(part in norm for part in _SWEEP_LAYER_PARTS)


class _SourceContext:
    """Suppression-comment lookup for one file."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()

    def suppressed(self, line: int, rule_id: str) -> bool:
        if not (1 <= line <= len(self.lines)):
            return False
        m = _SUPPRESS_RE.search(self.lines[line - 1])
        if m is None:
            return False
        rules = {r.strip().upper() for r in m.group(1).split(",")}
        return "ALL" in rules or rule_id.upper() in rules


# --------------------------------------------------------------- module facts


def _terminal_name(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Last identifier of a call target with import aliases expanded:
    ``SimConfig`` for ``config.SimConfig(...)`` and for a bare
    ``SimConfig(...)`` imported under any alias."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        resolved = aliases.get(func.id, func.id)
        return resolved.rsplit(".", 1)[-1]
    return None


def _is_pool_ctor(call: ast.Call, mctx: ModuleContext) -> bool:
    name = _terminal_name(call.func, mctx.aliases)
    return name in _POOL_CTORS


def _pool_names(func: ast.AST, mctx: ModuleContext) -> Set[str]:
    """Local names bound to a pool object inside ``func``
    (``with ProcessPoolExecutor(...) as pool:`` / ``pool = Pool(...)`` /
    the fleet idiom ``pool = <fleet>.acquire(...)``)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.With):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and _is_pool_ctor(item.context_expr, mctx)
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    names.add(item.optional_vars.id)
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and (
                _is_pool_ctor(node.value, mctx)
                # WorkerFleet acquisition: the pool is handed out by the
                # persistent fleet instead of a constructor, but what
                # crosses its .map()/.submit() is still a pool boundary.
                or (
                    isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "acquire"
                )
            )
        ):
            names.add(node.targets[0].id)
    return names


def _module_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Top-level (importable) function definitions of the module."""
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _mutable_module_globals(tree: ast.Module) -> Dict[str, int]:
    """Module-level names bound to a mutable container -> definition line."""
    out: Dict[str, int] = {}
    for stmt in tree.body:
        target = None
        value = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target, value = stmt.target.id, stmt.value
        if target is None or value is None:
            continue
        if isinstance(value, (ast.List, ast.Dict, ast.Set,
                              ast.ListComp, ast.DictComp, ast.SetComp)):
            out[target] = stmt.lineno
        elif (
            isinstance(value, ast.Call)
            and _terminal_name(value.func, {}) in _MUTABLE_CTORS
        ):
            out[target] = stmt.lineno
    return out


@dataclass
class _Boundary:
    """One pool-boundary call site."""

    call: ast.Call
    kind: str                     # "run_many" | "map" | "submit"
    worker: Optional[ast.AST]     # the callable arg (map/submit only)
    payloads: List[ast.AST]       # expressions whose values cross the pool


def _boundaries(tree: ast.Module, mctx: ModuleContext) -> List[_Boundary]:
    """Every pool-boundary call in the module: ``run_many(...)`` plus
    ``<pool>.map(...)`` / ``<pool>.submit(...)`` on names bound to a pool
    constructor in the same function."""
    out: List[_Boundary] = []
    funcs: List[ast.AST] = [
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    pool_names_by_func = {f: _pool_names(f, mctx) for f in funcs}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "run_many":
            payloads = list(node.args[:1]) + [
                kw.value for kw in node.keywords if kw.arg == "points"
            ]
            out.append(_Boundary(node, "run_many", None, payloads))
        elif name in ("map", "submit") and isinstance(func, ast.Attribute):
            if not isinstance(func.value, ast.Name):
                continue
            enclosing = mctx.enclosing_function(node)
            pools = pool_names_by_func.get(enclosing, set()) if enclosing else set()
            if func.value.id not in pools:
                continue
            worker = node.args[0] if node.args else None
            payloads = list(node.args[1:]) + [
                kw.value for kw in node.keywords if kw.arg is not None
            ]
            out.append(_Boundary(node, name, worker, payloads))
    return out


def _worker_names(boundaries: List[_Boundary],
                  module_fns: Dict[str, ast.FunctionDef]) -> Set[str]:
    """Module-level functions handed to a pool as the worker callable."""
    names: Set[str] = set()
    for b in boundaries:
        if isinstance(b.worker, ast.Name) and b.worker.id in module_fns:
            names.add(b.worker.id)
    return names


def _manifest_workers(tree: ast.Module) -> Set[str]:
    """Workers declared in a module-level ``SIMSHARD_WORKERS`` manifest.

    Boundary detection is same-module by design, so a module that only
    *exports* worker callables (e.g. :mod:`repro.sim.fleet`, whose
    ``_fleet_run`` crosses a pool mapped by the experiments layer) would
    otherwise have no worker roots and escape SD502/SD503 analysis.
    Such modules declare their exported workers in a module-level tuple
    of string constants::

        SIMSHARD_WORKERS = ("_fleet_run",)

    and SimShard seeds its reachability roots from it.
    """
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "SIMSHARD_WORKERS"
            for t in targets
        ):
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.add(elt.value)
    return names


def _reachable_functions(
    roots: Set[str], module_fns: Dict[str, ast.FunctionDef]
) -> Dict[str, ast.FunctionDef]:
    """Transitive same-module call closure from the worker functions."""
    seen: Dict[str, ast.FunctionDef] = {}
    frontier = [r for r in roots if r in module_fns]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        fn = module_fns[name]
        seen[name] = fn
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in module_fns
                and node.func.id not in seen
            ):
                frontier.append(node.func.id)
    return seen


def _nested_def_names(func: Optional[ast.AST]) -> Set[str]:
    """Names of functions/classes defined *inside* ``func`` — values that
    pickle by qualified name and therefore cannot cross a pool boundary."""
    if func is None:
        return set()
    names: Set[str] = set()
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


@lru_cache(maxsize=1)
def _field_domains() -> Dict[str, frozenset]:
    """Payload class name -> valid constructor field names, from the live
    dataclasses.  Lazy import: the analysis package never imports the sim
    layer at module scope (same policy as SimPure's manifest checks)."""
    import dataclasses

    from repro.core.designs import DesignSpec
    from repro.sim.config import GPUConfig, SimConfig
    from repro.workloads.profile import AppProfile

    return {
        cls.__name__: frozenset(f.name for f in dataclasses.fields(cls))
        for cls in (AppProfile, DesignSpec, SimConfig, GPUConfig)
    }


# ------------------------------------------------------------ per-rule checks


def _nonpicklable_nodes(
    expr: ast.AST,
    mctx: ModuleContext,
    nested: Set[str],
    local_defs: Dict[str, ast.AST],
) -> List[Tuple[ast.AST, str]]:
    """(node, reason) for every provably non-picklable value in ``expr``,
    resolving names through the enclosing function's single-assignment
    bindings one hop deep."""
    out: List[Tuple[ast.AST, str]] = []

    def classify(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func, mctx.aliases)
            if name == "open":
                return "an open() file handle"
            if name in _NONPICKLABLE_CTORS:
                return f"a live {name} object"
        return None

    for node in ast.walk(expr):
        reason = classify(node)
        if reason is None and isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in nested:
                reason = f"locally defined '{node.id}'"
            else:
                rhs = local_defs.get(node.id)
                if rhs is not None:
                    inner = classify(rhs)
                    if inner is not None:
                        reason = f"'{node.id}' bound to {inner}"
        if reason is not None:
            out.append((node, reason))
    return out


def _check_pool_payloads(
    boundaries: List[_Boundary], mctx: ModuleContext, emit
) -> None:
    """SD501 over boundary payload expressions."""
    for b in boundaries:
        enclosing = mctx.enclosing_function(b.call)
        nested = _nested_def_names(enclosing)
        local_defs = single_assignment_defs(enclosing) if enclosing else {}
        for payload in b.payloads:
            for node, reason in _nonpicklable_nodes(payload, mctx, nested, local_defs):
                emit(
                    node, "SD501",
                    f"{reason} flows into the {b.kind} pool boundary: it "
                    "cannot be pickled to a worker process — pass frozen "
                    "(profile, spec, config) data instead",
                )


def _check_worker_returns(
    workers: Dict[str, ast.FunctionDef], mctx: ModuleContext, emit
) -> None:
    """SD501 over worker return values (the reverse boundary crossing)."""
    for fn in workers.values():
        nested = _nested_def_names(fn)
        local_defs = single_assignment_defs(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                for bad, reason in _nonpicklable_nodes(
                    node.value, mctx, nested, local_defs
                ):
                    emit(
                        bad, "SD501",
                        f"worker '{fn.name}' returns {reason}: the return "
                        "value must pickle back to the parent process",
                    )


def _check_worker_globals(
    reachable: Dict[str, ast.FunctionDef],
    mutable_globals: Dict[str, int],
    emit,
) -> None:
    """SD502: reads/writes of mutable module globals in worker-reachable
    code, diffed against :data:`WORKER_SAFE_GLOBALS`.

    Names in :data:`WORKER_MEMO_GLOBALS` are exempt from the mutation
    checks: they are declared per-process memoization caches whose hits
    are bit-identical to recomputation, so per-worker divergence of the
    *cache contents* cannot diverge results."""
    for name, fn in sorted(reachable.items()):
        consumed: Set[ast.AST] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                for g in node.names:
                    emit(
                        node, "SD502",
                        f"worker-reachable '{name}' declares global '{g}': "
                        "writes happen in the worker's copy and never "
                        "replicate back to the parent or other hosts",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutable_globals
                and node.func.value.id not in WORKER_MEMO_GLOBALS
                and node.func.attr in MUTATING_METHODS
            ):
                consumed.add(node.func.value)
                emit(
                    node, "SD502",
                    f"worker-reachable '{name}' mutates module global "
                    f"'{node.func.value.id}' via .{node.func.attr}(): each "
                    "pool process mutates its own copy — results diverge "
                    "silently across processes/hosts",
                )
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id in mutable_globals
                and node.value.id not in WORKER_MEMO_GLOBALS
                and isinstance(node.ctx, (ast.Store, ast.Del))
            ):
                consumed.add(node.value)
                emit(
                    node, "SD502",
                    f"worker-reachable '{name}' writes module global "
                    f"'{node.value.id}' by subscript: the write stays in "
                    "one worker process and never replicates",
                )
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable_globals
                and node.id not in WORKER_SAFE_GLOBALS
                and node not in consumed
            ):
                emit(
                    node, "SD502",
                    f"worker-reachable '{name}' reads mutable module global "
                    f"'{node.id}': a forked worker sees a snapshot and a "
                    "spawned worker a fresh import — declare it in "
                    "WORKER_SAFE_GLOBALS if it is rebuilt identically by "
                    "import, or pass it through the grid point",
                    severity=Severity.WARNING,
                )


def _check_fork_safety(
    reachable: Dict[str, ast.FunctionDef],
    boundaries: List[_Boundary],
    module_fns: Dict[str, ast.FunctionDef],
    mctx: ModuleContext,
    emit,
) -> None:
    """SD503: fork-unsafe constructs in worker-reachable code and worker
    callables that are not importable top-level functions."""
    for name, fn in sorted(reachable.items()):
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if _is_pool_ctor(node, mctx):
                emit(
                    node, "SD503",
                    f"worker-reachable '{name}' constructs a nested process "
                    "pool: pools inside pool workers deadlock under fork "
                    "and exhaust resources under spawn",
                )
                continue
            resolved = mctx.resolve_call(node.func) or ""
            terminal = _terminal_name(node.func, mctx.aliases)
            if resolved == "os.fork":
                emit(node, "SD503",
                     f"worker-reachable '{name}' calls os.fork()")
            elif resolved.startswith("threading.") and terminal in _NONPICKLABLE_CTORS:
                emit(
                    node, "SD503",
                    f"worker-reachable '{name}' constructs threading."
                    f"{terminal}: locks/threads captured at fork time are "
                    "silently broken in the child",
                )
            elif resolved.startswith(_RNG_PREFIXES):
                emit(
                    node, "SD503",
                    f"worker-reachable '{name}' uses module-level RNG "
                    f"({resolved}): fork clones the stream (all workers "
                    "replay it), spawn reseeds it (results diverge from "
                    "fork) — thread an explicit seeded generator through "
                    "the grid point",
                    severity=Severity.WARNING,
                )
    for b in boundaries:
        if b.worker is None:
            continue
        enclosing = mctx.enclosing_function(b.call)
        nested = _nested_def_names(enclosing)
        local_defs = single_assignment_defs(enclosing) if enclosing else {}
        worker = b.worker
        problem = None
        if isinstance(worker, ast.Lambda):
            problem = "a lambda"
        elif isinstance(worker, ast.Name):
            if worker.id in nested:
                problem = f"nested function '{worker.id}'"
            elif isinstance(local_defs.get(worker.id), ast.Lambda):
                problem = f"'{worker.id}' bound to a lambda"
        elif isinstance(worker, ast.Attribute):
            root = worker.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id == "self":
                problem = f"bound method 'self.{worker.attr}'"
        if problem is not None:
            emit(
                worker, "SD503",
                f"pool worker is {problem}: the spawn start method can only "
                "import top-level module functions — move it to module scope",
            )


def _dict_const_keys(node: ast.Dict) -> List[Tuple[ast.AST, str]]:
    return [
        (k, k.value)
        for k in node.keys
        if isinstance(k, ast.Constant) and isinstance(k.value, str)
    ]


def _check_overrides_dict(node: ast.Dict, emit) -> None:
    """Validate an ``overrides={...}`` literal against SimConfig's fields."""
    valid = _field_domains()["SimConfig"]
    for key_node, key in _dict_const_keys(node):
        if key not in valid:
            emit(
                key_node, "SD504",
                f"overrides key '{key}' is not a SimConfig field "
                f"(dataclasses.replace would raise mid-sweep); valid "
                "fields come from cache_key_manifest()",
            )


def _check_run_kwargs_dict(node: ast.Dict, emit) -> None:
    """Validate a sweep point's kwargs dict against Runner.run's domain."""
    for key_node, key in _dict_const_keys(node):
        if key not in _RUN_KWARGS:
            emit(
                key_node, "SD504",
                f"sweep-point kwarg '{key}' is not a Runner.run parameter "
                f"(valid: {', '.join(sorted(_RUN_KWARGS))})",
            )
    for key_node, value in zip(node.keys, node.values):
        if (
            isinstance(key_node, ast.Constant)
            and key_node.value == "overrides"
            and isinstance(value, ast.Dict)
        ):
            _check_overrides_dict(value, emit)


def _check_point_tuple(elt: ast.AST, emit) -> None:
    """Shape-check one literal sweep point: ``(app, spec[, kwargs])``."""
    if not isinstance(elt, ast.Tuple):
        return
    if len(elt.elts) not in (2, 3):
        emit(
            elt, "SD504",
            f"sweep point has {len(elt.elts)} element(s); expected "
            "(app, spec) or (app, spec, kwargs)",
        )
        return
    if len(elt.elts) == 3 and isinstance(elt.elts[2], ast.Dict):
        _check_run_kwargs_dict(elt.elts[2], emit)


def _check_grid_construction(
    tree: ast.Module,
    boundaries: List[_Boundary],
    class_names: Set[str],
    mctx: ModuleContext,
    emit,
) -> None:
    """SD504: out-of-domain constructor fields, bad run kwargs, malformed
    point tuples."""
    domains = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _terminal_name(node.func, mctx.aliases)
        if name in _PAYLOAD_CLASS_NAMES and name not in class_names:
            if domains is None:
                domains = _field_domains()
            for kw in node.keywords:
                if kw.arg is not None and kw.arg not in domains[name]:
                    emit(
                        kw.value, "SD504",
                        f"unknown {name} field '{kw.arg}' in constructor "
                        "call: the grid point would raise TypeError only "
                        "when the sweep reaches it",
                    )
        for kw in node.keywords:
            if kw.arg == "overrides" and isinstance(kw.value, ast.Dict):
                _check_overrides_dict(kw.value, emit)
    for b in boundaries:
        if b.kind != "run_many":
            continue
        for payload in b.payloads:
            if isinstance(payload, (ast.List, ast.Tuple)):
                for elt in payload.elts:
                    _check_point_tuple(elt, emit)
            elif isinstance(payload, (ast.ListComp, ast.GeneratorExp)):
                _check_point_tuple(payload.elt, emit)


def _check_merge_order(
    tree: ast.Module, boundaries: List[_Boundary], mctx: ModuleContext, emit
) -> None:
    """SD505: completion-order or set-order result merging."""
    boundary_fns = {
        mctx.enclosing_function(b.call) for b in boundaries
    } - {None}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        it = node.iter
        for sub in ast.walk(it):
            if isinstance(sub, ast.Call):
                resolved = mctx.resolve_call(sub.func) or ""
                name = _terminal_name(sub.func, mctx.aliases)
                if resolved.endswith("as_completed") or name == "as_completed":
                    emit(
                        node, "SD505",
                        "worker results iterated in completion order "
                        "(as_completed): completion order is a scheduling "
                        "race — index futures by submission order and "
                        "merge positionally",
                    )
                    break
        enclosing = mctx.enclosing_function(node)
        if enclosing not in boundary_fns:
            continue

        def _is_set_expr(expr: ast.AST) -> bool:
            return isinstance(expr, (ast.Set, ast.SetComp)) or (
                isinstance(expr, ast.Call)
                and _terminal_name(expr.func, mctx.aliases)
                in ("set", "frozenset")
            )

        is_set_iter = _is_set_expr(it)
        if not is_set_iter and isinstance(it, ast.Name) and enclosing is not None:
            rhs = single_assignment_defs(enclosing).get(it.id)
            is_set_iter = rhs is not None and _is_set_expr(rhs)
        if is_set_iter:
            emit(
                node, "SD505",
                "results merged by iterating an unordered set in a "
                "pool-boundary function: set order varies across "
                "processes (hash randomization) — keep submission order",
            )


def _ast_compare_false_fields(cls: ast.ClassDef) -> Set[str]:
    """Fields declared ``field(..., compare=False)`` in the class body."""
    out: Set[str] = set()
    for stmt in cls.body:
        if not (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)):
            continue
        value = stmt.value
        if isinstance(value, ast.Call) and any(
            kw.arg == "compare"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in value.keywords
        ):
            out.add(stmt.target.id)
    return out


def _is_classvar(annotation: ast.AST) -> bool:
    return any(
        (isinstance(n, ast.Name) and n.id == "ClassVar")
        or (isinstance(n, ast.Attribute) and n.attr == "ClassVar")
        for n in ast.walk(annotation)
    )


def _class_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Dataclass field name -> definition line (ClassVars excluded)."""
    fields: Dict[str, int] = {}
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not _is_classvar(stmt.annotation)
        ):
            fields[stmt.target.id] = stmt.lineno
    return fields


def _declared_payload_domains() -> Dict[str, Tuple[Set[str], str]]:
    """Payload class -> (declared field set, coverage description), from
    the live manifests (lazy import, SimPure-style)."""
    from repro.sim.results import identity_manifest
    from repro.sim.store import cache_key_manifest

    domains: Dict[str, Tuple[Set[str], str]] = {}
    for role, entry in cache_key_manifest().items():
        declared = set(entry["keyed"]) | set(entry["neutral"])  # type: ignore[arg-type]
        domains[str(entry["class"])] = (
            declared,
            f"cache_key_manifest()['{role}'] (keyed or "
            "FINGERPRINT_NEUTRAL_FIELDS)",
        )
    ident = identity_manifest()
    domains["SimResult"] = (
        set(ident["identity"]) | set(ident["non_identity"]),
        "identity_manifest() (compare=True identity or declared "
        "non-identity observability)",
    )
    return domains


def _check_payload_drift(cls: ast.ClassDef, path: str, emit) -> None:
    """SD506: diff one scanned payload-class definition against the
    runtime-declared domain."""
    domains = _declared_payload_domains()
    if cls.name not in domains:
        return
    declared, coverage = domains[cls.name]
    ast_fields = _class_fields(cls)
    for name, line in sorted(ast_fields.items(), key=lambda kv: kv[1]):
        if name not in declared:
            emit(
                _LinePin(line), "SD506",
                f"field '{cls.name}.{name}' is outside the declared "
                f"pool-boundary payload domain ({coverage}): pickled grid "
                "points, cache keys and serialized results will drift — "
                "key it, declare it neutral/non-identity, and extend the "
                "serialization coverage",
            )
    norm = path.replace("\\", "/")
    canonical = _CANONICAL_FILES.get(cls.name, "")
    if canonical and norm.endswith(canonical):
        for name in sorted(declared - set(ast_fields)):
            emit(
                _LinePin(cls.lineno), "SD506",
                f"declared payload field '{cls.name}.{name}' is missing "
                "from the class definition: the manifest is stale relative "
                "to the scanned tree",
                severity=Severity.WARNING,
            )
    if cls.name == "SimResult":
        from repro.sim.results import identity_manifest

        non_identity = set(identity_manifest()["non_identity"])
        for name in sorted(_ast_compare_false_fields(cls) & set(ast_fields)):
            if name not in non_identity:
                emit(
                    _LinePin(ast_fields[name]), "SD506",
                    f"'{cls.name}.{name}' is compare=False but not in "
                    "identity_manifest()['non_identity']: fingerprint/"
                    "to_jsonable exclusion coverage is missing",
                )


class _LinePin:
    """Minimal node stand-in carrying just a source position."""

    def __init__(self, line: int, col: int = 0):
        self.lineno = line
        self.col_offset = col


# ------------------------------------------------------------- orchestration


def _module_findings(
    tree: ast.Module,
    path: str,
    source: str,
    wanted: Optional[Set[str]],
) -> List[ShardFinding]:
    """All SimShard findings for one module."""
    if not in_sweep_layer(path):
        return []
    ctx = _SourceContext(path, source)
    mctx = ModuleContext(path, source, tree)
    class_names = {
        n.name for n in ast.walk(tree) if isinstance(n, ast.ClassDef)
    }
    findings: List[ShardFinding] = []
    severities = {rid: sev for rid, sev, _ in SHARD_RULES}

    def emit(node, rule_id: str, message: str,
             severity: Optional[Severity] = None) -> None:
        if wanted is not None and rule_id not in wanted:
            return
        line = getattr(node, "lineno", 1)
        if ctx.suppressed(line, rule_id):
            return
        findings.append(
            ShardFinding(
                path, line, getattr(node, "col_offset", 0),
                rule_id, severity or severities[rule_id], message,
            )
        )

    boundaries = _boundaries(tree, mctx)
    module_fns = _module_functions(tree)
    workers = _worker_names(boundaries, module_fns) | (
        _manifest_workers(tree) & set(module_fns)
    )
    reachable = _reachable_functions(workers, module_fns)
    mutable_globals = _mutable_module_globals(tree)

    if wanted is None or "SD501" in wanted:
        _check_pool_payloads(boundaries, mctx, emit)
        _check_worker_returns(
            {n: reachable[n] for n in workers if n in reachable}, mctx, emit
        )
    if wanted is None or "SD502" in wanted:
        _check_worker_globals(reachable, mutable_globals, emit)
    if wanted is None or "SD503" in wanted:
        _check_fork_safety(reachable, boundaries, module_fns, mctx, emit)
    if wanted is None or "SD504" in wanted:
        _check_grid_construction(tree, boundaries, class_names, mctx, emit)
    if wanted is None or "SD505" in wanted:
        _check_merge_order(tree, boundaries, mctx, emit)
    if wanted is None or "SD506" in wanted:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in (_PAYLOAD_CLASS_NAMES | {"SimResult"})
            ):
                _check_payload_drift(node, path, emit)
    return findings


def shard_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[ShardFinding]:
    """Run the SimShard rules over one source string."""
    wanted = {r.upper() for r in select} if select is not None else None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            ShardFinding(
                path, exc.lineno or 1, exc.offset or 0, "SD001",
                Severity.ERROR, f"syntax error: {exc.msg}",
            )
        ]
    findings = _module_findings(tree, path, source, wanted)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def run_shard(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> List[ShardFinding]:
    """Run the full SimShard static pass over every Python file under
    ``paths``."""
    findings: List[ShardFinding] = []
    for file in iter_python_files(paths):
        findings.extend(
            shard_source(file.read_text(encoding="utf-8"), str(file), select)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


# -------------------------------------------------------- dynamic confirmer


#: Default (app, design-label) grid for ``repro shard --confirm``: four
#: distinct points so the pool path engages even at the default
#: ``REPRO_PAR_MIN_POINTS`` threshold, spanning camping, replication-
#: heavy, cache-friendly and bandwidth-bound behaviour.
DEFAULT_CONFIRM_GRID: Tuple[Tuple[str, str], ...] = (
    ("P-2MM", "Pr40"),
    ("T-AlexNet", "Sh40+C10"),
    ("C-BLK", "Baseline"),
    ("C-NN", "Sh40"),
)

#: Module-path fragments the confirm replay actually exercises end to
#: end (grid resolution, pickling across the pool, key derivation,
#: result serialization).  Findings outside these stay UNOBSERVED.
_EXERCISED_PARTS = (
    "repro/experiments/base", "repro/sim/store", "repro/sim/results",
    "repro/sim/config", "repro/sim/validation", "repro/sim/fleet",
    "repro/workloads/profile", "repro/core/designs",
)


@dataclass(frozen=True)
class ShardProbe:
    """One dynamic distribution probe and its verdict."""

    kind: str      # pre-flight | pickle-roundtrip | result-roundtrip
                   # | context-identity | fleet-reuse
    target: str    # e.g. "grid point P-2MM/Pr40" or "spawn-pool vs serial"
    ok: bool
    detail: str = ""

    def format(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        tail = f" ({self.detail})" if self.detail and not self.ok else ""
        return f"  {self.kind:<18} {self.target:<44} {verdict}{tail}"


@dataclass
class ShardReport:
    """Outcome of a full dynamic distribution confirmation."""

    grid: List[Tuple[str, str]]
    scale: float
    contexts: List[str] = field(default_factory=list)
    probes: List[ShardProbe] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.probes)

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """kind -> (passed, total)."""
        out: Dict[str, Tuple[int, int]] = {}
        for p in self.probes:
            passed, total = out.get(p.kind, (0, 0))
            out[p.kind] = (passed + (1 if p.ok else 0), total + 1)
        return out

    def verdict_for(self, finding: ShardFinding) -> str:
        """CONFIRMED / BENIGN / UNOBSERVED for one static finding: the
        replay only speaks for modules it actually drove."""
        norm = finding.path.replace("\\", "/")
        if not any(part in norm for part in _EXERCISED_PARTS):
            return "UNOBSERVED"
        return "BENIGN" if self.ok else "CONFIRMED"

    def render(self, findings: Optional[Sequence[ShardFinding]] = None) -> str:
        lines = [
            f"SimShard confirm: grid="
            f"{', '.join(f'{a}/{d}' for a, d in self.grid)} "
            f"scale={self.scale:g} contexts=serial+"
            f"{'+'.join(self.contexts) if self.contexts else 'none'} "
            f"probes={len(self.probes)}"
        ]
        lines.extend(p.format() for p in self.probes if not p.ok)
        for kind, (passed, total) in sorted(self.counts().items()):
            lines.append(f"  {kind}: {passed}/{total} ok")
        if findings:
            for f in findings:
                lines.append(
                    f"  {f.rule_id} @ {f.path}:{f.line}: {self.verdict_for(f)}"
                )
        lines.append(
            "overall: "
            + (
                "SOUND (grid points pickle faithfully; serial, fork-pool "
                "and spawn-pool sweeps are bit-identical)"
                if self.ok
                else "UNSOUND — the sweep layer is not safe to distribute"
            )
        )
        return "\n".join(lines)


def confirm_shard(
    grid: Optional[Sequence[Tuple[str, str]]] = None,
    scale: float = 0.1,
    jobs: int = 2,
    config=None,
) -> ShardReport:
    """Dynamically confirm the sweep layer is safe to distribute.

    Four probe families:

    * **pre-flight** — the resolved grid passes
      :func:`repro.sim.validation.validate_grid` (types, keyability, no
      duplicate-after-normalization points).
    * **pickle-roundtrip** — every resolved (profile, spec, config) grid
      point survives ``pickle`` bit-faithfully: the restored triple is
      equal and derives the *same* ``sim_cache_key``.
    * **result-roundtrip** — every :class:`SimResult` crossing the pool
      boundary back survives ``pickle`` with a bit-identical
      ``fingerprint()``.
    * **context-identity** — the grid replayed under a fork-pool and a
      spawn-pool (whichever the platform offers) yields fingerprints
      bit-identical to the serial run, in submission order, with the
      same ``sims_run`` accounting — and the pool path must actually
      have been taken.
    * **fleet-reuse** — when SimFleet is enabled, a second sweep through
      a *fresh* Runner must acquire the already-warm pool (no new cold
      start) and still produce fingerprints bit-identical to serial: the
      persistent workers and their stream caches carry no state that
      leaks into results.
    """
    # Lazy imports: repro.sim.system imports repro.analysis at module
    # load, so importing the sim layer here (not at module top) avoids
    # the cycle (same policy as confirm_races/confirm_purity).
    import multiprocessing
    import pickle

    from repro.cli import parse_design
    from repro.experiments.base import Runner
    from repro.sim.config import SimConfig
    from repro.sim.store import sim_cache_key
    from repro.sim.validation import GridValidationError, validate_grid
    from repro.workloads.suite import get_app

    import dataclasses

    points = list(grid) if grid else list(DEFAULT_CONFIRM_GRID)
    cfg = (
        dataclasses.replace(config, scale=scale)
        if config is not None
        else SimConfig(scale=scale)
    )
    sweep = [(get_app(a), parse_design(d)) for a, d in points]
    contexts = [
        c for c in ("fork", "spawn")
        if c in multiprocessing.get_all_start_methods()
    ]
    report = ShardReport(grid=points, scale=scale, contexts=contexts)

    serial = Runner(cfg, jobs=1, cache=False)
    resolved = serial.resolve_points(sweep)

    try:
        validate_grid(resolved)
        report.probes.append(ShardProbe(
            "pre-flight", f"validate_grid[{len(resolved)} points]", True,
        ))
    except GridValidationError as exc:
        report.probes.append(ShardProbe(
            "pre-flight", f"validate_grid[{len(resolved)} points]", False,
            "; ".join(exc.problems[:3]),
        ))

    for (profile, spec, pcfg), (app_name, _) in zip(resolved, points):
        where = f"{app_name}/{spec.label}"
        point = (profile, spec, pcfg)
        back = pickle.loads(
            pickle.dumps(point, protocol=pickle.HIGHEST_PROTOCOL)
        )
        same_obj = back == point
        same_key = sim_cache_key(*back) == sim_cache_key(*point)
        report.probes.append(ShardProbe(
            "pickle-roundtrip", f"grid point {where}",
            same_obj and same_key,
            "" if same_obj and same_key else (
                "restored point not equal" if not same_obj
                else "sim_cache_key changed across pickle"
            ),
        ))

    base_results = serial.run_many(sweep)
    base_fps = [r.fingerprint() for r in base_results]

    for res, (app_name, design) in zip(base_results, points):
        back = pickle.loads(pickle.dumps(res, protocol=pickle.HIGHEST_PROTOCOL))
        diff = diff_fingerprints(res.fingerprint(), back.fingerprint())
        report.probes.append(ShardProbe(
            "result-roundtrip", f"SimResult @ {app_name}/{design}",
            not diff, "; ".join(diff),
        ))

    for ctx_name in contexts:
        par = Runner(cfg, jobs=max(2, jobs), cache=False)
        results = par.run_many(sweep, mp_context=ctx_name, par_min_points=2)
        diffs: List[str] = []
        for fp, res in zip(base_fps, results):
            diffs.extend(diff_fingerprints(fp, res.fingerprint()))
        pool_ran = any(k.startswith("parallel") for k in par.sweep_paths)
        problems = list(dict.fromkeys(diffs))[:4]
        if not pool_ran:
            problems.append("pool path was never taken")
        if par.sims_run != serial.sims_run:
            problems.append(
                f"sims_run {par.sims_run} != serial {serial.sims_run}"
            )
        report.probes.append(ShardProbe(
            "context-identity", f"{ctx_name}-pool vs serial",
            not problems, "; ".join(problems),
        ))

    from repro.sim.fleet import fleet_env_enabled

    if contexts and fleet_env_enabled():
        # The context-identity sweeps above already spun the fleet up;
        # a fresh Runner over the same grid must reuse it warm.
        ctx_name = contexts[0]
        warm = Runner(cfg, jobs=max(2, jobs), cache=False)
        results = warm.run_many(sweep, mp_context=ctx_name, par_min_points=2)
        problems = []
        for fp, res in zip(base_fps, results):
            problems.extend(diff_fingerprints(fp, res.fingerprint()))
        problems = list(dict.fromkeys(problems))[:4]
        if warm.fleet_stats.get("cold_starts", 0.0):
            problems.append("warm re-acquire cold-started a new pool")
        if not warm.fleet_stats.get("warm_acquires", 0.0):
            problems.append("fleet pool was not reused")
        report.probes.append(ShardProbe(
            "fleet-reuse", f"warm {ctx_name}-fleet vs serial",
            not problems, "; ".join(problems),
        ))
    return report
