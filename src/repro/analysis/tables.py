"""Plain-text rendering of experiment outputs.

Every experiment returns structured rows; the benchmark harness prints
them with :func:`format_table` so each table/figure of the paper has a
directly comparable textual form in the bench logs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, float, int]


def percent(x: float) -> str:
    """Format a fraction as a percentage."""
    return f"{x * 100:.1f}%"


def ratio(x: float) -> str:
    """Format a normalized ratio (e.g. speedups)."""
    return f"{x:.2f}x"


def _fmt(cell: Cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_dict_table(rows: List[Dict[str, Cell]], columns: Sequence[str],
                      title: str = "") -> str:
    """Render dict-shaped rows with an explicit column order."""
    body = [[row.get(col, "") for col in columns] for row in rows]
    return format_table(columns, body, title)
