"""Metrics, classification and tabulation helpers for the experiments."""

from repro.analysis.classify import CharacterizationRow, classify, is_replication_sensitive
from repro.analysis.metrics import amean, geomean, normalize, s_curve
from repro.analysis.tables import format_table, percent, ratio

__all__ = [
    "CharacterizationRow",
    "classify",
    "is_replication_sensitive",
    "amean",
    "geomean",
    "normalize",
    "s_curve",
    "format_table",
    "percent",
    "ratio",
]
