"""Metrics, classification and tabulation helpers for the experiments,
plus the correctness-analysis subsystem: SimLint (static AST lint pass,
:mod:`repro.analysis.simlint`), the SimSanitizer resource ledger
(:mod:`repro.analysis.sanitizer`), SimRace (static + dynamic same-cycle
ordering-hazard detection, :mod:`repro.analysis.simrace`), and SimFlow
(static resource-flow liveness analysis,
:mod:`repro.analysis.simflow`; its runtime complement, the stall
watchdog, lives in :mod:`repro.sim.watchdog` to keep this package free
of :mod:`repro.sim` imports), SimPure (cache-key & fingerprint
soundness analysis with a dynamic invariance confirmer,
:mod:`repro.analysis.simpure`), and SimShard (distribution-safety
analysis of the sweep layer with a serial/fork/spawn replay confirmer,
:mod:`repro.analysis.simshard`; its runtime complement,
``validate_grid``, lives in :mod:`repro.sim.validation`), and SimHeat
(twin-path drift & hot-path performance analysis with a differential
force-fast/force-slow confirmer, :mod:`repro.analysis.simheat`).  See
``docs/analysis.md``."""

from repro.analysis.classify import CharacterizationRow, classify, is_replication_sensitive
from repro.analysis.metrics import amean, geomean, normalize, s_curve
from repro.analysis.sanitizer import ResourceLedger, SanitizerError, sanitize_from_env
from repro.analysis.simflow import FlowFinding, flow_rule_table, flow_source, run_flow
from repro.analysis.simlint import LintFinding, LintRule, Severity, lint_source, run_lint
from repro.analysis.simrace import (
    ConfirmReport,
    RaceFinding,
    analyze_source,
    confirm_races,
    diff_fingerprints,
    race_rule_table,
    run_race,
)
from repro.analysis.simheat import (
    DEFAULT_CONFIRM_GRID,
    HeatFinding,
    HeatProbe,
    HeatReport,
    confirm_heat,
    heat_rule_table,
    heat_source,
    run_heat,
)
from repro.analysis.simpure import (
    DECLARED_ENV_INPUTS,
    PurityFinding,
    PurityProbe,
    PurityReport,
    confirm_purity,
    purity_rule_table,
    purity_source,
    run_purity,
)
from repro.analysis.simshard import (
    WORKER_SAFE_GLOBALS,
    ShardFinding,
    ShardProbe,
    ShardReport,
    confirm_shard,
    run_shard,
    shard_rule_table,
    shard_source,
)
from repro.analysis.tables import format_table, percent, ratio

__all__ = [
    "CharacterizationRow",
    "classify",
    "is_replication_sensitive",
    "amean",
    "geomean",
    "normalize",
    "s_curve",
    "format_table",
    "percent",
    "ratio",
    "ResourceLedger",
    "SanitizerError",
    "sanitize_from_env",
    "LintFinding",
    "LintRule",
    "Severity",
    "lint_source",
    "run_lint",
    "ConfirmReport",
    "RaceFinding",
    "analyze_source",
    "confirm_races",
    "diff_fingerprints",
    "race_rule_table",
    "run_race",
    "FlowFinding",
    "flow_rule_table",
    "flow_source",
    "run_flow",
    "DECLARED_ENV_INPUTS",
    "PurityFinding",
    "PurityProbe",
    "PurityReport",
    "confirm_purity",
    "purity_rule_table",
    "purity_source",
    "run_purity",
    "DEFAULT_CONFIRM_GRID",
    "HeatFinding",
    "HeatProbe",
    "HeatReport",
    "confirm_heat",
    "heat_rule_table",
    "heat_source",
    "run_heat",
    "WORKER_SAFE_GLOBALS",
    "ShardFinding",
    "ShardProbe",
    "ShardReport",
    "confirm_shard",
    "run_shard",
    "shard_rule_table",
    "shard_source",
]
