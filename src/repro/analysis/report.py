"""Comparison reports.

Turns a set of :class:`~repro.sim.results.SimResult` runs of the *same
application* into a single markdown document: normalized throughput, cache
behaviour, replication, traffic and latency — the quantities the paper
argues from — with a short mechanical interpretation of what moved.

Used by the CLI/examples; handy for sharing one-app studies.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.results import SimResult


def _fmt_pct(x: float) -> str:
    return f"{x * 100:.1f}%"


def _check_same_app(results: Sequence[SimResult]) -> str:
    apps = {r.app for r in results}
    if len(apps) != 1:
        raise ValueError(f"reports compare one app at a time, got {sorted(apps)}")
    return next(iter(apps))


def comparison_report(results: Sequence[SimResult], baseline_index: int = 0) -> str:
    """Render a markdown report comparing runs of one application.

    ``results[baseline_index]`` is the normalization reference.
    """
    results = list(results)
    if len(results) < 2:
        raise ValueError("need at least a baseline and one comparison run")
    app = _check_same_app(results)
    base = results[baseline_index]
    if base.ipc <= 0:
        raise ValueError("baseline run has zero IPC")

    lines: List[str] = [f"# {app}: design comparison", ""]
    header = (
        "| design | speedup | IPC | L1 miss | replication | replicas "
        "| load RTT | DRAM accesses | flit-hops |"
    )
    lines.append(header)
    lines.append("|" + "---|" * 9)
    for res in results:
        lines.append(
            "| {d} | {sp:.2f}x | {ipc:.2f} | {miss} | {repl} | {reps:.1f} "
            "| {rtt:.0f} | {dram} | {hops} |".format(
                d=res.design,
                sp=res.ipc / base.ipc,
                ipc=res.ipc,
                miss=_fmt_pct(res.l1_miss_rate),
                repl=_fmt_pct(res.replication_ratio),
                reps=res.mean_replicas,
                rtt=res.load_rtt_mean,
                dram=res.dram_accesses,
                hops=res.total_flit_hops,
            )
        )
    lines.append("")
    lines.extend(_interpretation(base, results, baseline_index))
    return "\n".join(lines) + "\n"


def _interpretation(base: SimResult, results: Sequence[SimResult],
                    baseline_index: int) -> List[str]:
    out = ["## What moved", ""]
    for i, res in enumerate(results):
        if i == baseline_index:
            continue
        sp = res.ipc / base.ipc
        bullet = [f"- **{res.design}**: {sp:.2f}x."]
        if base.l1_miss_rate > 0:
            dm = 1.0 - res.l1_miss_rate / base.l1_miss_rate
            if dm > 0.05:
                bullet.append(
                    f"L1 miss rate fell {_fmt_pct(dm)} "
                    f"({_fmt_pct(base.l1_miss_rate)} → {_fmt_pct(res.l1_miss_rate)})."
                )
            elif dm < -0.05:
                bullet.append(f"L1 miss rate rose {_fmt_pct(-dm)}.")
        if base.mean_replicas > 0 and res.mean_replicas < base.mean_replicas - 0.5:
            bullet.append(
                f"Replication shrank from {base.mean_replicas:.1f} to "
                f"{res.mean_replicas:.1f} copies/line."
            )
        if base.load_rtt_mean > 0:
            drtt = 1.0 - res.load_rtt_mean / base.load_rtt_mean
            if abs(drtt) > 0.05:
                verb = "fell" if drtt > 0 else "rose"
                bullet.append(f"Mean load round trip {verb} {_fmt_pct(abs(drtt))}.")
        out.append(" ".join(bullet))
    out.append("")
    return out
