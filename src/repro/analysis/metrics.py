"""Aggregate metric helpers used by every experiment.

The paper reports "average improvements"; GPU papers conventionally use
the geometric mean for speedups (ratios) and arithmetic mean for rates.
Both are provided; experiments state which they use per artifact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty input or non-positive entries."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def amean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    vals = list(values)
    if not vals:
        raise ValueError("amean of empty sequence")
    return sum(vals) / len(vals)


def normalize(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every entry by the baseline entry (kept in the output, = 1.0)."""
    base = values[baseline_key]
    if base == 0:
        raise ZeroDivisionError(f"baseline {baseline_key!r} is zero")
    return {k: v / base for k, v in values.items()}


def s_curve(values: Dict[str, float]) -> List[Tuple[str, float]]:
    """Sort (name, value) ascending by value — the paper's S-curve layout
    (Figures 2, 15, 17)."""
    return sorted(values.items(), key=lambda kv: (kv[1], kv[0]))


def reduction(new: float, old: float) -> float:
    """Fractional reduction of ``new`` versus ``old`` (positive = smaller)."""
    if old == 0:
        return 0.0
    return 1.0 - new / old


def weighted_amean(pairs: Sequence[Tuple[float, float]]) -> float:
    """Arithmetic mean of ``(value, weight)`` pairs."""
    if not pairs:
        raise ValueError("weighted mean of empty sequence")
    total_w = sum(w for _v, w in pairs)
    if total_w <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in pairs) / total_w
