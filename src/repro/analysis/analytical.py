"""Closed-form throughput bounds (bottleneck analysis).

The paper's performance arguments are bottleneck arguments: the baseline
is DRAM- or L2-bound because private L1s filter little; shared DC-L1s move
the bottleneck to the (smaller) peak L1 bandwidth; +Boost raises that
ceiling back.  This module computes those ceilings in closed form from a
design point plus *measured* cache behaviour, giving an analytical
cross-check of the simulator: simulated throughput must stay at or below
(and, when saturated, near) the tightest ceiling.

For a design with miss rate ``m`` (L1 level) and L2 miss rate ``m2``,
per-core demand bounded by the issue port, the sustainable access rate
(accesses/cycle, whole GPU) is::

    min( num_cores / (1 + gap)              -- issue front-ends
       , L1 ports                            -- bank/reply-link ceiling
       , L2 service / m                      -- L2 bank occupancy
       , DRAM service / (m * m2)             -- pin bandwidth
       , outstanding / round-trip            -- latency x parallelism
       )

Every term is derived from `GPUConfig`/`DesignSpec` the same way Table I
derives peak L1 bandwidth.  :func:`validate_against` packages the
simulator-vs-bound comparison used by the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.designs import DesignKind, DesignSpec
from repro.core.peak_bw import peak_l1_bandwidth
from repro.sim.config import GPUConfig
from repro.sim.results import SimResult
from repro.workloads.profile import AppProfile


@dataclass(frozen=True)
class ThroughputBounds:
    """Access-rate ceilings (accesses per core-cycle, whole GPU)."""

    issue: float
    l1_ports: float
    l2_service: float
    dram: float
    latency: float

    @property
    def binding(self) -> str:
        """Name of the tightest ceiling."""
        items = self.as_dict()
        return min(items, key=items.get)

    @property
    def tightest(self) -> float:
        return min(self.as_dict().values())

    def as_dict(self) -> Dict[str, float]:
        return {
            "issue": self.issue,
            "l1_ports": self.l1_ports,
            "l2_service": self.l2_service,
            "dram": self.dram,
            "latency": self.latency,
        }


def throughput_bounds(
    spec: DesignSpec,
    profile: AppProfile,
    gpu: Optional[GPUConfig] = None,
    l1_miss_rate: float = 1.0,
    l2_miss_rate: float = 1.0,
    round_trip: Optional[float] = None,
) -> ThroughputBounds:
    """Compute the five ceilings for a design/workload pair.

    ``l1_miss_rate``/``l2_miss_rate`` may come from a simulation or an
    estimate; the defaults (1.0) give conservative, workload-independent
    bounds.
    """
    gpu = gpu or GPUConfig()
    if not 0.0 <= l1_miss_rate <= 1.0 or not 0.0 <= l2_miss_rate <= 1.0:
        raise ValueError("miss rates must be fractions")

    # Issue front-ends: one memory instruction per 1+gap cycles per core.
    issue = gpu.num_cores / (1.0 + profile.compute_gap)

    # L1-level ports: baseline banks serve one access/cycle each; DC-L1
    # replies serialize on the NoC#1 reply links (Table I).
    if spec.kind in (DesignKind.BASELINE, DesignKind.CDXBAR):
        l1_ports = float(gpu.num_cores)
    else:
        bw = peak_l1_bandwidth(spec, gpu.num_cores, gpu.line_bytes, gpu.flit_bytes)
        per_access_bytes = min(profile.request_bytes, gpu.line_bytes)
        # A reply occupies its link for ceil(bytes/flit) flit times.
        flits = math.ceil(per_access_bytes / gpu.flit_bytes)
        l1_ports = bw.bytes_per_cycle / (flits * gpu.flit_bytes)

    # L2 banks: misses only, each occupying a bank for l2_service cycles.
    m = max(l1_miss_rate, 1e-9)
    l2_service = gpu.num_l2_slices / gpu.l2_service / m

    # DRAM: line fills for L1-level misses that also miss in L2.
    m2 = max(l1_miss_rate * l2_miss_rate, 1e-9)
    dram = gpu.num_channels * gpu.dram_bank_groups / gpu.dram_service / m2

    # Latency x parallelism (Little's law), if a round trip is known.
    if round_trip and round_trip > 0:
        window = profile.wavefront_slots * profile.mlp * gpu.num_cores
        latency = window / round_trip
    else:
        latency = float("inf")

    return ThroughputBounds(issue, l1_ports, l2_service, dram, latency)


def measured_rate(result: SimResult) -> float:
    """Observed L1-level access rate (accesses/cycle) of a run."""
    if result.cycles <= 0:
        return 0.0
    return (result.loads + result.stores) / result.cycles


def validate_against(
    result: SimResult,
    spec: DesignSpec,
    profile: AppProfile,
    gpu: Optional[GPUConfig] = None,
    tolerance: float = 1.10,
) -> Dict[str, float]:
    """Compare a simulation against its analytical ceiling.

    Returns a dict with the measured rate, the tightest bound, their ratio
    and the binding resource.  The ratio must stay below ``tolerance``
    (reservation models can transiently exceed a fluid bound by small
    amounts at low utilization, hence the default 10% headroom).
    """
    bounds = throughput_bounds(
        spec,
        profile,
        gpu=gpu,
        l1_miss_rate=result.l1_miss_rate,
        l2_miss_rate=result.l2_miss_rate,
        round_trip=result.load_rtt_mean,
    )
    rate = measured_rate(result)
    tightest = bounds.tightest
    return {
        "measured_rate": rate,
        "bound": tightest,
        "ratio": rate / tightest if tightest > 0 else float("inf"),
        "binding": bounds.binding,
        "within_tolerance": float(rate <= tightest * tolerance),
    }
