"""SimLint — an AST lint pass enforcing simulator-specific correctness rules.

The engine promises bit-reproducible simulations; the queueing results of
the paper depend on it.  Generic linters cannot enforce the rules that
make it true, so SimLint walks the package's sources (``repro lint``, or
:func:`run_lint` programmatically) and checks:

========  ========  =====================================================
Rule ID   Severity  What it forbids
========  ========  =====================================================
SL101     error     Nondeterminism sources in sim code: ``time.time``,
                    ``datetime.now``, module-level ``random`` calls,
                    ``os.urandom``, ``uuid.uuid4``, ...
SL102     warning   Iterating an unordered ``set``/``frozenset`` (set
                    iteration order feeding event scheduling makes runs
                    machine-dependent)
SL103     error     Float ``==``/``!=`` comparisons on simulated
                    timestamps (``now``, ``t``, ``*_time``, ...)
SL104     error     ``object.__setattr__`` outside ``__init__`` /
                    ``__post_init__`` (mutating frozen-dataclass configs)
SL105     error     ``.schedule(...)`` call sites that can pass a past /
                    NaN / infinite time
SL106     error     Public-API drift: names listed in ``__all__`` that the
                    module never defines
========  ========  =====================================================

Suppress a finding by appending ``# simlint: disable=SL101`` (comma list,
or ``disable=all``) to the flagged line.  Rules are small pluggable
classes registered in :data:`RULES`; adding one means subclassing
:class:`LintRule` and decorating it with :func:`register`.

The runtime counterpart (leak/double-free checking while the simulator
runs) is :mod:`repro.analysis.sanitizer`; both are documented in
``docs/analysis.md``.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule_id}: {self.message}"
        )


class ModuleContext:
    """Per-module facts shared by every rule: source lines for suppression
    comments, import aliases for call resolution, parent links for scope
    checks."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        # local name -> dotted module/object path it is bound to.
        self.aliases: Dict[str, str] = {}
        # child node -> parent node, for enclosing-scope queries.
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name != "*":
                        self.aliases[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Dotted path of a call target, with import aliases expanded
        (``dt.now`` after ``from datetime import datetime as dt`` resolves
        to ``datetime.datetime.now``).  None when the base is not an
        imported name (e.g. a local variable or attribute chain on self).
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def suppressed(self, line: int, rule_id: str) -> bool:
        """True when the physical source line carries a matching
        ``# simlint: disable=...`` comment."""
        if not (1 <= line <= len(self.lines)):
            return False
        m = _SUPPRESS_RE.search(self.lines[line - 1])
        if m is None:
            return False
        rules = {r.strip().upper() for r in m.group(1).split(",")}
        return "ALL" in rules or rule_id.upper() in rules


_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


class LintRule:
    """Base class for one pluggable checker.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields ``(node, message)`` pairs for each violation in the module.
    """

    rule_id: str = "SL000"
    severity: Severity = Severity.ERROR
    title: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        raise NotImplementedError


RULES: List[Type[LintRule]] = []


def register(cls: Type[LintRule]) -> Type[LintRule]:
    RULES.append(cls)
    return cls


# --------------------------------------------------------------------- rules


@register
class NondeterministicCallRule(LintRule):
    """SL101: calls whose result differs between runs of the same seed."""

    rule_id = "SL101"
    severity = Severity.ERROR
    title = "nondeterministic call in simulator code"

    BANNED = {
        "time.time": "wall-clock time",
        "time.time_ns": "wall-clock time",
        "time.monotonic": "wall-clock time",
        "time.monotonic_ns": "wall-clock time",
        "time.perf_counter": "wall-clock time",
        "time.perf_counter_ns": "wall-clock time",
        "datetime.datetime.now": "wall-clock time",
        "datetime.datetime.utcnow": "wall-clock time",
        "datetime.datetime.today": "wall-clock time",
        "datetime.date.today": "wall-clock time",
        "os.urandom": "OS entropy",
        "uuid.uuid1": "host/time-derived UUID",
        "uuid.uuid4": "OS entropy",
        "secrets.token_bytes": "OS entropy",
        "secrets.token_hex": "OS entropy",
        "random.random": "module-level RNG (unseeded global state)",
        "random.randint": "module-level RNG (unseeded global state)",
        "random.randrange": "module-level RNG (unseeded global state)",
        "random.uniform": "module-level RNG (unseeded global state)",
        "random.choice": "module-level RNG (unseeded global state)",
        "random.choices": "module-level RNG (unseeded global state)",
        "random.sample": "module-level RNG (unseeded global state)",
        "random.shuffle": "module-level RNG (unseeded global state)",
        "random.seed": "module-level RNG (global state shared across runs)",
        "random.getrandbits": "module-level RNG (unseeded global state)",
        "numpy.random.rand": "module-level RNG (unseeded global state)",
        "numpy.random.randn": "module-level RNG (unseeded global state)",
        "numpy.random.randint": "module-level RNG (unseeded global state)",
        "numpy.random.shuffle": "module-level RNG (unseeded global state)",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target is None:
                continue
            why = self.BANNED.get(target)
            if why is not None:
                yield node, (
                    f"nondeterministic call {target}() ({why}) breaks "
                    "bit-reproducibility; use engine time or a seeded RNG "
                    "(np.random.default_rng(seed))"
                )


@register
class SetIterationRule(LintRule):
    """SL102: iteration over an unordered set.

    Set iteration order depends on insertion history and hash seeds; if it
    feeds event scheduling the simulation stops being reproducible.  Only
    *obvious* sets are flagged (literals, comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls) — membership tests are fine.
    """

    rule_id = "SL102"
    severity = Severity.WARNING
    title = "iteration over an unordered set"

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(self, ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield it, (
                        "iterating an unordered set: order is hash/history "
                        "dependent; wrap in sorted(...) before it can feed "
                        "event scheduling"
                    )


@register
class FloatTimeComparisonRule(LintRule):
    """SL103: exact float equality on simulated timestamps.

    Timestamps are accumulated floats; ``==``/``!=`` on them encodes an
    exact-arithmetic assumption that breaks the moment a latency becomes
    non-integral.  Compare with ``<``/``<=`` or an explicit tolerance.
    """

    rule_id = "SL103"
    severity = Severity.ERROR
    title = "float equality comparison on a simulated timestamp"

    TIME_NAME_RE = re.compile(
        r"^(now|t|t\d+|time|deadline|free_at|next_free|arrival|departure)$|_time$|_at$"
    )

    @classmethod
    def _is_time_name(cls, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return bool(cls.TIME_NAME_RE.search(node.id))
        if isinstance(node, ast.Attribute):
            return bool(cls.TIME_NAME_RE.search(node.attr))
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_time_name(left) or self._is_time_name(right):
                    yield node, (
                        "==/!= on a simulated timestamp assumes exact float "
                        "arithmetic; use ordering comparisons or an explicit "
                        "tolerance"
                    )


@register
class FrozenMutationRule(LintRule):
    """SL104: ``object.__setattr__`` outside dataclass construction.

    Frozen configs (GPUConfig, SimConfig, DesignSpec) are hashable and
    shared across experiments; the only sanctioned escape hatch is inside
    ``__init__``/``__post_init__`` of the dataclass itself.
    """

    rule_id = "SL104"
    severity = Severity.ERROR
    title = "frozen-dataclass mutation via object.__setattr__"

    ALLOWED_SCOPES = ("__init__", "__post_init__", "__setattr__", "__new__")

    def check(self, ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__setattr__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "object"
            ):
                continue
            fn = ctx.enclosing_function(node)
            name = getattr(fn, "name", None)
            if name not in self.ALLOWED_SCOPES:
                yield node, (
                    "object.__setattr__ outside __init__/__post_init__ mutates "
                    "a frozen config after construction; use dataclasses."
                    "replace() to derive a new one"
                )


@register
class UnsafeScheduleTimeRule(LintRule):
    """SL105: ``.schedule(time, ...)`` arguments that are provably past,
    NaN or infinite — each would corrupt the event heap's ordering
    invariant (and NaN silently passes a bare ``time < now`` guard)."""

    rule_id = "SL105"
    severity = Severity.ERROR
    title = "schedule() call with a past/NaN/inf time"

    @staticmethod
    def _is_negative_constant(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return isinstance(node.operand, ast.Constant) and isinstance(
                node.operand.value, (int, float)
            )
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and node.value < 0
        )

    @staticmethod
    def _is_nonfinite_float_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.strip().lower().lstrip("+-") in ("nan", "inf", "infinity")
        )

    @staticmethod
    def _is_now_minus_expr(node: ast.AST) -> bool:
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub)):
            return False
        left = node.left
        name = left.attr if isinstance(left, ast.Attribute) else (
            left.id if isinstance(left, ast.Name) else None
        )
        return name == "now"

    def check(self, ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("schedule", "schedule_in")
            ):
                continue
            time_arg: Optional[ast.AST] = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg in ("time", "delay"):
                    time_arg = kw.value
            if time_arg is None:
                continue
            if self._is_nonfinite_float_call(time_arg):
                yield node, "scheduling at a NaN/inf time corrupts heap ordering"
            elif self._is_negative_constant(time_arg):
                if node.func.attr == "schedule_in":
                    yield node, "negative delay schedules into the past"
                else:
                    yield node, "negative time schedules into the past"
            elif node.func.attr == "schedule" and self._is_now_minus_expr(time_arg):
                yield node, (
                    "`now - x` as a schedule time is in the past for any "
                    "positive x; clamp with max(now, ...) first"
                )


@register
class PublicApiDriftRule(LintRule):
    """SL106: ``__all__`` names the module never binds (stale exports)."""

    rule_id = "SL106"
    severity = Severity.ERROR
    title = "__all__ lists an undefined name"

    @staticmethod
    def _module_bindings(tree: ast.Module) -> Optional[Set[str]]:
        """Names bound at module top level; None when a star-import makes
        the binding set unknowable."""
        bound: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        return None
                    bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            bound.add(leaf.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, (ast.If, ast.Try)):
                # Conditional definitions (TYPE_CHECKING blocks, fallbacks).
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                        bound.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            for leaf in ast.walk(target):
                                if isinstance(leaf, ast.Name):
                                    bound.add(leaf.id)
                    elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                bound.add(alias.asname or alias.name.split(".")[0])
        return bound

    def check(self, ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ctx.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
                )
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                continue
            bound = self._module_bindings(ctx.tree)
            if bound is None:
                continue
            for elt in node.value.elts:
                if (
                    isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                    and elt.value not in bound
                ):
                    yield elt, (
                        f"__all__ exports {elt.value!r} but the module never "
                        "defines it (public-API drift)"
                    )


# ------------------------------------------------------------------ running


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[LintFinding]:
    """Lint one source string; returns findings sorted by location."""
    wanted = {r.upper() for r in select} if select is not None else None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                path, exc.lineno or 1, exc.offset or 0, "SL001", Severity.ERROR,
                f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path, source, tree)
    findings: List[LintFinding] = []
    for rule_cls in RULES:
        if wanted is not None and rule_cls.rule_id not in wanted:
            continue
        rule = rule_cls()
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if ctx.suppressed(line, rule.rule_id):
                continue
            findings.append(
                LintFinding(path, line, col, rule.rule_id, rule.severity, message)
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield .py files under each path, depth-first and sorted (so output
    and exit codes are deterministic across filesystems)."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def run_lint(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> List[LintFinding]:
    """Lint every Python file under ``paths``; returns all findings."""
    findings: List[LintFinding] = []
    for file in iter_python_files(paths):
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file), select=select)
        )
    return findings


def rule_table() -> List[Tuple[str, str, str]]:
    """(rule_id, severity, title) for every registered rule."""
    return [(r.rule_id, r.severity.value, r.title) for r in RULES]
