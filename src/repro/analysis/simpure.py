"""SimPure — cache-key & fingerprint soundness analysis.

The persistent result store (:mod:`repro.sim.store`) serves cached
:class:`~repro.sim.results.SimResult` objects keyed by
:func:`~repro.sim.store.sim_cache_key` — a hash over the declared input
domain: the fields of :class:`~repro.workloads.profile.AppProfile`,
:class:`~repro.core.designs.DesignSpec`,
:class:`~repro.sim.config.SimConfig` and
:class:`~repro.sim.config.GPUConfig`.  That cache is only sound if two
invariants hold:

* **completeness** — everything the simulator core reads that can change
  a result bit is *in* the key.  A sim-core read of an undeclared input
  (an environment variable, a mutable module global, a runtime class
  attribute) silently serves stale results once the input changes.
* **minimality** — everything in the key is actually read.  A keyed
  field the simulator never looks at fragments the shared cache: the
  same simulation is stored and recomputed many times under different
  keys (pure waste at sweep scale).

SimPure machine-checks both directions, completing the analysis tripod
(SimLint / SimRace / SimFlow) into a quadripod.  Like its siblings it is
a purely static AST pass paired with a dynamic confirmer.

Static rules (``# simpure: disable=SPxxx`` suppresses on the line):

=======  =======  ==========================================================
SP401    error    sim-core read of an input that bypasses the cache key
                  (env var outside a declared ``*_from_env`` /
                  ``*_env_enabled`` resolver, ``global`` declaration,
                  runtime class-attribute assignment)
SP402    warning  keyed field never read anywhere in the scanned tree
                  (over-keying: avoidable distributed-cache misses)
SP403    error    non-identity field (``compare=False``) flowing into
                  ``fingerprint``/``to_jsonable``/``__eq__``/``__hash__``
SP404    error    sim-core mutation of a profile/spec/config/gpu input
                  object (cache poisoning, run-order dependence)
SP405    error    keyed/serialized field lacking JSON roundtrip coverage
                  (one-sided ``to_jsonable``/``from_jsonable``, asymmetric
                  per-field transforms, un-canonicalizable annotations)
=======  =======  ==========================================================

The *sim core* is the set of modules that execute between a config triple
and a :class:`SimResult`: ``repro/sim``, ``repro/cache``, ``repro/noc``,
``repro/mem``, ``repro/gpu``, ``repro/core`` and ``repro/workloads``.
The CLI, experiment drivers and the analysis tools themselves construct
configs and *may* read the environment; the sim core may not (SP401) and
may not mutate its inputs (SP404).  SP402 counts reads over the whole
scanned tree (a field read only by the power model is still a read) and
only runs when the scan includes ``sim/system.py`` — on a partial scan
"never read" would be vacuously true.

Like every static pass this one under-approximates: reads through
``getattr`` with a computed name, ``exec`` or C extensions are invisible.
The dynamic confirmer (:func:`confirm_purity`, ``repro purity
--confirm``) covers the gap from the other side, mirroring SimRace's
shadow-shuffle pattern: it *mutates* each declared-neutral / excluded
input and asserts bit-exact fingerprint invariance, and mutates every
keyed field asserting the cache key changes.

See ``docs/analysis.md`` for the full story.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.simlint import ModuleContext, Severity, iter_python_files
from repro.analysis.simrace import (
    MUTATING_METHODS,
    diff_fingerprints,
    method_aliases,
)

__all__ = [
    "PurityFinding",
    "PurityProbe",
    "PurityReport",
    "purity_source",
    "run_purity",
    "confirm_purity",
    "mutated_value",
    "purity_rule_table",
    "DECLARED_ENV_INPUTS",
]

_SUPPRESS_RE = re.compile(r"#\s*simpure:\s*disable=([A-Za-z0-9_,\s]+)")

#: (rule_id, severity, title) for every SimPure rule.
PURITY_RULES: List[Tuple[str, Severity, str]] = [
    ("SP401", Severity.ERROR,
     "sim-core read of an input that bypasses the cache key"),
    ("SP402", Severity.WARNING,
     "keyed field is never read by the simulator (over-keying)"),
    ("SP403", Severity.ERROR,
     "non-identity field flows into result identity"),
    ("SP404", Severity.ERROR,
     "simulation mutates a keyed input object"),
    ("SP405", Severity.ERROR,
     "keyed/serialized field lacks JSON roundtrip coverage"),
]

#: Environment variables the sim layer is *allowed* to read — each must be
#: resolved once, inside a function named ``*_from_env`` or
#: ``*_env_enabled``, into explicit config/constructor state (never on the
#: simulation hot path).  The value documents why the read is sound.
DECLARED_ENV_INPUTS: Dict[str, str] = {
    "REPRO_WATCHDOG": "resolved into SimConfig.watchdog at construction; "
                      "fingerprint-neutral (watchdog runs are bit-identical)",
    "REPRO_SANITIZE": "resolved into SimConfig.sanitize at construction; "
                      "fingerprint-neutral (sanitized runs are bit-identical)",
    "REPRO_CACHE_DIR": "names the cache directory; never influences what a "
                       "simulation computes, only where results are stored",
    "REPRO_FLEET": "toggles the persistent worker fleet vs a per-call pool; "
                   "both execution paths produce bit-identical fingerprints",
    "REPRO_CHUNK": "overrides pool map chunksize; scheduling-only — results "
                   "are merged back in submission order regardless",
    "REPRO_STREAM_CACHE": "caps the per-worker workload LRU; cache hits are "
                          "bit-identical to regeneration (seeded streams)",
}

#: Path fragments that mark a module as simulator core (see module
#: docstring).  ``<string>`` sources (unit tests) count as sim-core.
_SIM_CORE_PARTS = (
    "repro/sim", "repro/cache", "repro/noc", "repro/mem",
    "repro/gpu", "repro/core", "repro/workloads",
)

#: ``self`` attributes / parameter names that hold keyed input objects.
#: A write *into* one of these (``self.cfg.scale = ...``, ``cfg.gpu = ...``)
#: or a mutating method call on one is SP404.
_INPUT_ROOTS = frozenset({"cfg", "config", "spec", "profile", "gpu"})

#: The dataclasses whose fields form the cache-key domain (matches
#: ``repro.sim.store.cache_key_manifest``), checked by SP405's
#: annotation rule without importing the sim layer.
_KEYED_CLASS_NAMES = frozenset(
    {"AppProfile", "DesignSpec", "SimConfig", "GPUConfig"}
)

#: Annotation identifiers that cannot canonicalize into a stable JSON
#: cache key (unordered containers, opaque callables/objects, raw bytes).
_UNKEYABLE_ANNOTATIONS = frozenset({
    "Set", "FrozenSet", "set", "frozenset", "MutableSet",
    "Callable", "Any", "bytes", "bytearray", "complex", "ndarray", "object",
})

#: Method names that define a result's identity (SP403 scope).
_IDENTITY_METHODS = frozenset({"fingerprint", "to_jsonable", "__eq__", "__hash__"})


@dataclass(frozen=True)
class PurityFinding:
    """One key-soundness violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule_id}: {self.message}"
        )


def purity_rule_table() -> List[Tuple[str, str, str]]:
    """(rule_id, severity, title) for every SimPure rule."""
    return [(rid, sev.value, title) for rid, sev, title in PURITY_RULES]


def in_sim_core(path: str) -> bool:
    """True when ``path`` belongs to the simulator core (or is an inline
    ``<string>`` source, so unit-test snippets are checked by default)."""
    if path == "<string>":
        return True
    norm = path.replace("\\", "/")
    return any(part in norm for part in _SIM_CORE_PARTS)


class _SourceContext:
    """Suppression-comment lookup for one file."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()

    def suppressed(self, line: int, rule_id: str) -> bool:
        if not (1 <= line <= len(self.lines)):
            return False
        m = _SUPPRESS_RE.search(self.lines[line - 1])
        if m is None:
            return False
        rules = {r.strip().upper() for r in m.group(1).split(",")}
        return "ALL" in rules or rule_id.upper() in rules


# --------------------------------------------------------------- module facts


def _dotted_path(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name of an attribute chain with import aliases expanded,
    or None when the base is not an imported name."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = aliases.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _module_str_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (env-var name constants
    like ``CACHE_DIR_ENV``)."""
    out: Dict[str, str] = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            out[stmt.targets[0].id] = stmt.value.value
    return out


def _module_str_tuples(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b")`` bindings (exclusion lists like
    ``_OBSERVABILITY_FIELDS``)."""
    out: Dict[str, Tuple[str, ...]] = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, (ast.Tuple, ast.List))
            and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in stmt.value.elts
            )
        ):
            out[stmt.targets[0].id] = tuple(e.value for e in stmt.value.elts)
    # One aliasing round: ``NON_IDENTITY_FIELDS = _OBSERVABILITY_FIELDS``.
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Name)
            and stmt.value.id in out
        ):
            out[stmt.targets[0].id] = out[stmt.value.id]
    return out


def _env_var_name(call: ast.Call, consts: Dict[str, str]) -> str:
    """The environment-variable name a read targets, resolved through
    module string constants; ``<dynamic>`` when not statically known."""
    if not call.args:
        return "<dynamic>"
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.Name) and arg.id in consts:
        return consts[arg.id]
    return "<dynamic>"


def _is_classvar(annotation: ast.AST) -> bool:
    """True for ``ClassVar[...]`` annotations — not dataclass fields."""
    return any(
        (isinstance(n, ast.Name) and n.id == "ClassVar")
        or (isinstance(n, ast.Attribute) and n.attr == "ClassVar")
        for n in ast.walk(annotation)
    )


def _class_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Dataclass field name -> definition line (ClassVars excluded)."""
    fields: Dict[str, int] = {}
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not _is_classvar(stmt.annotation)
        ):
            fields[stmt.target.id] = stmt.lineno
    return fields


def _input_root(node: ast.AST, aliases: Dict[str, str]) -> Tuple[Optional[str], int]:
    """Resolve an attribute/subscript chain to a keyed-input root.

    Returns ``(root, depth)`` where ``root`` is the input name (one of
    :data:`_INPUT_ROOTS`) and ``depth`` is the number of attribute hops
    *below* the root — ``self.cfg.scale`` is ``("cfg", 1)``,
    ``cfg.gpu.num_cores`` is ``("cfg", 2)``, ``self.cfg`` is
    ``("cfg", 0)``.  ``(None, 0)`` when the chain is not input-rooted.
    """
    attrs: List[str] = []
    cur = node
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        if isinstance(cur, ast.Attribute):
            attrs.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None, 0
    if cur.id == "self":
        # self.cfg.x -> attrs == ["x", "cfg"]: root is the outermost attr.
        for i in range(len(attrs) - 1, -1, -1):
            if attrs[i] in _INPUT_ROOTS:
                return attrs[i], i
        return None, 0
    if cur.id in _INPUT_ROOTS:
        return cur.id, len(attrs)
    alias = aliases.get(cur.id)
    if alias in _INPUT_ROOTS:
        return alias, len(attrs)
    return None, 0


# ------------------------------------------------------------- static rules


def _check_undeclared_inputs(
    mctx: ModuleContext, class_names: Set[str], emit
) -> None:
    """SP401: env reads outside declared resolvers, ``global``
    declarations, runtime class-attribute assignment."""
    consts = _module_str_constants(mctx.tree)
    for node in ast.walk(mctx.tree):
        if isinstance(node, ast.Call):
            target = mctx.resolve_call(node.func) or _dotted_path(
                node.func, mctx.aliases
            )
            if target in ("os.getenv", "os.environ.get"):
                _emit_env_read(node, _env_var_name(node, consts), mctx, emit)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if _dotted_path(node.value, mctx.aliases) == "os.environ":
                name = "<dynamic>"
                if isinstance(node.slice, ast.Constant) and isinstance(
                    node.slice.value, str
                ):
                    name = node.slice.value
                elif isinstance(node.slice, ast.Name) and node.slice.id in consts:
                    name = consts[node.slice.id]
                _emit_env_read(node, name, mctx, emit)
        elif isinstance(node, ast.Global):
            func = mctx.enclosing_function(node)
            fname = getattr(func, "name", "<module>")
            emit(
                node, "SP401",
                f"function {fname!r} declares module global(s) "
                f"{', '.join(node.names)}: mutable module state bypasses "
                "the cache key — thread it through SimConfig instead",
            )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in class_names
                    and mctx.enclosing_function(target) is not None
                ):
                    emit(
                        target, "SP401",
                        f"runtime class-attribute assignment "
                        f"{target.value.id}.{target.attr} = ...: class-level "
                        "state bypasses the cache key and leaks across runs",
                    )


_RESOLVER_NAME_RE = re.compile(r"(_from_env|_env_enabled)$")


def _emit_env_read(node: ast.AST, var: str, mctx: ModuleContext, emit) -> None:
    func = mctx.enclosing_function(node)
    fname = getattr(func, "name", None)
    if (
        var in DECLARED_ENV_INPUTS
        and fname is not None
        and _RESOLVER_NAME_RE.search(fname)
    ):
        return  # a declared input, read in a dedicated resolver
    if var in DECLARED_ENV_INPUTS:
        where = f"outside a *_from_env/*_env_enabled resolver (in {fname!r})" \
            if fname else "at module scope"
        emit(
            node, "SP401",
            f"declared env input {var!r} read {where}: resolve it once at "
            "SimConfig construction, not on the simulation path",
        )
    else:
        emit(
            node, "SP401",
            f"sim core reads undeclared environment variable {var!r}: the "
            "value can change results but is not part of sim_cache_key "
            "(declare it in DECLARED_ENV_INPUTS and resolve it into config "
            "state, or stop reading it)",
        )


def _check_identity_leaks(mctx: ModuleContext, emit) -> None:
    """SP403: ``compare=False`` fields must not flow into identity
    methods (``fingerprint``/``to_jsonable``/``__eq__``/``__hash__``)."""
    str_tuples = _module_str_tuples(mctx.tree)
    for cls in ast.walk(mctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        non_identity = _non_identity_fields(cls)
        if not non_identity:
            continue
        for meth in cls.body:
            if (
                isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef))
                and meth.name in _IDENTITY_METHODS
            ):
                _check_identity_method(meth, non_identity, str_tuples, mctx, emit)


def _non_identity_fields(cls: ast.ClassDef) -> Set[str]:
    """Fields declared ``field(..., compare=False)`` in a class body."""
    out: Set[str] = set()
    for stmt in cls.body:
        if not (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)):
            continue
        value = stmt.value
        if isinstance(value, ast.Call):
            callee = value.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else ""
            )
            if name == "field" and any(
                kw.arg == "compare"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in value.keywords
            ):
                out.add(stmt.target.id)
    return out


def _check_identity_method(
    meth: ast.AST,
    non_identity: Set[str],
    str_tuples: Dict[str, Tuple[str, ...]],
    mctx: ModuleContext,
    emit,
) -> None:
    # Which non-identity fields does the method provably strip?  Either a
    # literal ``data.pop("wall_time_s", ...)`` or a loop over a module
    # constant: ``for name in _OBSERVABILITY_FIELDS: data.pop(name)``.
    excluded: Set[str] = set()
    for node in ast.walk(meth):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("pop", "__delitem__")
            and node.args
        ):
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                excluded.add(arg.value)
        if isinstance(node, ast.For) and isinstance(node.iter, ast.Name):
            names = str_tuples.get(node.iter.id)
            if names and any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in ("pop", "__delitem__")
                for n in ast.walk(node)
            ):
                excluded.update(names)
    for node in ast.walk(meth):
        # Direct read of a non-identity field inside an identity method.
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and node.attr in non_identity
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "other")
        ):
            emit(
                node, "SP403",
                f"non-identity field {node.attr!r} (compare=False) is read "
                f"inside {meth.name}(): observability must not flow into "
                "a result's identity",
            )
        # Blanket asdict(self) without stripping every non-identity field.
        if (
            isinstance(node, ast.Call)
            and (
                mctx.resolve_call(node.func) in ("dataclasses.asdict",)
                or (isinstance(node.func, ast.Name) and node.func.id == "asdict")
            )
        ):
            leaked = sorted(non_identity - excluded)
            if leaked:
                emit(
                    node, "SP403",
                    f"asdict() in {meth.name}() includes non-identity "
                    f"field(s) {', '.join(leaked)}: pop them (directly or "
                    "via a module-level exclusion tuple) before they enter "
                    "the identity",
                )


def _check_input_mutations(mctx: ModuleContext, emit) -> None:
    """SP404: writes into (or mutating calls on) profile/spec/config/gpu
    objects anywhere in the sim core."""
    for func in ast.walk(mctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        aliases = method_aliases(func)
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root, depth = _input_root(target, aliases)
                    if root is not None and depth >= 1:
                        emit(
                            target, "SP404",
                            f"assignment into keyed input object {root!r} "
                            f"in {func.name}(): inputs are immutable — "
                            "derive a new object with dataclasses.replace()",
                        )
            elif isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in MUTATING_METHODS
                ):
                    root, depth = _input_root(callee.value, aliases)
                    if root is not None and depth >= 1:
                        emit(
                            callee, "SP404",
                            f"mutating call .{callee.attr}() on keyed input "
                            f"object {root!r} in {func.name}(): inputs are "
                            "immutable — copy before mutating",
                        )
                elif (
                    _dotted_path(callee, mctx.aliases) == "object.__setattr__"
                    or (
                        isinstance(callee, ast.Attribute)
                        and callee.attr == "__setattr__"
                        and isinstance(callee.value, ast.Name)
                        and callee.value.id == "object"
                    )
                ):
                    if node.args:
                        root, _depth = _input_root(node.args[0], aliases)
                        if root is None and isinstance(node.args[0], ast.Name):
                            root = (
                                node.args[0].id
                                if node.args[0].id in _INPUT_ROOTS
                                else aliases.get(node.args[0].id)
                            )
                        if root in _INPUT_ROOTS:
                            emit(
                                callee, "SP404",
                                f"object.__setattr__ on keyed input object "
                                f"{root!r} in {func.name}(): defeats frozen-"
                                "dataclass protection on a cache-key input",
                            )


def _subscript_store_keys(meth: ast.AST) -> Set[str]:
    """String keys written via ``x["key"] = ...`` in a method body."""
    keys: Set[str] = set()
    for node in ast.walk(meth):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _check_roundtrip(mctx: ModuleContext, emit) -> None:
    """SP405: serialization symmetry and keyability of field types."""
    for cls in ast.walk(mctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = {
            m.name: m
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        to_j, from_j = methods.get("to_jsonable"), methods.get("from_jsonable")
        if (to_j is None) != (from_j is None):
            have, miss = (
                ("to_jsonable", "from_jsonable") if to_j else
                ("from_jsonable", "to_jsonable")
            )
            emit(
                cls, "SP405",
                f"class {cls.name} defines {have}() but not {miss}(): "
                "one-way serialization cannot prove cache entries replay "
                "bit-exact (schema drift vs CACHE_SCHEMA_VERSION)",
            )
        elif to_j is not None and from_j is not None:
            out_keys = _subscript_store_keys(to_j)
            in_keys = _subscript_store_keys(from_j)
            for key in sorted(out_keys ^ in_keys):
                side = "to_jsonable" if key in out_keys else "from_jsonable"
                other = "from_jsonable" if key in out_keys else "to_jsonable"
                emit(
                    methods[side], "SP405",
                    f"field {key!r} is transformed in {side}() but not in "
                    f"{other}(): asymmetric serialization breaks the "
                    "roundtrip fingerprint guarantee",
                )
        if cls.name in _KEYED_CLASS_NAMES:
            for stmt in cls.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not _is_classvar(stmt.annotation)
                ):
                    bad = sorted({
                        n.id if isinstance(n, ast.Name) else n.attr
                        for n in ast.walk(stmt.annotation)
                        if isinstance(n, (ast.Name, ast.Attribute))
                        and (
                            n.id if isinstance(n, ast.Name) else n.attr
                        ) in _UNKEYABLE_ANNOTATIONS
                    })
                    if bad:
                        emit(
                            stmt, "SP405",
                            f"keyed field {cls.name}.{stmt.target.id} is "
                            f"annotated with un-keyable type(s) "
                            f"{', '.join(bad)}: the canonical JSON cache "
                            "key cannot represent it stably",
                        )


# ----------------------------------------------------------- whole-tree pass


def _module_findings(
    tree: ast.Module,
    path: str,
    source: str,
    wanted: Optional[Set[str]],
) -> List[PurityFinding]:
    """All per-module findings (SP401/SP403/SP404/SP405) for one file."""
    if not in_sim_core(path):
        return []
    ctx = _SourceContext(path, source)
    mctx = ModuleContext(path, source, tree)
    class_names = {
        n.name for n in ast.walk(tree) if isinstance(n, ast.ClassDef)
    }
    findings: List[PurityFinding] = []
    severities = {rid: sev for rid, sev, _ in PURITY_RULES}

    def emit(node: ast.AST, rule_id: str, message: str) -> None:
        if wanted is not None and rule_id not in wanted:
            return
        line = getattr(node, "lineno", 1)
        if ctx.suppressed(line, rule_id):
            return
        findings.append(
            PurityFinding(
                path, line, getattr(node, "col_offset", 0),
                rule_id, severities[rule_id], message,
            )
        )

    _check_undeclared_inputs(mctx, class_names, emit)
    _check_identity_leaks(mctx, emit)
    _check_input_mutations(mctx, emit)
    _check_roundtrip(mctx, emit)
    return findings


def purity_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[PurityFinding]:
    """Run the per-module SimPure rules over one source string.

    SP402 (over-keying) is a whole-tree property and only runs from
    :func:`run_purity` when the scan covers the sim core.
    """
    wanted = {r.upper() for r in select} if select is not None else None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            PurityFinding(
                path, exc.lineno or 1, exc.offset or 0, "SP001",
                Severity.ERROR, f"syntax error: {exc.msg}",
            )
        ]
    findings = _module_findings(tree, path, source, wanted)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _collect_reads(tree: ast.Module) -> Set[str]:
    """Attribute names loaded anywhere in a module, plus literal
    ``getattr(x, "name")`` targets — the read-set SP402 diffs the keyed
    manifest against."""
    reads: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            reads.add(node.attr)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            reads.add(node.args[1].value)
    return reads


def run_purity(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> List[PurityFinding]:
    """Run the full SimPure static pass over every Python file under
    ``paths``: the per-module rules plus the cross-file SP402 over-keying
    diff against :func:`repro.sim.store.cache_key_manifest`."""
    wanted = {r.upper() for r in select} if select is not None else None
    findings: List[PurityFinding] = []
    reads: Set[str] = set()
    saw_system = False
    # Class name -> (path, source-context, {field: line}) for the keyed
    # dataclass definitions encountered during the scan.
    defs: Dict[str, Tuple[str, _SourceContext, Dict[str, int]]] = {}

    for file in iter_python_files(paths):
        path = str(file)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                PurityFinding(
                    path, exc.lineno or 1, exc.offset or 0, "SP001",
                    Severity.ERROR, f"syntax error: {exc.msg}",
                )
            )
            continue
        findings.extend(_module_findings(tree, path, source, wanted))
        reads |= _collect_reads(tree)
        norm = path.replace("\\", "/")
        if norm.endswith("sim/system.py"):
            saw_system = True
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name in _KEYED_CLASS_NAMES:
                defs[node.name] = (
                    path, _SourceContext(path, source), _class_fields(node)
                )

    if saw_system and (wanted is None or "SP402" in wanted):
        findings.extend(_overkeying_findings(reads, defs))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _overkeying_findings(
    reads: Set[str],
    defs: Dict[str, Tuple[str, _SourceContext, Dict[str, int]]],
) -> List[PurityFinding]:
    """SP402: keyed manifest fields with no read anywhere in the scan."""
    # Lazy import: the analysis package never imports the sim layer at
    # module scope (same policy as confirm_races).
    from repro.sim.store import cache_key_manifest

    findings: List[PurityFinding] = []
    for role, entry in sorted(cache_key_manifest().items()):
        cls_name = str(entry["class"])
        if cls_name not in defs:
            continue  # defining file not in this scan: cannot anchor
        path, ctx, field_lines = defs[cls_name]
        for field_name in entry["keyed"]:  # type: ignore[union-attr]
            if field_name in reads:
                continue
            line = field_lines.get(field_name, 1)
            if ctx.suppressed(line, "SP402"):
                continue
            findings.append(
                PurityFinding(
                    path, line, 0, "SP402", Severity.WARNING,
                    f"keyed field {cls_name}.{field_name} ({role}) is never "
                    "read by the scanned tree: it fragments the shared "
                    "result cache — read it, remove it, or declare it in "
                    f"{cls_name}.FINGERPRINT_NEUTRAL_FIELDS",
                )
            )
    return findings


# -------------------------------------------------------- dynamic confirmer


#: Default (app, design-label) grid for ``repro purity --confirm``: a
#: camping+replication workload on private nodes, a replication-heavy
#: Tango network on the paper's best clustered design, and a cache-
#: friendly workload on the conventional baseline.
DEFAULT_CONFIRM_GRID: Tuple[Tuple[str, str], ...] = (
    ("P-2MM", "Pr40"),
    ("T-AlexNet", "Sh40+C10"),
    ("C-BLK", "Baseline"),
)


def mutated_value(value: object) -> List[object]:
    """Candidate replacement values for one field, in preference order.

    Candidates may violate a dataclass's ``__post_init__`` constraints;
    callers try them in order and keep the first that constructs.
    """
    if isinstance(value, bool):
        return [not value]
    if isinstance(value, int):
        return [value * 2 if value else 7, value + 1, max(value // 2, 1), value - 1]
    if isinstance(value, float):
        return [
            value + 1.0, value * 0.5, value * 2.0, 0.5, 0.25, 0.1,
            1.0 if value == 0.0 else 0.0,
        ]
    if isinstance(value, str):
        return [value + "x", "probe"]
    if value is None:
        return [7, 11.0, 1]
    if isinstance(value, enum_module().Enum):
        others = [m for m in type(value) if m is not value]
        return others or []
    if dataclasses_module().is_dataclass(value):
        # Mutate the first float field of a nested dataclass (GPUConfig).
        for f in dataclasses_module().fields(value):
            cur = getattr(value, f.name)
            if isinstance(cur, float) and not isinstance(cur, bool):
                return [dataclasses_module().replace(value, **{f.name: cur + 1.0})]
        return []
    return []


def enum_module():
    import enum

    return enum


def dataclasses_module():
    import dataclasses

    return dataclasses


@dataclass(frozen=True)
class PurityProbe:
    """One dynamic mutation probe and its verdict."""

    kind: str      # key-sensitivity | key-neutrality | fingerprint-invariance
                   # | env-invariance | roundtrip
    target: str    # e.g. "SimConfig.scale" or "REPRO_WATCHDOG @ P-2MM/Pr40"
    ok: bool
    detail: str = ""

    def format(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        tail = f" ({self.detail})" if self.detail and not self.ok else ""
        return f"  {self.kind:<24} {self.target:<44} {verdict}{tail}"


@dataclass
class PurityReport:
    """Outcome of a full dynamic purity confirmation."""

    grid: List[Tuple[str, str]]
    scale: float
    probes: List[PurityProbe] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.probes)

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """kind -> (passed, total)."""
        out: Dict[str, Tuple[int, int]] = {}
        for p in self.probes:
            passed, total = out.get(p.kind, (0, 0))
            out[p.kind] = (passed + (1 if p.ok else 0), total + 1)
        return out

    def render(self) -> str:
        lines = [
            f"SimPure confirm: grid={', '.join(f'{a}/{d}' for a, d in self.grid)} "
            f"scale={self.scale:g} probes={len(self.probes)}"
        ]
        lines.extend(p.format() for p in self.probes if not p.ok)
        for kind, (passed, total) in sorted(self.counts().items()):
            lines.append(f"  {kind}: {passed}/{total} ok")
        lines.append(
            "overall: "
            + (
                "SOUND (keyed fields change the key; excluded inputs are "
                "bit-invariant)"
                if self.ok
                else "UNSOUND — the declared key/fingerprint domain does "
                "not match simulator behaviour"
            )
        )
        return "\n".join(lines)


def _mutate_dataclass(obj: object, field_name: str) -> Optional[object]:
    """A copy of ``obj`` with ``field_name`` changed to a valid different
    value, or None when no candidate satisfies ``__post_init__``."""
    import dataclasses

    current = getattr(obj, field_name)
    for candidate in mutated_value(current):
        if candidate == current:
            continue
        try:
            return dataclasses.replace(obj, **{field_name: candidate})
        except (ValueError, TypeError, ZeroDivisionError):
            continue
    return None


def _key_probes(profile, spec, cfg) -> List[PurityProbe]:
    """Key-sensitivity (every keyed field changes the key) and
    key-neutrality (every neutral field keeps it) — no simulations."""
    from repro.sim.store import cache_key_manifest, sim_cache_key

    base = sim_cache_key(profile, spec, cfg)
    import dataclasses

    def rebuild(role: str, mutated):
        if role == "profile":
            return mutated, spec, cfg
        if role == "design":
            return profile, mutated, cfg
        if role == "config":
            return profile, spec, mutated
        return profile, spec, dataclasses.replace(cfg, gpu=mutated)

    probes: List[PurityProbe] = []
    objs = {"profile": profile, "design": spec, "config": cfg, "gpu": cfg.gpu}
    for role, entry in sorted(cache_key_manifest().items()):
        obj = objs[role]
        cls = str(entry["class"])
        for field_name in entry["keyed"]:  # type: ignore[union-attr]
            if role == "config" and field_name == "gpu":
                continue  # covered field-by-field by the "gpu" role
            mutated = _mutate_dataclass(obj, field_name)
            if mutated is None:
                probes.append(PurityProbe(
                    "key-sensitivity", f"{cls}.{field_name}", False,
                    "no valid mutated value found",
                ))
                continue
            key = sim_cache_key(*rebuild(role, mutated))
            probes.append(PurityProbe(
                "key-sensitivity", f"{cls}.{field_name}", key != base,
                "" if key != base else "mutation did not change sim_cache_key",
            ))
        for field_name in entry["neutral"]:  # type: ignore[union-attr]
            mutated = _mutate_dataclass(obj, field_name)
            if mutated is None:
                probes.append(PurityProbe(
                    "key-neutrality", f"{cls}.{field_name}", False,
                    "no valid mutated value found",
                ))
                continue
            key = sim_cache_key(*rebuild(role, mutated))
            probes.append(PurityProbe(
                "key-neutrality", f"{cls}.{field_name}", key == base,
                "" if key == base else "declared-neutral field changed the key",
            ))
    return probes


def confirm_purity(
    grid: Optional[Sequence[Tuple[str, str]]] = None,
    scale: float = 0.1,
    config=None,
) -> PurityReport:
    """Dynamically confirm the declared key/fingerprint domain.

    Four probe families, mirroring SimRace's confirm mode:

    * **key-sensitivity** — every keyed field of every keyed dataclass,
      mutated, must change :func:`sim_cache_key` (no simulations).
    * **key-neutrality** — every declared-neutral field, mutated, must
      keep the key.
    * **fingerprint-invariance** — per grid point: each neutral field
      mutated, the simulation re-run, and the result fingerprint must be
      bit-identical to the unmutated baseline.
    * **env-invariance** — per grid point: each declared env input set
      in ``os.environ`` around a re-run with the *same* config object;
      bit-identical results prove the sim core never reads the
      environment at run time.
    * **roundtrip** — per grid point: ``to_jsonable -> json ->
      from_jsonable`` must reproduce the fingerprint bit-exactly.
    """
    # Lazy imports: repro.sim.system imports repro.analysis at module
    # load, so importing it here (not at module top) avoids the cycle.
    import dataclasses

    from repro.cli import parse_design
    from repro.sim.config import SimConfig
    from repro.sim.results import SimResult
    from repro.sim.system import simulate
    from repro.workloads.suite import get_app

    points = list(grid) if grid else list(DEFAULT_CONFIRM_GRID)
    cfg = (
        dataclasses.replace(config, scale=scale)
        if config is not None
        else SimConfig(scale=scale)
    )
    first_app = get_app(points[0][0])
    first_spec = parse_design(points[0][1])
    report = PurityReport(grid=points, scale=scale)
    report.probes.extend(_key_probes(first_app, first_spec, cfg))

    neutral_cfg_fields = sorted(SimConfig.FINGERPRINT_NEUTRAL_FIELDS)
    for app_name, design_label in points:
        app = get_app(app_name)
        spec = parse_design(design_label)
        where = f"{app_name}/{spec.label}"
        base_fp = simulate(app, spec, cfg).fingerprint()

        for field_name in neutral_cfg_fields:
            mutated_cfg = _mutate_dataclass(cfg, field_name)
            if mutated_cfg is None:
                report.probes.append(PurityProbe(
                    "fingerprint-invariance",
                    f"SimConfig.{field_name} @ {where}", False,
                    "no valid mutated value found",
                ))
                continue
            diff = diff_fingerprints(
                base_fp, simulate(app, spec, mutated_cfg).fingerprint()
            )
            report.probes.append(PurityProbe(
                "fingerprint-invariance",
                f"SimConfig.{field_name} @ {where}",
                not diff, "; ".join(diff),
            ))

        mutated_app = dataclasses.replace(app, suite=app.suite + "x")
        diff = diff_fingerprints(
            base_fp, simulate(mutated_app, spec, cfg).fingerprint()
        )
        report.probes.append(PurityProbe(
            "fingerprint-invariance", f"AppProfile.suite @ {where}",
            not diff, "; ".join(diff),
        ))

        for var in sorted(DECLARED_ENV_INPUTS):
            if var == "REPRO_CACHE_DIR":
                continue  # names a directory; pointing it anywhere real
                          # would write caches as a side effect
            saved = os.environ.get(var)
            os.environ[var] = "1"
            try:
                diff = diff_fingerprints(
                    base_fp, simulate(app, spec, cfg).fingerprint()
                )
            finally:
                if saved is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = saved
            report.probes.append(PurityProbe(
                "env-invariance", f"{var} @ {where}", not diff, "; ".join(diff),
            ))

        result = simulate(app, spec, cfg)
        back = SimResult.from_jsonable(json.loads(json.dumps(result.to_jsonable())))
        diff = diff_fingerprints(result.fingerprint(), back.fingerprint())
        report.probes.append(PurityProbe(
            "roundtrip", f"SimResult @ {where}", not diff, "; ".join(diff),
        ))
    return report
