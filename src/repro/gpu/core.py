"""GPU core state.

In the baseline, a core owns its private L1 (tightly coupled).  In DC-L1
designs the core is the paper's *Lite Core*: identical, minus the L1 data
cache and its MSHRs — memory instructions are injected into NoC#1 instead.
Either way, the core-side state is the same: a set of wavefront slots, a
queue of CTAs waiting for a free slot, an issue port admitting one memory
instruction per cycle, and instruction accounting for IPC.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.gpu.wavefront import Wavefront
from repro.sim.resources import Server


class CoreState:
    """Per-core execution state (slots, CTA queue, issue port, counters)."""

    def __init__(self, core_id: int, wavefront_slots: int, compute_gap: float, mlp: int = 1):
        if wavefront_slots <= 0:
            raise ValueError("a core needs at least one wavefront slot")
        self.core_id = core_id
        self.compute_gap = compute_gap
        self.slots: List[Wavefront] = [
            Wavefront(core_id, s, None, compute_gap, mlp) for s in range(wavefront_slots)
        ]
        self.cta_queue: deque = deque()
        # One memory instruction may enter the pipeline per cycle.
        self.issue_port = Server(f"core{core_id}.issue", 1.0, 0.0)
        self.instructions = 0
        self.mem_instructions = 0
        self.active_wavefronts = 0
        self.finish_time = 0.0

    def assign_ctas(self, queue: deque) -> None:
        self.cta_queue = queue

    def next_stream(self, streams) -> Optional[object]:
        """Pop the next CTA stream for this core, if any."""
        if self.cta_queue:
            return streams[self.cta_queue.popleft()]
        return None

    @property
    def idle(self) -> bool:
        """True when every slot is drained and no CTAs wait."""
        return self.active_wavefronts == 0 and not self.cta_queue

    def count_access(self, compute_instructions: float) -> None:
        """Account one memory instruction plus its trailing ALU work."""
        self.mem_instructions += 1
        self.instructions += 1 + int(compute_instructions)
