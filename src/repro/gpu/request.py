"""Memory requests and access kinds.

A :class:`MemoryRequest` is the unit of work that travels through the cache
hierarchy.  Requests are created by wavefronts (one per memory instruction)
and threaded through the system's request-lifecycle callbacks; all timing
state lives on the request object itself so the engine payloads stay cheap.

Access kinds follow Section III of the paper:

* ``LOAD`` / ``STORE`` — L1 data accesses.  Stores use write-evict +
  no-write-allocate at the (DC-)L1.
* ``ATOMIC`` — skips the L1/DC-L1 entirely and is resolved at the L2/MC.
* ``BYPASS`` — "non-L1" traffic (instruction / texture / constant cache
  misses) that passes *through* a DC-L1 node (Q1→Q3) without accessing the
  DC-L1 cache.
"""

from __future__ import annotations

from enum import IntEnum


class AccessKind(IntEnum):
    """What a memory request does at the L1 level."""

    LOAD = 0
    STORE = 1
    ATOMIC = 2
    BYPASS = 3


class MemoryRequest:
    """One in-flight memory transaction.

    Attributes
    ----------
    addr:
        Byte address of the access (already coalesced at warp granularity).
    kind:
        The :class:`AccessKind`.
    size:
        Useful bytes requested/written by the warp (<= one cache line).
    core_id:
        Issuing GPU core.
    wavefront:
        The wavefront context to resume on completion (set by the core model).
    issue_time:
        Cycle at which the core injected the request (for round-trip stats).
    line:
        Cache-line index (``addr >> line_bits``), filled in by the system.
    dcl1_id / l2_id / mc_id:
        Route, resolved from the address by the active design.
    l1_hit / l2_hit:
        Outcome flags for statistics.
    """

    __slots__ = (
        "addr",
        "kind",
        "size",
        "core_id",
        "wavefront",
        "issue_time",
        "line",
        "dcl1_id",
        "l2_id",
        "mc_id",
        "l1_hit",
        "l2_hit",
        "merged",
    )

    def __init__(self, addr: int, kind: AccessKind, size: int, core_id: int):
        self.addr = addr
        self.kind = kind
        self.size = size
        self.core_id = core_id
        self.wavefront = None
        self.issue_time = 0.0
        self.line = 0
        self.dcl1_id = 0
        self.l2_id = 0
        self.mc_id = 0
        self.l1_hit = False
        self.l2_hit = False
        self.merged = False

    def reinit(self, addr: int, kind: AccessKind, size: int, core_id: int) -> "MemoryRequest":
        """Re-initialize a recycled request from the system's free list.

        Pooled reuse is only enabled on uninstrumented runs: the sanitizer
        ledger keys live holds by ``id(request)``, so recycling an object
        while a ledger could still attribute notes to the old id would
        corrupt hop traces.  Every field is reset to the
        ``__init__``-equivalent state — a stale flag (``merged``,
        ``l1_hit``) surviving reuse would silently corrupt statistics.
        """
        self.addr = addr
        self.kind = kind
        self.size = size
        self.core_id = core_id
        self.wavefront = None
        self.issue_time = 0.0
        self.line = 0
        self.dcl1_id = 0
        self.l2_id = 0
        self.mc_id = 0
        self.l1_hit = False
        self.l2_hit = False
        self.merged = False
        return self

    @property
    def is_load(self) -> bool:
        return self.kind == AccessKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind == AccessKind.STORE

    @property
    def accesses_l1(self) -> bool:
        """Whether this request probes the (DC-)L1 cache at all."""
        return self.kind == AccessKind.LOAD or self.kind == AccessKind.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryRequest(addr={self.addr:#x}, kind={AccessKind(self.kind).name}, "
            f"size={self.size}, core={self.core_id})"
        )
