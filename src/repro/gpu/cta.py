"""CTA-to-core scheduling.

The paper's baseline launches cooperative thread arrays (CTAs) onto cores
round-robin; its Section VIII-A sensitivity study compares against a
"distributed" locality-aware scheduler [28] that maps *nearby* CTAs to the
*same* core, which converts inter-core data sharing into intra-core reuse
and thereby shrinks the replication the DC-L1 designs would otherwise
remove.

Schedulers produce, for each core, an ordered queue of CTA indices.  Cores
draw from their queue whenever a wavefront slot frees up, so a skewed
assignment (the R-SC work-imbalance behaviour, Section V-B) simply gives
some cores longer queues.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence


class CTAScheduler:
    """Base scheduler interface."""

    name = "base"

    def assign(self, num_ctas: int, num_cores: int,
               weights: Optional[Sequence[float]] = None) -> List[deque]:
        """Return one deque of CTA ids per core."""
        raise NotImplementedError


class RoundRobinCTAScheduler(CTAScheduler):
    """Default GPU scheduler: CTA ``i`` goes to core ``i mod C``.

    With ``weights`` (one positive weight per core), assignment becomes
    weighted round-robin — used to model the R-SC style work-distribution
    imbalance where some cores receive more CTAs than others.
    """

    name = "round_robin"

    def assign(self, num_ctas: int, num_cores: int,
               weights: Optional[Sequence[float]] = None) -> List[deque]:
        queues = [deque() for _ in range(num_cores)]
        if weights is None:
            for cta in range(num_ctas):
                queues[cta % num_cores].append(cta)
            return queues
        if len(weights) != num_cores:
            raise ValueError("need one weight per core")
        if min(weights) < 0 or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with a positive sum")
        # Deterministic largest-remainder spread of CTAs over cores.
        total = float(sum(weights))
        credits = [0.0] * num_cores
        for cta in range(num_ctas):
            for c in range(num_cores):
                credits[c] += weights[c] / total
            best = max(range(num_cores), key=lambda c: (credits[c], -c))
            credits[best] -= 1.0
            queues[best].append(cta)
        return queues


class DistributedCTAScheduler(CTAScheduler):
    """Locality-aware scheduler: contiguous blocks of CTAs per core.

    Nearby CTAs (which share neighbourhood data in the workload model) land
    on the same core, so their sharing is satisfied by that core's own L1 —
    the paper observes this trims the benefit of DC-L1 designs from 75% to
    46% without eliminating it.
    """

    name = "distributed"

    def assign(self, num_ctas: int, num_cores: int,
               weights: Optional[Sequence[float]] = None) -> List[deque]:
        if weights is not None:
            raise ValueError("distributed scheduler does not support weights")
        queues = [deque() for _ in range(num_cores)]
        base = num_ctas // num_cores
        extra = num_ctas % num_cores
        cta = 0
        for core in range(num_cores):
            take = base + (1 if core < extra else 0)
            for _ in range(take):
                queues[core].append(cta)
                cta += 1
        return queues


_SCHEDULERS = {
    "round_robin": RoundRobinCTAScheduler,
    "distributed": DistributedCTAScheduler,
}


def make_scheduler(name: str) -> CTAScheduler:
    """Instantiate a CTA scheduler by name."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown CTA scheduler {name!r}; choose from {sorted(_SCHEDULERS)}"
        ) from None
