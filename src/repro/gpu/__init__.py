"""Core-side GPU model: memory requests, wavefront contexts, CTA scheduling."""

from repro.gpu.request import AccessKind, MemoryRequest
from repro.gpu.wavefront import Wavefront
from repro.gpu.cta import CTAScheduler, DistributedCTAScheduler, RoundRobinCTAScheduler

__all__ = [
    "AccessKind",
    "MemoryRequest",
    "Wavefront",
    "CTAScheduler",
    "RoundRobinCTAScheduler",
    "DistributedCTAScheduler",
]
