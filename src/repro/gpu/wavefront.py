"""Wavefront contexts.

A wavefront executes one CTA's access stream: *(issue a memory
instruction → wait for its reply → execute ``compute_gap`` ALU
instructions → repeat)*.  A core runs ``wavefront_slots`` such contexts
concurrently; this is the GPU latency-tolerance model — with many
wavefronts in flight, memory latency is hidden and throughput is bounded
by bandwidth, with few it is latency-bound (the paper's C-NN discussion).

Timing is orchestrated by :class:`repro.sim.system.GPUSystem`; a wavefront
only tracks its position in the stream.
"""

from __future__ import annotations

from typing import Optional, Tuple


class Wavefront:
    """One in-flight CTA execution context on a core.

    ``mlp`` is the wavefront's memory-level parallelism: how many blocking
    memory operations it may have in flight before it stalls (real GPU
    wavefronts keep several independent loads outstanding).  ``outstanding``
    and ``issue_pending`` are scheduler bookkeeping owned by the system.
    """

    __slots__ = (
        "core_id", "slot", "stream", "pc", "compute_gap", "done",
        "mlp", "outstanding", "issue_pending", "_length", "_lines", "_kinds",
        "_issue_size", "_instr_inc",
    )

    def __init__(self, core_id: int, slot: int, stream, compute_gap: float, mlp: int = 1):
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.core_id = core_id
        self.slot = slot
        self.compute_gap = compute_gap
        # Issue-path derivatives of compute_gap, precomputed once per bind
        # instead of once per issued instruction (SimVec hot path): the
        # issue-port service size and the per-issue instruction-counter
        # increment.  Must be recomputed wherever compute_gap changes.
        self._issue_size = 1.0 + compute_gap
        self._instr_inc = 1 + int(compute_gap)
        self.mlp = mlp
        self.outstanding = 0
        self.issue_pending = False
        self.bind(stream)

    def bind(self, stream, compute_gap: Optional[float] = None) -> None:
        """Attach a new CTA stream to this context (CTA replacement).

        The stream's line/kind arrays are materialized as plain Python
        lists once per bind: indexing a NumPy array boxes a NumPy scalar
        per access, and :meth:`next_access` runs once per memory
        instruction — the simulator's single hottest call site.
        """
        self.stream = stream
        self.pc = 0
        if compute_gap is not None:
            self.compute_gap = compute_gap
            self._issue_size = 1.0 + compute_gap
            self._instr_inc = 1 + int(compute_gap)
        if stream is None:
            self._length = 0
            self._lines = self._kinds = ()
        else:
            self._length = len(stream)
            lines, kinds = stream.lines, stream.kinds
            self._lines = lines.tolist() if hasattr(lines, "tolist") else lines
            self._kinds = kinds.tolist() if hasattr(kinds, "tolist") else kinds
        self.done = self._length == 0

    def next_access(self) -> Optional[Tuple[int, int]]:
        """Return (line, kind) of the next memory instruction and advance;
        None when the stream is exhausted.

        ``kind`` is returned as a plain int (comparable to
        :class:`~repro.gpu.request.AccessKind`) — this is the simulator's
        hottest path and enum construction is measurable there.
        """
        if self.done:
            return None
        pc = self.pc
        line = self._lines[pc]
        kind = self._kinds[pc]
        self.pc = pc + 1
        if self.pc >= self._length:
            self.done = True
        return line, kind

    @property
    def remaining(self) -> int:
        if self.stream is None:
            return 0
        return len(self.stream) - self.pc
