"""Per-handler event profiler for the discrete-event engine.

:class:`EventProfiler` attaches to an :class:`~repro.sim.engine.Engine`
(:meth:`~repro.sim.engine.Engine.attach_profiler`); the engine's profiled
drain loop brackets every callback with :attr:`EventProfiler.clock` and
accumulates, per handler function, the number of events dispatched and
the wall-clock *self-time* spent inside the callback.  Event order is
identical to the uninstrumented loop, so a profiled simulation produces
a bit-identical :meth:`~repro.sim.results.SimResult.fingerprint` — the
profiler observes, it never steers.

Handler keys are the underlying functions (``__func__`` of the bound
methods the system schedules), so all events of one handler aggregate
into one row regardless of which payload they carried.

Wall-clock readings break bit-reproducibility only of the *profile*, not
of the simulation; the clock is intentionally real time.  Surfaced via
``repro profile`` (CLI table) and the ``wall_time_s`` / ``events_per_s``
observability fields on :class:`~repro.sim.results.SimResult` (both are
excluded from fingerprints and the persistent result cache).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

__all__ = ["EventProfiler", "ProfileRow", "profile_simulation"]


@dataclass(frozen=True)
class ProfileRow:
    """One handler's aggregate in a profile report."""

    handler: str
    events: int
    self_s: float
    pct: float
    us_per_event: float


class EventProfiler:
    """Accumulates per-handler event counts and self-time.

    ``clock`` defaults to the highest-resolution monotonic wall clock;
    tests may inject a deterministic fake.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = (
            clock if clock is not None else _time.perf_counter
        )
        self.counts: Dict[Any, int] = {}
        self.self_time: Dict[Any, float] = {}
        # Total wall time spent inside the profiled drain loop (includes
        # heap churn and dispatch overhead, not just handler bodies).
        self.wall_time = 0.0

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_self_time(self) -> float:
        return sum(self.self_time.values())

    def events_per_s(self) -> float:
        """Overall throughput of the profiled drain (0.0 before any run)."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.total_events / self.wall_time

    def rows(self) -> List[ProfileRow]:
        """Per-handler aggregates, most expensive (self-time) first."""
        total = self.total_self_time
        out = []
        for key, count in self.counts.items():
            self_s = self.self_time.get(key, 0.0)
            out.append(
                ProfileRow(
                    handler=getattr(key, "__qualname__", repr(key)),
                    events=count,
                    self_s=self_s,
                    pct=(100.0 * self_s / total) if total > 0.0 else 0.0,
                    us_per_event=(1e6 * self_s / count) if count else 0.0,
                )
            )
        out.sort(key=lambda r: (-r.self_s, r.handler))
        return out

    def render(self, top: int = 0) -> str:
        """Human-readable table (``top`` > 0 limits to the N hottest rows)."""
        rows = self.rows()
        if top > 0:
            rows = rows[:top]
        width = max([len("handler")] + [len(r.handler) for r in rows])
        lines = [
            f"{'handler':<{width}}  {'events':>10}  {'self(s)':>9}  {'%':>6}  {'us/ev':>8}",
            f"{'-' * width}  {'-' * 10}  {'-' * 9}  {'-' * 6}  {'-' * 8}",
        ]
        for r in rows:
            lines.append(
                f"{r.handler:<{width}}  {r.events:>10}  {r.self_s:>9.3f}  "
                f"{r.pct:>6.1f}  {r.us_per_event:>8.2f}"
            )
        lines.append(
            f"{'total':<{width}}  {self.total_events:>10}  "
            f"{self.total_self_time:>9.3f}  {100.0 if rows else 0.0:>6.1f}  "
            f"{(1e6 * self.total_self_time / self.total_events) if self.total_events else 0.0:>8.2f}"
        )
        if self.wall_time > 0.0:
            lines.append(
                f"wall {self.wall_time:.3f} s, {self.events_per_s():,.0f} events/s "
                "(drain loop, incl. heap/dispatch overhead)"
            )
        return "\n".join(lines)


def profile_simulation(workload, spec, config=None, clock=None):
    """Run one simulation under the profiler.

    Returns ``(result, profiler)``; the result's fingerprint is
    bit-identical to an unprofiled run of the same config.  Imports the
    system lazily — the profiler itself has no simulator dependencies, so
    the engine can import this module without a cycle.
    """
    from repro.sim.system import GPUSystem

    system = GPUSystem(workload, spec, config)
    profiler = EventProfiler(clock)
    system.engine.attach_profiler(profiler)
    result = system.run()
    return result, profiler
