"""Per-handler event profiler for the discrete-event engine.

:class:`EventProfiler` attaches to an :class:`~repro.sim.engine.Engine`
(:meth:`~repro.sim.engine.Engine.attach_profiler`); the engine's profiled
drain loop brackets every callback with :attr:`EventProfiler.clock` and
accumulates, per handler function, the number of events dispatched and
the wall-clock *self-time* spent inside the callback.  Event order is
identical to the uninstrumented loop, so a profiled simulation produces
a bit-identical :meth:`~repro.sim.results.SimResult.fingerprint` — the
profiler observes, it never steers.

Handler keys are the underlying functions (``__func__`` of the bound
methods the system schedules), so all events of one handler aggregate
into one row regardless of which payload they carried.

Wall-clock readings break bit-reproducibility only of the *profile*, not
of the simulation; the clock is intentionally real time.  Surfaced via
``repro profile`` (CLI table) and the ``wall_time_s`` / ``events_per_s``
observability fields on :class:`~repro.sim.results.SimResult` (both are
excluded from fingerprints and the persistent result cache).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

__all__ = ["EventProfiler", "ProfileRow", "profile_simulation"]


@dataclass(frozen=True)
class ProfileRow:
    """One handler's aggregate in a profile report."""

    handler: str
    events: int
    self_s: float
    pct: float
    us_per_event: float
    # Net traced heap bytes per event (0.0 unless the profiler ran with
    # trace_alloc; negative means the handler freed more than it allocated,
    # e.g. the pooled-completion path returning requests to the free list).
    alloc_b_per_event: float = 0.0


class EventProfiler:
    """Accumulates per-handler event counts and self-time.

    ``clock`` defaults to the highest-resolution monotonic wall clock;
    tests may inject a deterministic fake.  With ``trace_alloc=True`` the
    engine selects the tracemalloc-sampling drain loop and fills
    :attr:`alloc_bytes` with net traced bytes per handler (SimHeat's
    pooled-lifecycle evidence); the caller must have tracemalloc running.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 trace_alloc: bool = False):
        self.clock: Callable[[], float] = (
            clock if clock is not None else _time.perf_counter
        )
        self.trace_alloc = trace_alloc
        self.counts: Dict[Any, int] = {}
        self.self_time: Dict[Any, float] = {}
        self.alloc_bytes: Dict[Any, int] = {}
        # Total wall time spent inside the profiled drain loop (includes
        # heap churn and dispatch overhead, not just handler bodies).
        self.wall_time = 0.0

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_self_time(self) -> float:
        return sum(self.self_time.values())

    def events_per_s(self) -> float:
        """Overall throughput of the profiled drain (0.0 before any run)."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.total_events / self.wall_time

    def rows(self) -> List[ProfileRow]:
        """Per-handler aggregates, most expensive (self-time) first."""
        total = self.total_self_time
        out = []
        for key, count in self.counts.items():
            self_s = self.self_time.get(key, 0.0)
            out.append(
                ProfileRow(
                    handler=getattr(key, "__qualname__", repr(key)),
                    events=count,
                    self_s=self_s,
                    pct=(100.0 * self_s / total) if total > 0.0 else 0.0,
                    us_per_event=(1e6 * self_s / count) if count else 0.0,
                    alloc_b_per_event=(
                        self.alloc_bytes.get(key, 0) / count if count else 0.0
                    ),
                )
            )
        out.sort(key=lambda r: (-r.self_s, r.handler))
        return out

    def render(self, top: int = 0) -> str:
        """Human-readable table (``top`` > 0 limits to the N hottest rows).

        A truncated table says so: an ellipsis line between the shown
        rows and the totals states how many handlers are hidden and what
        share of self-time the shown rows cover, so the 100% ``total``
        row (which always aggregates *every* handler) cannot be misread
        as "these N rows are the whole profile".
        """
        all_rows = self.rows()
        rows = all_rows[:top] if top > 0 else all_rows
        with_alloc = bool(self.alloc_bytes)
        width = max([len("handler")] + [len(r.handler) for r in rows])
        header = f"{'handler':<{width}}  {'events':>10}  {'self(s)':>9}  {'%':>6}  {'us/ev':>8}"
        rule = f"{'-' * width}  {'-' * 10}  {'-' * 9}  {'-' * 6}  {'-' * 8}"
        if with_alloc:
            header += f"  {'B/ev':>8}"
            rule += f"  {'-' * 8}"
        lines = [header, rule]
        for r in rows:
            line = (
                f"{r.handler:<{width}}  {r.events:>10}  {r.self_s:>9.3f}  "
                f"{r.pct:>6.1f}  {r.us_per_event:>8.2f}"
            )
            if with_alloc:
                line += f"  {r.alloc_b_per_event:>8.1f}"
            lines.append(line)
        if len(rows) < len(all_rows):
            shown_pct = sum(r.pct for r in rows)
            lines.append(
                f"... top {len(rows)} of {len(all_rows)} handlers shown "
                f"({shown_pct:.1f}% of self-time); "
                f"{len(all_rows) - len(rows)} hidden"
            )
        lines.append(
            f"{'total':<{width}}  {self.total_events:>10}  "
            f"{self.total_self_time:>9.3f}  {100.0 if all_rows else 0.0:>6.1f}  "
            f"{(1e6 * self.total_self_time / self.total_events) if self.total_events else 0.0:>8.2f}"
        )
        if self.wall_time > 0.0:
            lines.append(
                f"wall {self.wall_time:.3f} s, {self.events_per_s():,.0f} events/s "
                "(drain loop, incl. heap/dispatch overhead)"
            )
        return "\n".join(lines)


def profile_simulation(workload, spec, config=None, clock=None,
                       trace_alloc=False):
    """Run one simulation under the profiler.

    Returns ``(result, profiler)``; the result's fingerprint is
    bit-identical to an unprofiled run of the same config.  Imports the
    system lazily — the profiler itself has no simulator dependencies, so
    the engine can import this module without a cycle.

    ``trace_alloc=True`` additionally attributes net heap allocation to
    each handler via :mod:`tracemalloc` (started/stopped here; substantial
    slowdown, diagnostic use only — timing numbers from such a run are
    not comparable to plain profiles).
    """
    from repro.sim.system import GPUSystem

    system = GPUSystem(workload, spec, config)
    profiler = EventProfiler(clock, trace_alloc=trace_alloc)
    system.engine.attach_profiler(profiler)
    if trace_alloc:
        import tracemalloc

        tracemalloc.start()
        try:
            result = system.run()
        finally:
            tracemalloc.stop()
    else:
        result = system.run()
    return result, profiler
