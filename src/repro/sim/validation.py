"""Invariant auditing — post-run and continuous.

:func:`audit` inspects a finished :class:`~repro.sim.system.GPUSystem` and
checks the structural invariants a correct run must satisfy — request
conservation, stats consistency, directory/capacity agreement, replication
bounds implied by the design.  Tests use it after every integration run;
it is also handy when developing new designs or workload models
(``simulate(..., )`` then ``audit(system)`` in a debugger).

:func:`live_audit` is the *continuous* subset: invariants that must hold
at every instant of a run, not only at drain.  The SimSanitizer
(``SimConfig(sanitize=True)``, see :mod:`repro.analysis.sanitizer`) calls
it periodically mid-run, so a corrupted cache set or a diverged directory
is reported thousands of events after the bug — not after a livelocked
500M-event budget.

Each violated invariant produces one human-readable finding; an empty list
means the run is clean.  :func:`assert_clean` raises on findings.

:func:`validate_grid` is the *pre-flight* counterpart for sweeps: it
checks a resolved grid of (profile, spec, config) points — types,
parameter sanity, cache-keyability, duplicate-after-normalization
collisions — before :meth:`~repro.experiments.base.Runner.run_many` or
the CLI submit anything to a process pool.  A malformed point should
fail in milliseconds at submission, not minutes into a sharded sweep.

:func:`audit_slim_transport` is the *post-flight* counterpart for
SimFleet's slim result transport: when a pool worker persists its own
result and returns only ``(cache_key, fingerprint sha, counters)``, the
parent re-derives the key from the pre-flighted grid and audits the
disk-rehydrated result against the worker's fingerprint hash before
trusting it.  Any problem downgrades that point to an in-process
re-simulation — correctness over speed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.designs import DesignKind, DesignSpec


def audit(system) -> List[str]:
    """Return a list of invariant violations for a completed system."""
    findings: List[str] = []
    res = system.result

    def check(ok: bool, message: str) -> None:
        if not ok:
            findings.append(message)

    check(system._ran, "system has not run")
    check(system.outstanding == 0, f"{system.outstanding} requests still outstanding")
    check(system.engine.empty(), "event queue not drained")
    check(res.cycles >= 0, "negative cycle count")

    # Request conservation: everything the trace contains was issued.
    check(
        res.total_requests == system.workload.total_accesses,
        f"issued {res.total_requests} != trace {system.workload.total_accesses}",
    )
    # Every load got a round-trip measurement.
    check(
        res.load_rtt_count == res.loads,
        f"rtt measured for {res.load_rtt_count} of {res.loads} loads",
    )

    # Cores drained.
    for core in system.cores:
        check(core.idle, f"core {core.core_id} still has work")
        check(
            core.active_wavefronts == 0,
            f"core {core.core_id} has {core.active_wavefronts} live wavefronts",
        )

    # Node queues drained (finite-Q1 mode).
    if system._node_waiters is not None:
        for n, waiters in enumerate(system._node_waiters):
            check(not waiters, f"DC-L1 node {n} still has parked requests")

    # MSHRs drained.
    for i, mshr in enumerate(system.l1_mshrs):
        check(mshr.drained(), f"L1-level MSHR {i} not drained")
    for s in system.l2_slices:
        check(s.mshr.drained(), f"L2 slice {s.slice_id} MSHR not drained")

    # Cache-level stats consistency.
    l1 = res.l1
    check(l1.accesses == l1.hits + l1.misses, "L1 stats do not balance")
    check(
        l1.replicated_misses <= l1.misses,
        "more replicated misses than misses",
    )
    if not system.spec.perfect_l1:
        # Perfect caches hit without evicting; real ones write-evict.
        check(l1.store_hits == l1.write_evicts, "write-evict accounting broken")

    # Capacity invariants.
    for cache in system.l1_caches:
        check(
            cache.occupancy() <= cache.num_lines,
            f"{cache.name} over capacity",
        )
    # Directory agreement: total resident copies equals cache occupancy sum
    # (perfect caches install nothing).
    if not system.spec.perfect_l1:
        resident = sum(c.occupancy() for c in system.l1_caches)
        check(
            system.l1_directory.total_copies() == resident,
            f"directory copies {system.l1_directory.total_copies()} != "
            f"resident lines {resident}",
        )

    # Design-implied replication bounds.
    if system.spec.kind == DesignKind.DCL1 and system.geometry is not None:
        z = system.geometry.num_clusters
        check(
            res.mean_replicas <= z + 1e-9,
            f"mean replicas {res.mean_replicas:.2f} exceed cluster bound {z}",
        )
        if z == 1:
            check(
                res.replication_ratio == 0.0,
                "fully shared design observed replicated misses",
            )
    if system.spec.kind == DesignKind.SINGLE_L1:
        check(res.replication_ratio == 0.0, "single L1 cannot replicate")

    # Utilizations are fractions.
    for name, value in (
        ("l1_port_util_max", res.l1_port_util_max),
        ("core_reply_link_util_max", res.core_reply_link_util_max),
        ("dram_util_mean", res.dram_util_mean),
    ):
        check(0.0 <= value <= 1.0, f"{name} out of [0,1]: {value}")

    return findings


def live_audit(system) -> List[str]:
    """Invariants that must hold mid-run (the continuous audit subset).

    Unlike :func:`audit` this never assumes the system has drained, so the
    sanitizer can call it while requests are still in flight.
    """
    findings: List[str] = []
    if system.outstanding < 0:
        findings.append(f"outstanding request count went negative ({system.outstanding})")
    for cache in system.l1_caches:
        occ = cache.occupancy()
        if occ > cache.num_lines:
            findings.append(f"{cache.name} over capacity ({occ} > {cache.num_lines})")
    if not system.spec.perfect_l1:
        resident = sum(c.occupancy() for c in system.l1_caches)
        copies = system.l1_directory.total_copies()
        if copies != resident:
            findings.append(
                f"directory copies {copies} != resident lines {resident}"
            )
    for mshr in system.l1_mshrs:
        if len(mshr) > mshr.num_entries:
            findings.append("L1-level MSHR file over capacity")
    for s in system.l2_slices:
        if len(s.mshr) > s.mshr.num_entries:
            findings.append(f"L2 slice {s.slice_id} MSHR file over capacity")
    return findings


def assert_clean(system) -> None:
    """Raise AssertionError listing every violated invariant."""
    findings = audit(system)
    if findings:
        raise AssertionError(
            "invariant violations:\n  " + "\n  ".join(findings)
        )


class GridValidationError(ValueError):
    """A sweep grid failed pre-flight validation.

    ``problems`` holds every violation found (validation does not stop at
    the first), so one failure report covers the whole grid.
    """

    def __init__(self, problems: Sequence[str]):
        self.problems: List[str] = list(problems)
        super().__init__(
            "invalid sweep grid:\n  " + "\n  ".join(self.problems)
        )


def validate_grid(
    points: Sequence[Tuple[object, object, object]],
    *,
    on_duplicate: str = "error",
) -> List[str]:
    """Pre-flight check of a resolved sweep grid; returns the cache keys.

    Each point must be a fully resolved ``(profile, spec, config)``
    triple (see :meth:`~repro.experiments.base.Runner.resolve_points`).
    Checks, accumulating *all* problems before raising:

    * shape and types — a 3-tuple of (:class:`AppProfile`,
      :class:`DesignSpec`, :class:`SimConfig`);
    * parameter sanity — ``scale > 0`` and ``max_events > 0`` (a zero or
      negative scale dies deep in trace synthesis otherwise);
    * cache-keyability — :func:`repro.sim.store.sim_cache_key` must
      derive, proving the point canonicalizes (and therefore pickles and
      serializes) cleanly;
    * duplicate collisions — two points identical *after normalization*
      (same ``sim_cache_key``) are reported by their colliding indices
      when ``on_duplicate="error"`` (the strict CLI/confirmer mode: a
      duplicated grid point is almost always a grid-construction bug).
      ``on_duplicate="collapse"`` skips that check for callers like
      :meth:`Runner.run_many` that deliberately collapse duplicates to
      one simulation.

    On any problem raises :class:`GridValidationError` listing all of
    them; otherwise returns one ``sim_cache_key`` per point, in order.
    """
    if on_duplicate not in ("error", "collapse"):
        raise ValueError(
            f"on_duplicate must be 'error' or 'collapse'; got {on_duplicate!r}"
        )
    # Local imports: validation is imported by the sanitizer at module
    # scope, and store/config/profile pull in numpy-heavy modules this
    # function alone needs.
    from repro.sim.config import SimConfig
    from repro.sim.store import sim_cache_key
    from repro.workloads.profile import AppProfile

    problems: List[str] = []
    keys: List[str] = []
    first_at: dict = {}
    for i, point in enumerate(points):
        if not (isinstance(point, tuple) and len(point) == 3):
            problems.append(
                f"point {i}: expected a (profile, spec, config) triple; "
                f"got {point!r}"
            )
            keys.append("")
            continue
        profile, spec, cfg = point
        bad_type = False
        for value, cls, role in (
            (profile, AppProfile, "profile"),
            (spec, DesignSpec, "spec"),
            (cfg, SimConfig, "config"),
        ):
            if not isinstance(value, cls):
                problems.append(
                    f"point {i}: {role} is {type(value).__name__}, "
                    f"expected {cls.__name__}"
                )
                bad_type = True
        if bad_type:
            keys.append("")
            continue
        if not cfg.scale > 0:
            problems.append(
                f"point {i} ({profile.name}/{spec.label}): "
                f"scale must be > 0; got {cfg.scale!r}"
            )
        if not cfg.max_events > 0:
            problems.append(
                f"point {i} ({profile.name}/{spec.label}): "
                f"max_events must be > 0; got {cfg.max_events!r}"
            )
        try:
            key = sim_cache_key(profile, spec, cfg)
        except TypeError as exc:
            problems.append(
                f"point {i} ({profile.name}/{spec.label}): cannot "
                f"canonicalize for the cache key / pool boundary: {exc}"
            )
            keys.append("")
            continue
        keys.append(key)
        if on_duplicate == "error":
            j = first_at.setdefault(key, i)
            if j != i:
                problems.append(
                    f"point {i} ({profile.name}/{spec.label}) duplicates "
                    f"point {j} after normalization (identical "
                    f"sim_cache_key {key[:12]}…)"
                )
    if problems:
        raise GridValidationError(problems)
    return keys


def audit_slim_transport(
    expected_key: str,
    worker_key: str,
    worker_fingerprint_sha256: str,
    result,
) -> List[str]:
    """Audit one slim-transport rehydration; empty list means trustworthy.

    ``expected_key`` is the parent-side :func:`~repro.sim.store.sim_cache_key`
    (from the :func:`validate_grid` pre-flight), ``worker_key`` and
    ``worker_fingerprint_sha256`` are what the pool worker reported, and
    ``result`` is the parent's disk read-back for ``worker_key`` (``None``
    on a cache miss).  Checks, accumulating all problems:

    * key agreement — worker and parent derived the same key from the
      same frozen point (anything else means the point mutated in
      transit or the two sides disagree on canonicalization);
    * rehydration — the worker-persisted entry was readable;
    * bit-identity — the rehydrated result's ``fingerprint_sha256()``
      matches what the worker computed from the in-memory original.
    """
    problems: List[str] = []
    if worker_key != expected_key:
        problems.append(
            f"worker cache key {worker_key[:12]}… != parent key "
            f"{expected_key[:12]}… for the same point"
        )
    if result is None:
        problems.append(
            f"no readable cache entry for worker key {worker_key[:12]}…"
        )
    elif result.fingerprint_sha256() != worker_fingerprint_sha256:
        problems.append(
            f"rehydrated result fingerprint differs from the worker's "
            f"({result.fingerprint_sha256()[:12]}… != "
            f"{worker_fingerprint_sha256[:12]}…)"
        )
    return problems
