"""Invariant auditing — post-run and continuous.

:func:`audit` inspects a finished :class:`~repro.sim.system.GPUSystem` and
checks the structural invariants a correct run must satisfy — request
conservation, stats consistency, directory/capacity agreement, replication
bounds implied by the design.  Tests use it after every integration run;
it is also handy when developing new designs or workload models
(``simulate(..., )`` then ``audit(system)`` in a debugger).

:func:`live_audit` is the *continuous* subset: invariants that must hold
at every instant of a run, not only at drain.  The SimSanitizer
(``SimConfig(sanitize=True)``, see :mod:`repro.analysis.sanitizer`) calls
it periodically mid-run, so a corrupted cache set or a diverged directory
is reported thousands of events after the bug — not after a livelocked
500M-event budget.

Each violated invariant produces one human-readable finding; an empty list
means the run is clean.  :func:`assert_clean` raises on findings.
"""

from __future__ import annotations

from typing import List

from repro.core.designs import DesignKind


def audit(system) -> List[str]:
    """Return a list of invariant violations for a completed system."""
    findings: List[str] = []
    res = system.result

    def check(ok: bool, message: str) -> None:
        if not ok:
            findings.append(message)

    check(system._ran, "system has not run")
    check(system.outstanding == 0, f"{system.outstanding} requests still outstanding")
    check(system.engine.empty(), "event queue not drained")
    check(res.cycles >= 0, "negative cycle count")

    # Request conservation: everything the trace contains was issued.
    check(
        res.total_requests == system.workload.total_accesses,
        f"issued {res.total_requests} != trace {system.workload.total_accesses}",
    )
    # Every load got a round-trip measurement.
    check(
        res.load_rtt_count == res.loads,
        f"rtt measured for {res.load_rtt_count} of {res.loads} loads",
    )

    # Cores drained.
    for core in system.cores:
        check(core.idle, f"core {core.core_id} still has work")
        check(
            core.active_wavefronts == 0,
            f"core {core.core_id} has {core.active_wavefronts} live wavefronts",
        )

    # Node queues drained (finite-Q1 mode).
    if system._node_waiters is not None:
        for n, waiters in enumerate(system._node_waiters):
            check(not waiters, f"DC-L1 node {n} still has parked requests")

    # MSHRs drained.
    for i, mshr in enumerate(system.l1_mshrs):
        check(mshr.drained(), f"L1-level MSHR {i} not drained")
    for s in system.l2_slices:
        check(s.mshr.drained(), f"L2 slice {s.slice_id} MSHR not drained")

    # Cache-level stats consistency.
    l1 = res.l1
    check(l1.accesses == l1.hits + l1.misses, "L1 stats do not balance")
    check(
        l1.replicated_misses <= l1.misses,
        "more replicated misses than misses",
    )
    if not system.spec.perfect_l1:
        # Perfect caches hit without evicting; real ones write-evict.
        check(l1.store_hits == l1.write_evicts, "write-evict accounting broken")

    # Capacity invariants.
    for cache in system.l1_caches:
        check(
            cache.occupancy() <= cache.num_lines,
            f"{cache.name} over capacity",
        )
    # Directory agreement: total resident copies equals cache occupancy sum
    # (perfect caches install nothing).
    if not system.spec.perfect_l1:
        resident = sum(c.occupancy() for c in system.l1_caches)
        check(
            system.l1_directory.total_copies() == resident,
            f"directory copies {system.l1_directory.total_copies()} != "
            f"resident lines {resident}",
        )

    # Design-implied replication bounds.
    if system.spec.kind == DesignKind.DCL1 and system.geometry is not None:
        z = system.geometry.num_clusters
        check(
            res.mean_replicas <= z + 1e-9,
            f"mean replicas {res.mean_replicas:.2f} exceed cluster bound {z}",
        )
        if z == 1:
            check(
                res.replication_ratio == 0.0,
                "fully shared design observed replicated misses",
            )
    if system.spec.kind == DesignKind.SINGLE_L1:
        check(res.replication_ratio == 0.0, "single L1 cannot replicate")

    # Utilizations are fractions.
    for name, value in (
        ("l1_port_util_max", res.l1_port_util_max),
        ("core_reply_link_util_max", res.core_reply_link_util_max),
        ("dram_util_mean", res.dram_util_mean),
    ):
        check(0.0 <= value <= 1.0, f"{name} out of [0,1]: {value}")

    return findings


def live_audit(system) -> List[str]:
    """Invariants that must hold mid-run (the continuous audit subset).

    Unlike :func:`audit` this never assumes the system has drained, so the
    sanitizer can call it while requests are still in flight.
    """
    findings: List[str] = []
    if system.outstanding < 0:
        findings.append(f"outstanding request count went negative ({system.outstanding})")
    for cache in system.l1_caches:
        occ = cache.occupancy()
        if occ > cache.num_lines:
            findings.append(f"{cache.name} over capacity ({occ} > {cache.num_lines})")
    if not system.spec.perfect_l1:
        resident = sum(c.occupancy() for c in system.l1_caches)
        copies = system.l1_directory.total_copies()
        if copies != resident:
            findings.append(
                f"directory copies {copies} != resident lines {resident}"
            )
    for mshr in system.l1_mshrs:
        if len(mshr) > mshr.num_entries:
            findings.append("L1-level MSHR file over capacity")
    for s in system.l2_slices:
        if len(s.mshr) > s.mshr.num_entries:
            findings.append(f"L2 slice {s.slice_id} MSHR file over capacity")
    return findings


def assert_clean(system) -> None:
    """Raise AssertionError listing every violated invariant."""
    findings = audit(system)
    if findings:
        raise AssertionError(
            "invariant violations:\n  " + "\n  ".join(findings)
        )
