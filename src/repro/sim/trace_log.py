"""Per-request timeline tracing.

For debugging and for latency breakdowns beyond the mean (the paper's
Section VIII latency analysis), the system can record a sampled timeline
of every Nth load: issue time, completion time, hit level and route.
Tracing is off by default (zero overhead); enable it by attaching a
:class:`RequestTrace` to a built :class:`~repro.sim.system.GPUSystem`
before ``run()``::

    system = GPUSystem(app, spec, cfg)
    trace = RequestTrace.attach(system, sample_every=16)
    system.run()
    trace.percentiles([0.5, 0.99])

The trace wraps the system's ``_complete`` callback, so it needs no
simulator support and composes with every design.
"""

from __future__ import annotations

import csv
import math
import pathlib
from typing import Dict, List, Sequence

from repro.gpu.request import AccessKind


class TraceRecord:
    """One sampled request's lifetime."""

    __slots__ = ("core_id", "line", "kind", "issue_time", "complete_time",
                 "l1_hit", "l2_hit", "dcl1_id")

    def __init__(self, req, complete_time: float):
        self.core_id = req.core_id
        self.line = req.line
        self.kind = int(req.kind)
        self.issue_time = req.issue_time
        self.complete_time = complete_time
        self.l1_hit = req.l1_hit
        self.l2_hit = req.l2_hit
        self.dcl1_id = req.dcl1_id

    @property
    def latency(self) -> float:
        return self.complete_time - self.issue_time

    @property
    def served_at(self) -> str:
        """Which level supplied the data."""
        if self.l1_hit:
            return "L1"
        if self.l2_hit:
            return "L2"
        return "DRAM"


class RequestTrace:
    """Sampled request-completion log for one simulation."""

    def __init__(self, sample_every: int = 1, kinds: Sequence[int] = (AccessKind.LOAD,)):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.kinds = {int(k) for k in kinds}
        self.records: List[TraceRecord] = []
        self._seen = 0

    @classmethod
    def attach(cls, system, sample_every: int = 1,
               kinds: Sequence[int] = (AccessKind.LOAD,)) -> "RequestTrace":
        """Hook a new trace into ``system`` (before ``run()``)."""
        trace = cls(sample_every, kinds)
        original = system._complete

        def traced_complete(req):
            trace.observe(req, system.engine.now)
            original(req)

        system._complete = traced_complete
        return trace

    def observe(self, req, now: float) -> None:
        if int(req.kind) not in self.kinds:
            return
        self._seen += 1
        if self._seen % self.sample_every == 0:
            self.records.append(TraceRecord(req, now))

    # -- analysis ---------------------------------------------------------

    def latencies(self) -> List[float]:
        return [r.latency for r in self.records]

    def percentiles(self, fractions: Sequence[float]) -> Dict[float, float]:
        """Latency percentiles (nearest-rank) over the sampled records."""
        lats = sorted(self.latencies())
        if not lats:
            raise ValueError("no records traced")
        out = {}
        for f in fractions:
            if not 0.0 <= f <= 1.0:
                raise ValueError(f"percentile {f} out of [0,1]")
            idx = min(len(lats) - 1, max(0, math.ceil(f * len(lats)) - 1))
            out[f] = lats[idx]
        return out

    def served_at_counts(self) -> Dict[str, int]:
        """How many sampled requests were served at each level."""
        out = {"L1": 0, "L2": 0, "DRAM": 0}
        for r in self.records:
            out[r.served_at] += 1
        return out

    def to_csv(self, path) -> pathlib.Path:
        """Dump the sampled records for external analysis."""
        path = pathlib.Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["core", "line", "kind", "issue", "complete", "latency", "served_at"]
            )
            for r in self.records:
                writer.writerow(
                    [r.core_id, r.line, r.kind, f"{r.issue_time:.1f}",
                     f"{r.complete_time:.1f}", f"{r.latency:.1f}", r.served_at]
                )
        return path

    def __len__(self) -> int:
        return len(self.records)
