"""Simulation results.

A :class:`SimResult` captures everything the paper's figures consume:
throughput (IPC), L1-level and L2 cache statistics, the replication
metrics, port/link utilizations, NoC flit-hop counts (for dynamic energy),
round-trip latency, and raw traffic counters.  Results are plain data —
they can be compared, normalized and tabulated without re-running the
simulator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields as dc_fields
from typing import Dict, List, Tuple

from repro.cache.cache import CacheStats

# Wall-clock observability fields: reported on results, never part of a
# run's identity (fingerprint/serialization/equality).
_OBSERVABILITY_FIELDS = ("wall_time_s", "events_per_s")

#: Public name for the observability exclusion list.  SimPure (SP403) and
#: the dynamic purity confirmer read this to know which SimResult fields
#: are *allowed* to differ between replays of the same configuration.
NON_IDENTITY_FIELDS = _OBSERVABILITY_FIELDS


def identity_manifest() -> Dict[str, Tuple[str, ...]]:
    """Declared identity domain of :class:`SimResult`, derived from the
    dataclass ``compare`` flags so it cannot drift from the class itself.

    Returns ``{"identity": (...), "non_identity": (...)}`` where
    ``identity`` fields participate in ``__eq__``/``fingerprint()``/
    ``to_jsonable()`` and ``non_identity`` fields are observation-only.
    SimPure cross-checks ``non_identity`` against
    :data:`NON_IDENTITY_FIELDS` (SP403) and the confirmer asserts that
    only these fields may vary across replays.
    """
    identity = tuple(f.name for f in dc_fields(SimResult) if f.compare)
    non_identity = tuple(f.name for f in dc_fields(SimResult) if not f.compare)
    return {"identity": identity, "non_identity": non_identity}


@dataclass
class SimResult:
    """Outcome of one (application, design) simulation."""

    app: str = ""
    design: str = ""

    # Throughput
    cycles: float = 0.0
    instructions: int = 0

    # L1-level (private L1s or DC-L1s, aggregated)
    l1: CacheStats = field(default_factory=CacheStats)
    replication_ratio: float = 0.0
    mean_replicas: float = 0.0

    # L2 (aggregated over slices)
    l2: CacheStats = field(default_factory=CacheStats)

    # Utilizations (fractions of the run's cycles)
    l1_port_util_max: float = 0.0
    l1_port_util_mean: float = 0.0
    core_reply_link_util_max: float = 0.0
    dram_util_mean: float = 0.0

    # Traffic
    loads: int = 0
    stores: int = 0
    atomics: int = 0
    bypasses: int = 0
    dram_accesses: int = 0
    dram_writebacks: int = 0
    # (flit_hops, link_mm, frequency_multiplier) per logical NoC
    noc_traffic: List[Tuple[int, float, float]] = field(default_factory=list)

    # Latency
    load_rtt_sum: float = 0.0
    load_rtt_count: int = 0

    # MSHR behaviour
    mshr_primary: int = 0
    mshr_secondary: int = 0
    mshr_stalls: int = 0
    # Finite-Q1 backpressure events (0 under the default infinite queues)
    node_queue_stalls: int = 0
    # Fills dropped by the streaming-bypass filter (0 unless l1_bypass)
    bypassed_fills: int = 0

    # Observability (host wall clock, filled in by GPUSystem.run).  These
    # are NOT part of the simulation's identity: they vary run to run, so
    # they are excluded from __eq__, fingerprint() and to_jsonable() —
    # cache entries written before/after this field existed stay
    # interchangeable and CACHE_SCHEMA_VERSION is unaffected.
    wall_time_s: float = field(default=0.0, compare=False)
    events_per_s: float = field(default=0.0, compare=False)

    # -- derived ----------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Instructions per cycle (the paper's throughput metric)."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.l2.miss_rate

    @property
    def load_rtt_mean(self) -> float:
        """Mean round trip (issue → data back) of load requests."""
        if self.load_rtt_count == 0:
            return 0.0
        return self.load_rtt_sum / self.load_rtt_count

    @property
    def total_requests(self) -> int:
        return self.loads + self.stores + self.atomics + self.bypasses

    @property
    def total_flit_hops(self) -> int:
        return sum(hops for hops, _mm, _f in self.noc_traffic)

    def speedup_vs(self, baseline: "SimResult") -> float:
        """IPC relative to a baseline run of the same application."""
        if baseline.app and self.app and baseline.app != self.app:
            raise ValueError(
                f"speedup across different apps: {self.app} vs {baseline.app}"
            )
        if baseline.ipc == 0:
            raise ZeroDivisionError("baseline IPC is zero")
        return self.ipc / baseline.ipc

    def miss_rate_vs(self, baseline: "SimResult") -> float:
        """L1 miss rate normalized to a baseline run (Fig. 4b/8a/16)."""
        if baseline.l1_miss_rate == 0:
            return 1.0 if self.l1_miss_rate == 0 else float("inf")
        return self.l1_miss_rate / baseline.l1_miss_rate

    def to_jsonable(self) -> Dict[str, object]:
        """Full lossless serialization (the persistent result cache).

        Unlike :meth:`as_dict` (a flat human-facing summary), this
        round-trips *every* field: loading the output back through
        :meth:`from_jsonable` yields a result whose :meth:`fingerprint`
        is bit-identical to the original's.
        """
        data = asdict(self)
        data["l1"] = self.l1.to_dict()
        data["l2"] = self.l2.to_dict()
        data["noc_traffic"] = [list(t) for t in self.noc_traffic]
        for name in _OBSERVABILITY_FIELDS:
            data.pop(name, None)
        return data

    @classmethod
    def from_jsonable(cls, data: dict) -> "SimResult":
        """Inverse of :meth:`to_jsonable`; unknown/missing fields raise
        (the persistent cache treats that as a miss, not a crash)."""
        fields = dict(data)
        fields["l1"] = CacheStats.from_dict(fields["l1"])
        fields["l2"] = CacheStats.from_dict(fields["l2"])
        fields["noc_traffic"] = [tuple(t) for t in fields["noc_traffic"]]
        return cls(**fields)

    def as_dict(self) -> Dict[str, float]:
        """Flat summary for tabulation/serialization."""
        return {
            "app": self.app,
            "design": self.design,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "l1_miss_rate": self.l1_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "replication_ratio": self.replication_ratio,
            "mean_replicas": self.mean_replicas,
            "l1_port_util_max": self.l1_port_util_max,
            "core_reply_link_util_max": self.core_reply_link_util_max,
            "load_rtt_mean": self.load_rtt_mean,
            "dram_accesses": self.dram_accesses,
            "total_flit_hops": self.total_flit_hops,
        }

    def fingerprint(self) -> Dict[str, object]:
        """Every scalar field, nested structures flattened to dotted keys.

        This is the *bit-exact* identity of a run (used by SimRace's
        ``--confirm`` replay diffing): two runs of the same config are the
        same simulation iff their fingerprints are equal — no tolerance,
        no rounding.
        """
        flat: Dict[str, object] = {}

        def walk(prefix: str, val: object) -> None:
            if isinstance(val, dict):
                for k in sorted(val):
                    walk(f"{prefix}.{k}" if prefix else str(k), val[k])
            elif isinstance(val, (list, tuple)):
                for i, v in enumerate(val):
                    walk(f"{prefix}[{i}]", v)
            elif hasattr(val, "__slots__"):
                # Plain accounting objects (CacheStats): flatten their
                # slots — comparing by object identity would hide drift.
                for slot in val.__slots__:
                    walk(f"{prefix}.{slot}", getattr(val, slot))
            else:
                flat[prefix] = val

        data = asdict(self)
        for name in _OBSERVABILITY_FIELDS:
            data.pop(name, None)
        walk("", data)
        return flat

    def fingerprint_sha256(self) -> str:
        """SHA-256 of the canonical JSON of :meth:`fingerprint`.

        A compact transport- and baseline-friendly identity: equal hashes
        mean bit-identical fingerprints.  Used by SimFleet's slim result
        transport (the worker ships the hash, the parent audits the
        rehydrated result against it) and by the perf-baseline recorders.
        """
        blob = json.dumps(
            self.fingerprint(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __str__(self) -> str:
        return (
            f"[{self.app} @ {self.design}] ipc={self.ipc:.3f} "
            f"l1_miss={self.l1_miss_rate:.1%} repl={self.replication_ratio:.1%} "
            f"cycles={self.cycles:.0f}"
        )
