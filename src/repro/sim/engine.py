"""Discrete-event engine.

A deliberately small event loop: a binary heap of ``(time, priority, seq,
callback, payload)`` tuples.  Timestamp ties are broken first by the
optional integer ``priority`` (lower runs first; default 0) and then by
the monotonically increasing ``seq`` (FIFO among simultaneous events),
which keeps every simulation bit-reproducible for a given workload seed.

``priority`` exists so that handlers with a *semantically required*
same-cycle order (e.g. release a queue credit before the co-scheduled
acquire sees it) can declare that order explicitly instead of relying on
the textual order of ``schedule()`` calls — the fragile implicit contract
SimRace (:mod:`repro.analysis.simrace`) exists to police.

Hot-path architecture (SimTurbo)
--------------------------------
The engine serves two masters: multi-hundred-thousand-event production
runs that should spend every cycle in model callbacks, and instrumented
diagnostic runs (sanitizer / watchdog / shadow-shuffle / profiler) that
trade speed for observability.  The split is resolved **once, at attach
time**, never per event:

* :meth:`schedule` is the lean fast path — validate, push, bump seq.
  :meth:`attach_sanitizer` hot-swaps in :meth:`_schedule_checked`, a
  slow-path wrapper that additionally flags scheduling after the queue
  drained; detaching (``attach_sanitizer(None)``) restores the fast one.
* :meth:`run` and :meth:`run_until` both funnel into :meth:`_drain`, the
  single instrumentation-dispatch point.  It picks exactly one drain
  loop (shuffle > watchdog > profiler > plain) so ``run_until`` gets the
  same instrumentation as ``run`` and the event-budget check lives in
  one place instead of four copy-pasted loops.
* Every drain loop localizes the heap, ``heappop`` and the event counter
  and flushes the counter back in a ``finally`` — exceptions (budget,
  stall) never lose the count.

The engine also implements SimRace's dynamic half: constructing it with a
``shuffle_seed`` enables *shadow shuffle* mode, where each batch of events
sharing one ``(time, priority)`` key has its distinct-handler blocks
deterministically permuted before execution (FIFO order is preserved
*within* each handler, and across different priorities).  A simulation
whose results change under shuffle depends on accidental schedule-call
order — a same-cycle ordering hazard.  Co-scheduled handler pairs are
recorded in :attr:`Engine.batch_pairs` for attribution.

The engine knows nothing about GPUs; :mod:`repro.sim.system` schedules
request-lifecycle callbacks onto it.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

_INF = math.inf
_heappush = heapq.heappush
_heappop = heapq.heappop

# SimHeat hot-function manifest: functions in this module that run once
# per event on production runs and are therefore held to the hot-path
# hygiene rules (SH611-SH615).  The diagnostic loops (_drain_shuffled,
# _drain_watched, _drain_profiled*) are deliberately absent — they trade
# speed for observability by design.
SIMHEAT_HOT_FUNCTIONS = ("Engine.schedule", "Engine._drain_plain")


class Engine:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self, max_events: int = 500_000_000, shuffle_seed: Optional[int] = None):
        self._heap: list = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
        self.max_events = max_events
        # SimSanitizer hooks (see repro.analysis.sanitizer): when a ledger
        # is attached, scheduling after the queue drained is flagged as a
        # lifecycle bug instead of silently re-animating the simulation.
        # The check lives in _schedule_checked, installed over schedule()
        # by attach_sanitizer so uninstrumented runs never pay for it.
        self._sanitizer = None
        self._drained = False
        # SimRace shadow-shuffle mode (see repro.analysis.simrace): a
        # seeded RNG that permutes same-(time, priority) handler blocks.
        self._shuffle_rng = random.Random(shuffle_seed) if shuffle_seed is not None else None
        self.shuffled_batches = 0
        # (handler_a, handler_b) qualname pairs observed co-scheduled in
        # one batch -> occurrence count.  Only populated in shuffle mode.
        self.batch_pairs: Dict[Tuple[str, str], int] = {}
        # Stall watchdog (see repro.sim.watchdog): observation-only
        # progress monitor; _drain dispatches to _drain_watched when attached.
        self._watchdog = None
        # Per-handler event profiler (see repro.sim.profiler).
        self._profiler = None

    def attach_sanitizer(self, ledger) -> None:
        """Attach a :class:`repro.analysis.sanitizer.ResourceLedger`.

        Installs the slow-path :meth:`_schedule_checked` over
        :meth:`schedule` so the scheduled-after-drain check is only ever
        evaluated on instrumented runs; passing ``None`` detaches the
        ledger and restores the branch-free fast path.
        """
        self._sanitizer = ledger
        if ledger is not None:
            self.schedule = self._schedule_checked  # type: ignore[method-assign]
        else:
            self.__dict__.pop("schedule", None)

    def attach_watchdog(self, watchdog) -> None:
        """Attach a :class:`repro.sim.watchdog.StallWatchdog`."""
        self._watchdog = watchdog

    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.sim.profiler.EventProfiler`.

        The profiled drain loop brackets every callback with the
        profiler's clock and accumulates per-handler counts/self-time.
        Event order (and therefore every simulation result) is identical
        to the plain loop.  Pass ``None`` to detach.
        """
        self._profiler = profiler

    def schedule(
        self,
        time: float,
        callback: Callable[[Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(payload)`` to run at simulated ``time``.

        ``priority`` breaks timestamp ties (lower runs first); equal
        priorities fall back to FIFO insertion order.  Pass it only when
        the same-cycle order against another handler is a semantic
        requirement of the model — it documents (and enforces) the order,
        and exempts the pair from SimRace's accidental-order findings.

        Scheduling in the past is a modelling bug and raises immediately.
        So does a NaN or infinite timestamp: NaN compares False against
        everything (a bare ``time < now`` check silently admits it) and
        would corrupt the heap's ordering invariant for every later event.
        The chained comparison below rejects past, NaN and +/-inf times in
        one branch on the hot path.
        """
        if not (self.now <= time < _INF):
            raise ValueError(
                f"cannot schedule event at {time!r} (now={self.now}): "
                "event times must be finite and not in the past"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (time, priority, seq, callback, payload))

    def _schedule_checked(
        self,
        time: float,
        callback: Callable[[Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> None:
        """Sanitizer slow path for :meth:`schedule` (same contract), plus
        the scheduled-after-drain lifecycle check."""
        if not (self.now <= time < _INF):
            raise ValueError(
                f"cannot schedule event at {time!r} (now={self.now}): "
                "event times must be finite and not in the past"
            )
        if self._drained:
            self._sanitizer.scheduled_after_drain(time, callback, payload)
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (time, priority, seq, callback, payload))

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(payload)`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback, payload, priority)

    def empty(self) -> bool:
        """True when no events remain."""
        return not self._heap

    def run(self) -> float:
        """Drain the event queue; returns the final simulated time."""
        return self._drain(_INF)

    def run_until(self, deadline: float) -> float:
        """Process events with timestamps <= ``deadline``; returns current time.

        Routed through the same instrumented dispatch as :meth:`run`, so
        an attached watchdog / shuffle RNG / profiler observes deadline
        runs too (they used to be silently bypassed).
        """
        self._drain(deadline)
        if self.now < deadline:
            self.now = deadline
        return self.now

    # --------------------------------------------------------------- drain

    def _drain(self, deadline: float) -> float:
        """Single instrumentation-dispatch point for all drain loops.

        Exactly one loop runs: shadow shuffle wins over the watchdog
        (shuffle replays are short diagnostic runs), the watchdog over
        the profiler, and the branch-free plain loop is the default.
        The drain flag is maintained in a ``finally`` so every exit path
        (drain, deadline stop, budget error, stall error) agrees: an
        empty heap IS a full drain, a non-empty one is not.
        """
        try:
            if self._shuffle_rng is not None:
                self._drain_shuffled(deadline)
            elif self._watchdog is not None:
                self._drain_watched(deadline)
            elif self._profiler is not None:
                if getattr(self._profiler, "trace_alloc", False):
                    self._drain_profiled_alloc(deadline)
                else:
                    self._drain_profiled(deadline)
            else:
                self._drain_plain(deadline)
        finally:
            self._drained = not self._heap
        return self.now

    def _budget_error(self) -> RuntimeError:
        """The (single) event-budget failure for every drain loop."""
        return RuntimeError(
            f"event budget exceeded ({self.max_events}); "
            "likely a livelock in the request state machine"
        )

    def _drain_plain(self, deadline: float) -> None:
        """Branch-free production loop: pop, advance, call, count."""
        heap = self._heap
        pop = _heappop
        budget = self.max_events
        n = self.events_processed
        try:
            if deadline is _INF:
                while heap:
                    time, _prio, _seq, callback, payload = pop(heap)
                    self.now = time
                    callback(payload)
                    n += 1
                    if n > budget:
                        raise self._budget_error()
            else:
                while heap and heap[0][0] <= deadline:
                    time, _prio, _seq, callback, payload = pop(heap)
                    self.now = time
                    callback(payload)
                    n += 1
                    if n > budget:
                        raise self._budget_error()
        finally:
            self.events_processed = n

    def _drain_watched(self, deadline: float) -> None:
        """Drain the queue with the stall watchdog observing every event.

        Identical event order to the plain loop — the watchdog only counts
        (time advances reset the same-cycle counter; completions reset
        the window via :meth:`~repro.sim.watchdog.StallWatchdog.progress`)
        and raises ``SimStallError`` when a livelock signature appears.
        """
        heap = self._heap
        pop = _heappop
        watchdog = self._watchdog
        budget = self.max_events
        n = self.events_processed
        try:
            while heap and heap[0][0] <= deadline:
                time, _prio, _seq, callback, payload = pop(heap)
                if time > self.now:
                    watchdog.advanced(time)
                self.now = time
                callback(payload)
                n += 1
                watchdog.event(time)
                if n > budget:
                    raise self._budget_error()
        finally:
            self.events_processed = n

    def _drain_profiled(self, deadline: float) -> None:
        """Drain the queue timing every callback with the profiler clock.

        Same event order as the plain loop; only wall-clock bookkeeping
        is added, so results stay bit-identical to uninstrumented runs.
        """
        heap = self._heap
        pop = _heappop
        prof = self._profiler
        counts = prof.counts
        self_time = prof.self_time
        clock = prof.clock
        budget = self.max_events
        n = self.events_processed
        t_enter = clock()
        try:
            while heap and heap[0][0] <= deadline:
                time, _prio, _seq, callback, payload = pop(heap)
                self.now = time
                key = getattr(callback, "__func__", callback)
                t0 = clock()
                callback(payload)
                dt = clock() - t0
                if key in counts:
                    counts[key] += 1
                    self_time[key] += dt
                else:
                    counts[key] = 1
                    self_time[key] = dt
                n += 1
                if n > budget:
                    raise self._budget_error()
        finally:
            prof.wall_time += clock() - t_enter
            self.events_processed = n

    def _drain_profiled_alloc(self, deadline: float) -> None:
        """Profiled drain that additionally attributes heap allocation to
        handlers via :mod:`tracemalloc` (SimHeat's dynamic half of the
        SH611/SH614 rules).  The caller (``profile_simulation``) owns
        tracemalloc start/stop; this loop only samples the traced-memory
        counter around each callback.  Same event order as the plain loop.
        """
        import tracemalloc

        heap = self._heap
        pop = _heappop
        prof = self._profiler
        counts = prof.counts
        self_time = prof.self_time
        alloc_bytes = prof.alloc_bytes
        clock = prof.clock
        traced = tracemalloc.get_traced_memory
        budget = self.max_events
        n = self.events_processed
        t_enter = clock()
        try:
            while heap and heap[0][0] <= deadline:
                time, _prio, _seq, callback, payload = pop(heap)
                self.now = time
                key = getattr(callback, "__func__", callback)
                a0 = traced()[0]
                t0 = clock()
                callback(payload)
                dt = clock() - t0
                da = traced()[0] - a0
                if key in counts:
                    counts[key] += 1
                    self_time[key] += dt
                    alloc_bytes[key] += da
                else:
                    counts[key] = 1
                    self_time[key] = dt
                    alloc_bytes[key] = da
                n += 1
                if n > budget:
                    raise self._budget_error()
        finally:
            prof.wall_time += clock() - t_enter
            self.events_processed = n

    # ------------------------------------------------------- shadow shuffle

    def _drain_shuffled(self, deadline: float) -> None:
        """Drain the queue with same-(time, priority) handler blocks
        deterministically permuted (SimRace dynamic confirmer)."""
        heap = self._heap
        pop = _heappop
        budget = self.max_events
        n = self.events_processed
        try:
            while heap and heap[0][0] <= deadline:
                time, prio, _seq, callback, payload = pop(heap)
                batch: List[Tuple[Callable[[Any], None], Any]] = [(callback, payload)]
                # Events already queued at exactly this (time, priority) form an
                # unordered batch: their FIFO order is an accident of call order.
                # Exact float equality is intended here — only bit-identical
                # timestamps are simultaneous.
                while heap and heap[0][0] == time and heap[0][1] == prio:  # simlint: disable=SL103
                    _t, _p, _s, cb, pl = pop(heap)
                    batch.append((cb, pl))
                if len(batch) > 1:
                    batch = self._permute_batch(batch)
                self.now = time
                for cb, pl in batch:
                    cb(pl)
                    n += 1
                    if n > budget:
                        raise self._budget_error()
        finally:
            self.events_processed = n

    def _permute_batch(
        self, batch: List[Tuple[Callable[[Any], None], Any]]
    ) -> List[Tuple[Callable[[Any], None], Any]]:
        """Permute the distinct-handler blocks of one same-time batch.

        FIFO order is preserved *within* each handler (two pending
        ``_l1_access`` events stay in arrival order — self-pairs are
        resolved by arbitration in any real design and are out of
        SimRace's scope); only the relative order of *different* handlers
        is permuted, which is exactly the order an innocent refactor of
        ``schedule()`` call sites could change.
        """
        groups: Dict[Any, List[Tuple[Callable[[Any], None], Any]]] = {}
        order: List[Any] = []
        for cb, pl in batch:
            key = getattr(cb, "__func__", cb)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((cb, pl))
        if len(order) > 1:
            self._record_batch(order)
            self._shuffle_rng.shuffle(order)
            self.shuffled_batches += 1
        out: List[Tuple[Callable[[Any], None], Any]] = []
        for key in order:
            out.extend(groups[key])
        return out

    def _record_batch(self, handler_keys: List[Any]) -> None:
        names = sorted(getattr(k, "__qualname__", repr(k)) for k in handler_keys)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                pair = (a, b)
                self.batch_pairs[pair] = self.batch_pairs.get(pair, 0) + 1
