"""Discrete-event engine.

A deliberately small event loop: a binary heap of ``(time, seq, callback,
payload)`` tuples.  The monotonically increasing ``seq`` breaks timestamp
ties deterministically (FIFO among simultaneous events), which keeps every
simulation bit-reproducible for a given workload seed.

The engine knows nothing about GPUs; :mod:`repro.sim.system` schedules
request-lifecycle callbacks onto it.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

_INF = math.inf


class Engine:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self, max_events: int = 500_000_000):
        self._heap: list = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
        self.max_events = max_events
        # SimSanitizer hooks (see repro.analysis.sanitizer): when a ledger
        # is attached, scheduling after the queue drained is flagged as a
        # lifecycle bug instead of silently re-animating the simulation.
        self._sanitizer = None
        self._drained = False

    def attach_sanitizer(self, ledger) -> None:
        """Attach a :class:`repro.analysis.sanitizer.ResourceLedger`."""
        self._sanitizer = ledger

    def schedule(self, time: float, callback: Callable[[Any], None], payload: Any = None) -> None:
        """Schedule ``callback(payload)`` to run at simulated ``time``.

        Scheduling in the past is a modelling bug and raises immediately.
        So does a NaN or infinite timestamp: NaN compares False against
        everything (a bare ``time < now`` check silently admits it) and
        would corrupt the heap's ordering invariant for every later event.
        The chained comparison below rejects past, NaN and +/-inf times in
        one branch on the hot path.
        """
        if not (self.now <= time < _INF):
            raise ValueError(
                f"cannot schedule event at {time!r} (now={self.now}): "
                "event times must be finite and not in the past"
            )
        if self._sanitizer is not None and self._drained:
            self._sanitizer.scheduled_after_drain(time, callback, payload)
        heapq.heappush(self._heap, (time, self._seq, callback, payload))
        self._seq += 1

    def schedule_in(self, delay: float, callback: Callable[[Any], None], payload: Any = None) -> None:
        """Schedule ``callback(payload)`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback, payload)

    def empty(self) -> bool:
        """True when no events remain."""
        return not self._heap

    def run(self) -> float:
        """Drain the event queue; returns the final simulated time."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, callback, payload = pop(heap)
            self.now = time
            callback(payload)
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise RuntimeError(
                    f"event budget exceeded ({self.max_events}); "
                    "likely a livelock in the request state machine"
                )
        self._drained = True
        return self.now

    def run_until(self, deadline: float) -> float:
        """Process events with timestamps <= ``deadline``; returns current time."""
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= deadline:
            time, _seq, callback, payload = pop(heap)
            self.now = time
            callback(payload)
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise RuntimeError(f"event budget exceeded ({self.max_events})")
        if self.now < deadline:
            self.now = deadline
        return self.now
