"""Discrete-event engine.

A deliberately small event loop built around a *bucket queue*: a binary
heap of distinct ``(time, priority)`` keys plus a dict mapping each key to
its FIFO bucket of pending ``(callback, payload)`` entries (stored flat as
``[cb0, p0, cb1, p1, ...]``).  Timestamp ties are broken first by the
optional integer ``priority`` (lower runs first; default 0) and then by
insertion order — appending to the bucket *is* the FIFO tie-break, so the
old per-event ``seq`` counter is structural now instead of stored.  Every
simulation stays bit-reproducible for a given workload seed.

``priority`` exists so that handlers with a *semantically required*
same-cycle order (e.g. release a queue credit before the co-scheduled
acquire sees it) can declare that order explicitly instead of relying on
the textual order of ``schedule()`` calls — the fragile implicit contract
SimRace (:mod:`repro.analysis.simrace`) exists to police.

Ordering contract of the bucket queue
-------------------------------------
Identical to the flat ``(time, priority, seq)`` heap it replaced, with one
sharpened clause: events scheduled at the key *currently being drained*
open a fresh bucket that runs after the current one completes — exactly
where their higher seq numbers would have put them — but a handler must
never schedule at ``(now, priority < current)``, which the flat heap would
have interleaved into the current batch's remainder.  No handler in this
model can: every resource hop has strictly positive occupancy, so every
follow-on event lands strictly later or at equal time with equal-or-higher
priority.  The shadow-shuffle drain (SimRace's dynamic confirmer) exists
precisely to catch simulations that depend on same-cycle accidents.

Hot-path architecture (SimTurbo / SimVec)
-----------------------------------------
The engine serves two masters: multi-hundred-thousand-event production
runs that should spend every cycle in model callbacks, and instrumented
diagnostic runs (sanitizer / watchdog / shadow-shuffle / profiler) that
trade speed for observability.  The split is resolved **once, at attach
time**, never per event:

* :meth:`schedule` is the lean fast path — validate, bucket-append (one
  heap push per *distinct* key, not per event).  :meth:`attach_sanitizer`
  hot-swaps in :meth:`_schedule_checked`, a slow-path wrapper that
  additionally flags scheduling after the queue drained; detaching
  (``attach_sanitizer(None)``) restores the fast one.
* :meth:`run` and :meth:`run_until` both funnel into :meth:`_drain`, the
  single instrumentation-dispatch point.  It picks exactly one drain
  loop (shuffle > watchdog > profiler > batched > plain) so ``run_until``
  gets the same instrumentation as ``run`` and the event-budget check
  lives in one place instead of five copy-pasted loops.
* Every drain loop localizes the heap, the bucket dict and the event
  counter and flushes the counter back in a ``finally`` — exceptions
  (budget, stall) never lose the count, and a bucket interrupted
  mid-drain re-queues its unprocessed remainder so no event is lost.
* SimVec batched dispatch (:meth:`register_batch_handler`): maximal runs
  of consecutive same-callback entries within one bucket are handed to
  the handler's batch twin as a single call instead of one call per
  event.  A bucket *is* the same-``(time, priority)`` batch, so run
  detection is a flat scan — no heap peeking.

The engine also implements SimRace's dynamic half: constructing it with a
``shuffle_seed`` enables *shadow shuffle* mode, where each bucket has its
distinct-handler blocks deterministically permuted before execution (FIFO
order is preserved *within* each handler, and across different
priorities).  A simulation whose results change under shuffle depends on
accidental schedule-call order — a same-cycle ordering hazard.
Co-scheduled handler pairs are recorded in :attr:`Engine.batch_pairs` for
attribution.

The engine knows nothing about GPUs; :mod:`repro.sim.system` schedules
request-lifecycle callbacks onto it.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

_INF = math.inf
_heappush = heapq.heappush
_heappop = heapq.heappop

# SimHeat hot-function manifest: functions in this module that run once
# per event on production runs and are therefore held to the hot-path
# hygiene rules (SH611-SH615).  The diagnostic loops (_drain_shuffled,
# _drain_watched, _drain_profiled*) are deliberately absent — they trade
# speed for observability by design.
SIMHEAT_HOT_FUNCTIONS = (
    "Engine.schedule",
    "Engine.schedule_batch",
    "Engine._drain_plain",
    "Engine._drain_batched",
)


class Engine:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self, max_events: int = 500_000_000, shuffle_seed: Optional[int] = None):
        # Bucket queue: heap of distinct (time, priority) keys; dict of
        # key -> flat FIFO bucket [cb0, p0, cb1, p1, ...].  Invariant: a
        # key is in the heap iff it is in the dict (each exactly once).
        self._heap: list = []
        self._buckets: dict = {}
        self.now = 0.0
        self.events_processed = 0
        self.max_events = max_events
        # SimSanitizer hooks (see repro.analysis.sanitizer): when a ledger
        # is attached, scheduling after the queue drained is flagged as a
        # lifecycle bug instead of silently re-animating the simulation.
        # The check lives in _schedule_checked, installed over schedule()
        # by attach_sanitizer so uninstrumented runs never pay for it.
        self._sanitizer = None
        self._drained = False
        # SimRace shadow-shuffle mode (see repro.analysis.simrace): a
        # seeded RNG that permutes same-(time, priority) handler blocks.
        self._shuffle_rng = random.Random(shuffle_seed) if shuffle_seed is not None else None
        self.shuffled_batches = 0
        # (handler_a, handler_b) qualname pairs observed co-scheduled in
        # one batch -> occurrence count.  Only populated in shuffle mode.
        self.batch_pairs: Dict[Tuple[str, str], int] = {}
        # Stall watchdog (see repro.sim.watchdog): observation-only
        # progress monitor; _drain dispatches to _drain_watched when attached.
        self._watchdog = None
        # Per-handler event profiler (see repro.sim.profiler).
        self._profiler = None
        # SimVec batched dispatch: underlying handler function (__func__
        # of the scheduled bound method) -> batch twin taking a run view
        # ``(bucket, start, stop)``.  When non-empty (and no
        # instrumentation outranks it), _drain dispatches to
        # _drain_batched, which hands maximal same-bucket same-handler
        # runs to the twin as one call.
        self._batch_handlers: Dict[Any, Callable[[list, int, int], None]] = {}

    def attach_sanitizer(self, ledger) -> None:
        """Attach a :class:`repro.analysis.sanitizer.ResourceLedger`.

        Installs the slow-path :meth:`_schedule_checked` over
        :meth:`schedule` so the scheduled-after-drain check is only ever
        evaluated on instrumented runs; passing ``None`` detaches the
        ledger and restores the branch-free fast path.
        """
        self._sanitizer = ledger
        if ledger is not None:
            self.schedule = self._schedule_checked  # type: ignore[method-assign]
        else:
            self.__dict__.pop("schedule", None)

    def attach_watchdog(self, watchdog) -> None:
        """Attach a :class:`repro.sim.watchdog.StallWatchdog`."""
        self._watchdog = watchdog

    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.sim.profiler.EventProfiler`.

        The profiled drain loop brackets every callback with the
        profiler's clock and accumulates per-handler counts/self-time.
        Event order (and therefore every simulation result) is identical
        to the plain loop.  Pass ``None`` to detach.
        """
        self._profiler = profiler

    def schedule(
        self,
        time: float,
        callback: Callable[[Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(payload)`` to run at simulated ``time``.

        ``priority`` breaks timestamp ties (lower runs first); equal
        priorities fall back to FIFO insertion order.  Pass it only when
        the same-cycle order against another handler is a semantic
        requirement of the model — it documents (and enforces) the order,
        and exempts the pair from SimRace's accidental-order findings.

        Scheduling in the past is a modelling bug and raises immediately.
        So does a NaN or infinite timestamp: NaN compares False against
        everything (a bare ``time < now`` check silently admits it) and
        would corrupt the heap's ordering invariant for every later event.
        The chained comparison below rejects past, NaN and +/-inf times in
        one branch on the hot path.
        """
        if not (self.now <= time < _INF):
            raise ValueError(
                f"cannot schedule event at {time!r} (now={self.now}): "
                "event times must be finite and not in the past"
            )
        key = (time, priority)
        bucket = self._buckets.get(key)
        if bucket is None:
            # One two-entry bucket per distinct key; amortized across every
            # later same-key event, which is a pure dict-hit append.
            self._buckets[key] = [callback, payload]  # simheat: disable=SH611
            _heappush(self._heap, key)
        else:
            bucket.append(callback)
            bucket.append(payload)

    def _schedule_checked(
        self,
        time: float,
        callback: Callable[[Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> None:
        """Sanitizer slow path for :meth:`schedule` (same contract), plus
        the scheduled-after-drain lifecycle check."""
        if not (self.now <= time < _INF):
            raise ValueError(
                f"cannot schedule event at {time!r} (now={self.now}): "
                "event times must be finite and not in the past"
            )
        if self._drained:
            self._sanitizer.scheduled_after_drain(time, callback, payload)
        key = (time, priority)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [callback, payload]
            _heappush(self._heap, key)
        else:
            bucket.append(callback)
            bucket.append(payload)

    def register_batch_handler(
        self,
        callback: Callable[[Any], None],
        batch_callback: Callable[[list, int, int], None],
    ) -> None:
        """Register ``batch_callback`` as the batched twin of ``callback``.

        When events for ``callback`` are adjacent within one ``(time,
        priority)`` bucket, :meth:`_drain_batched` hands the whole run to
        ``batch_callback(bucket, start, stop)`` as one call instead of
        calling the scalar handler per event.  The run's payloads sit at
        the odd slots ``bucket[start + 1 : stop : 2]`` (flat ``[cb, p,
        cb, p, ...]`` storage); passing the bucket by reference keeps the
        drain loop from copying payloads into a scratch list.  The twin
        must read only its ``[start, stop)`` slice and be observationally
        identical to calling the scalar handler on each payload in FIFO
        order — including the relative order of every ``schedule()`` call
        it makes (insertion order breaks same-cycle ties).  Keyed by
        ``__func__`` so all bound methods of one function share a twin.
        """
        key = getattr(callback, "__func__", callback)
        self._batch_handlers[key] = batch_callback

    def clear_batch_handlers(self) -> None:
        """Drop every registered batch twin (scalar dispatch resumes)."""
        self._batch_handlers.clear()

    def schedule_batch(
        self,
        time: float,
        callback: Callable[[Any], None],
        payloads,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(p)`` for every ``p`` in ``payloads``.

        Exactly equivalent to one :meth:`schedule` call per payload in
        iteration order (consecutive bucket slots preserve FIFO), with the
        validation and bucket lookup hoisted out of the loop — the vector
        entry point for handlers that fan out many same-cycle events
        (wavefront seeding, batched completion re-issues).
        """
        if not (self.now <= time < _INF):
            raise ValueError(
                f"cannot schedule event at {time!r} (now={self.now}): "
                "event times must be finite and not in the past"
            )
        if self._sanitizer is not None:
            # Instrumented runs route through the (possibly hot-swapped)
            # checked schedule so the after-drain check still fires.
            sched = self.schedule
            for payload in payloads:
                sched(time, callback, payload, priority)
            return
        key = (time, priority)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = []  # simheat: disable=SH611
            self._buckets[key] = bucket
            _heappush(self._heap, key)
        append = bucket.append
        for payload in payloads:
            append(callback)
            append(payload)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(payload)`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback, payload, priority)

    def empty(self) -> bool:
        """True when no events remain."""
        return not self._heap

    def run(self) -> float:
        """Drain the event queue; returns the final simulated time."""
        return self._drain(_INF)

    def run_until(self, deadline: float) -> float:
        """Process events with timestamps <= ``deadline``; returns current time.

        Routed through the same instrumented dispatch as :meth:`run`, so
        an attached watchdog / shuffle RNG / profiler observes deadline
        runs too (they used to be silently bypassed).

        A non-finite ``deadline`` (``inf`` or ``nan``) means "no deadline"
        and gets :meth:`run` semantics: drain fully and leave ``now`` at
        the last event time.  It must never be assigned to ``now`` — that
        used to leave ``now = inf`` after ``run_until(float("inf"))``,
        permanently bricking the engine (every later ``schedule()`` raised
        "must be finite and not in the past").
        """
        if not (deadline < _INF) or deadline == -_INF:  # simlint: disable=SL103
            return self._drain(_INF)
        self._drain(deadline)
        if self.now < deadline:
            self.now = deadline
        return self.now

    # --------------------------------------------------------------- drain

    def _drain(self, deadline: float) -> float:
        """Single instrumentation-dispatch point for all drain loops.

        Exactly one loop runs: shadow shuffle wins over the watchdog
        (shuffle replays are short diagnostic runs), the watchdog over
        the profiler, the profiler over batched dispatch (instrumented
        runs want per-event attribution, and results are bit-identical
        either way), and the branch-free plain loop is the default.
        The drain flag is maintained in a ``finally`` so every exit path
        (drain, deadline stop, budget error, stall error) agrees: an
        empty heap IS a full drain, a non-empty one is not.
        """
        try:
            if self._shuffle_rng is not None:
                self._drain_shuffled(deadline)
            elif self._watchdog is not None:
                self._drain_watched(deadline)
            elif self._profiler is not None:
                if getattr(self._profiler, "trace_alloc", False):
                    self._drain_profiled_alloc(deadline)
                else:
                    self._drain_profiled(deadline)
            elif self._batch_handlers:
                self._drain_batched(deadline)
            else:
                self._drain_plain(deadline)
        finally:
            self._drained = not self._heap
        return self.now

    def _budget_error(self) -> RuntimeError:
        """The (single) event-budget failure for every drain loop."""
        return RuntimeError(
            f"event budget exceeded ({self.max_events}); "
            "likely a livelock in the request state machine"
        )

    def _requeue_remainder(self, key, bucket: list, i: int) -> None:
        """Re-queue the unprocessed tail of a bucket interrupted mid-drain
        (budget error, watchdog stall, a callback raising).  The remainder
        must run before anything scheduled at the same key *during* the
        interrupted bucket — those went into a fresh bucket — so it is
        prepended, restoring the exact pre-pop order.
        """
        rest = bucket[i:]
        existing = self._buckets.get(key)
        if existing is None:
            self._buckets[key] = rest
            _heappush(self._heap, key)
        else:
            existing[:0] = rest

    def _drain_plain(self, deadline: float) -> None:
        """Branch-free production loop: pop a bucket, advance, call each
        entry in FIFO order, count."""
        heap = self._heap
        buckets = self._buckets
        pop = _heappop
        budget = self.max_events
        n = self.events_processed
        key = None
        bucket: list = []  # simheat: disable=SH611
        i = size = 0
        try:
            # Value (not identity) check: callers construct their own
            # infinities, and float("inf") is not interned.  Comparing
            # against the +inf sentinel is exact by definition.
            if deadline == _INF:  # simlint: disable=SL103
                while heap:
                    key = heap[0]
                    bucket = buckets.pop(key)
                    pop(heap)
                    self.now = key[0]
                    i = 0
                    size = len(bucket)
                    while i < size:
                        callback = bucket[i]
                        payload = bucket[i + 1]
                        i += 2
                        callback(payload)
                        n += 1
                        if n > budget:
                            raise self._budget_error()
            else:
                while heap and heap[0][0] <= deadline:
                    key = heap[0]
                    bucket = buckets.pop(key)
                    pop(heap)
                    self.now = key[0]
                    i = 0
                    size = len(bucket)
                    while i < size:
                        callback = bucket[i]
                        payload = bucket[i + 1]
                        i += 2
                        callback(payload)
                        n += 1
                        if n > budget:
                            raise self._budget_error()
        finally:
            self.events_processed = n
            if i < size:
                self._requeue_remainder(key, bucket, i)

    def _drain_batched(self, deadline: float) -> None:
        """SimVec production loop: pop a bucket, hand maximal runs of
        consecutive same-callback entries to their registered batch twin,
        dispatch everything else scalar.

        Event order is identical to the plain loop by construction: a
        bucket is processed front to back, and a run only ever ends at
        the first entry with a different callback.  Batching is safe
        because no handler in this model schedules new work at ``(now,
        priority <= current)`` that could interleave *inside* a run —
        every hop has positive occupancy, and same-key events a twin
        schedules (e.g. completion re-issues) open a fresh bucket,
        landing after the current one exactly as their insertion order
        demands.  The event budget is checked per run (bounded overshoot
        of one run), which keeps the check out of the twins' inner loops.
        """
        heap = self._heap
        buckets = self._buckets
        pop = _heappop
        budget = self.max_events
        twins = self._batch_handlers
        n = self.events_processed
        key = None
        bucket: list = []  # simheat: disable=SH611
        i = size = 0
        try:
            while heap and heap[0][0] <= deadline:
                key = heap[0]
                bucket = buckets.pop(key)
                pop(heap)
                self.now = key[0]
                i = 0
                size = len(bucket)
                while i < size:
                    callback = bucket[i]
                    j = i + 2
                    while j < size and bucket[j] == callback:
                        j += 2
                    # Twinned handlers take singleton runs too: their
                    # fused per-item pipeline beats the scalar handler
                    # even for one event, and one code shape per handler
                    # keeps the contract simple.
                    twin = twins.get(getattr(callback, "__func__", callback))
                    if twin is None:
                        while i < j:
                            payload = bucket[i + 1]
                            i += 2
                            callback(payload)
                            n += 1
                    else:
                        # Advance past the run *before* the twin call so
                        # an exception inside it re-queues only the
                        # bucket's tail, not the half-processed run.
                        start = i
                        i = j
                        twin(bucket, start, j)
                        n += (j - start) >> 1
                    if n > budget:
                        raise self._budget_error()
        finally:
            self.events_processed = n
            if i < size:
                self._requeue_remainder(key, bucket, i)

    def _drain_watched(self, deadline: float) -> None:
        """Drain the queue with the stall watchdog observing every event.

        Identical event order to the plain loop — the watchdog only counts
        (time advances reset the same-cycle counter; completions reset
        the window via :meth:`~repro.sim.watchdog.StallWatchdog.progress`)
        and raises ``SimStallError`` when a livelock signature appears.
        """
        heap = self._heap
        buckets = self._buckets
        pop = _heappop
        watchdog = self._watchdog
        budget = self.max_events
        n = self.events_processed
        key = None
        bucket: list = []
        i = size = 0
        try:
            while heap and heap[0][0] <= deadline:
                key = heap[0]
                bucket = buckets.pop(key)
                pop(heap)
                time = key[0]
                if time > self.now:
                    watchdog.advanced(time)
                self.now = time
                i = 0
                size = len(bucket)
                while i < size:
                    callback = bucket[i]
                    payload = bucket[i + 1]
                    i += 2
                    callback(payload)
                    n += 1
                    watchdog.event(time)
                    if n > budget:
                        raise self._budget_error()
        finally:
            self.events_processed = n
            if i < size:
                self._requeue_remainder(key, bucket, i)

    def _drain_profiled(self, deadline: float) -> None:
        """Drain the queue timing every callback with the profiler clock.

        Same event order as the plain loop; only wall-clock bookkeeping
        is added, so results stay bit-identical to uninstrumented runs.
        """
        heap = self._heap
        buckets = self._buckets
        pop = _heappop
        prof = self._profiler
        counts = prof.counts
        self_time = prof.self_time
        clock = prof.clock
        budget = self.max_events
        n = self.events_processed
        key = None
        bucket: list = []
        i = size = 0
        t_enter = clock()
        try:
            while heap and heap[0][0] <= deadline:
                key = heap[0]
                bucket = buckets.pop(key)
                pop(heap)
                self.now = key[0]
                i = 0
                size = len(bucket)
                while i < size:
                    callback = bucket[i]
                    payload = bucket[i + 1]
                    i += 2
                    fn = getattr(callback, "__func__", callback)
                    t0 = clock()
                    callback(payload)
                    dt = clock() - t0
                    if fn in counts:
                        counts[fn] += 1
                        self_time[fn] += dt
                    else:
                        counts[fn] = 1
                        self_time[fn] = dt
                    n += 1
                    if n > budget:
                        raise self._budget_error()
        finally:
            prof.wall_time += clock() - t_enter
            self.events_processed = n
            if i < size:
                self._requeue_remainder(key, bucket, i)

    def _drain_profiled_alloc(self, deadline: float) -> None:
        """Profiled drain that additionally attributes heap allocation to
        handlers via :mod:`tracemalloc` (SimHeat's dynamic half of the
        SH611/SH614 rules).  The caller (``profile_simulation``) owns
        tracemalloc start/stop; this loop only samples the traced-memory
        counter around each callback.  Same event order as the plain loop.
        """
        import tracemalloc

        heap = self._heap
        buckets = self._buckets
        pop = _heappop
        prof = self._profiler
        counts = prof.counts
        self_time = prof.self_time
        alloc_bytes = prof.alloc_bytes
        clock = prof.clock
        traced = tracemalloc.get_traced_memory
        budget = self.max_events
        n = self.events_processed
        key = None
        bucket: list = []
        i = size = 0
        t_enter = clock()
        try:
            while heap and heap[0][0] <= deadline:
                key = heap[0]
                bucket = buckets.pop(key)
                pop(heap)
                self.now = key[0]
                i = 0
                size = len(bucket)
                while i < size:
                    callback = bucket[i]
                    payload = bucket[i + 1]
                    i += 2
                    fn = getattr(callback, "__func__", callback)
                    a0 = traced()[0]
                    t0 = clock()
                    callback(payload)
                    dt = clock() - t0
                    da = traced()[0] - a0
                    if fn in counts:
                        counts[fn] += 1
                        self_time[fn] += dt
                        alloc_bytes[fn] += da
                    else:
                        counts[fn] = 1
                        self_time[fn] = dt
                        alloc_bytes[fn] = da
                    n += 1
                    if n > budget:
                        raise self._budget_error()
        finally:
            prof.wall_time += clock() - t_enter
            self.events_processed = n
            if i < size:
                self._requeue_remainder(key, bucket, i)

    # ------------------------------------------------------- shadow shuffle

    def _drain_shuffled(self, deadline: float) -> None:
        """Drain the queue with same-(time, priority) handler blocks
        deterministically permuted (SimRace dynamic confirmer).

        A bucket *is* the unordered batch: its FIFO order is an accident
        of schedule-call order, which is exactly what the permutation is
        probing.
        """
        heap = self._heap
        buckets = self._buckets
        pop = _heappop
        budget = self.max_events
        n = self.events_processed
        try:
            while heap and heap[0][0] <= deadline:
                key = heap[0]
                bucket = buckets.pop(key)
                pop(heap)
                batch: List[Tuple[Callable[[Any], None], Any]] = [
                    (bucket[i], bucket[i + 1]) for i in range(0, len(bucket), 2)
                ]
                if len(batch) > 1:
                    batch = self._permute_batch(batch)
                self.now = key[0]
                for cb, pl in batch:
                    cb(pl)
                    n += 1
                    if n > budget:
                        raise self._budget_error()
        finally:
            self.events_processed = n

    def _permute_batch(
        self, batch: List[Tuple[Callable[[Any], None], Any]]
    ) -> List[Tuple[Callable[[Any], None], Any]]:
        """Permute the distinct-handler blocks of one same-time batch.

        FIFO order is preserved *within* each handler (two pending
        ``_l1_access`` events stay in arrival order — self-pairs are
        resolved by arbitration in any real design and are out of
        SimRace's scope); only the relative order of *different* handlers
        is permuted, which is exactly the order an innocent refactor of
        ``schedule()`` call sites could change.
        """
        groups: Dict[Any, List[Tuple[Callable[[Any], None], Any]]] = {}
        order: List[Any] = []
        for cb, pl in batch:
            key = getattr(cb, "__func__", cb)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((cb, pl))
        if len(order) > 1:
            self._record_batch(order)
            self._shuffle_rng.shuffle(order)
            self.shuffled_batches += 1
        out: List[Tuple[Callable[[Any], None], Any]] = []
        for key in order:
            out.extend(groups[key])
        return out

    def _record_batch(self, handler_keys: List[Any]) -> None:
        names = sorted(getattr(k, "__qualname__", repr(k)) for k in handler_keys)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                pair = (a, b)
                self.batch_pairs[pair] = self.batch_pairs.get(pair, 0) + 1
