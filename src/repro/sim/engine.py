"""Discrete-event engine.

A deliberately small event loop: a binary heap of ``(time, priority, seq,
callback, payload)`` tuples.  Timestamp ties are broken first by the
optional integer ``priority`` (lower runs first; default 0) and then by
the monotonically increasing ``seq`` (FIFO among simultaneous events),
which keeps every simulation bit-reproducible for a given workload seed.

``priority`` exists so that handlers with a *semantically required*
same-cycle order (e.g. release a queue credit before the co-scheduled
acquire sees it) can declare that order explicitly instead of relying on
the textual order of ``schedule()`` calls — the fragile implicit contract
SimRace (:mod:`repro.analysis.simrace`) exists to police.

The engine also implements SimRace's dynamic half: constructing it with a
``shuffle_seed`` enables *shadow shuffle* mode, where each batch of events
sharing one ``(time, priority)`` key has its distinct-handler blocks
deterministically permuted before execution (FIFO order is preserved
*within* each handler, and across different priorities).  A simulation
whose results change under shuffle depends on accidental schedule-call
order — a same-cycle ordering hazard.  Co-scheduled handler pairs are
recorded in :attr:`Engine.batch_pairs` for attribution.

The engine knows nothing about GPUs; :mod:`repro.sim.system` schedules
request-lifecycle callbacks onto it.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

_INF = math.inf


class Engine:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self, max_events: int = 500_000_000, shuffle_seed: Optional[int] = None):
        self._heap: list = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
        self.max_events = max_events
        # SimSanitizer hooks (see repro.analysis.sanitizer): when a ledger
        # is attached, scheduling after the queue drained is flagged as a
        # lifecycle bug instead of silently re-animating the simulation.
        self._sanitizer = None
        self._drained = False
        # SimRace shadow-shuffle mode (see repro.analysis.simrace): a
        # seeded RNG that permutes same-(time, priority) handler blocks.
        self._shuffle_rng = random.Random(shuffle_seed) if shuffle_seed is not None else None
        self.shuffled_batches = 0
        # (handler_a, handler_b) qualname pairs observed co-scheduled in
        # one batch -> occurrence count.  Only populated in shuffle mode.
        self.batch_pairs: Dict[Tuple[str, str], int] = {}
        # Stall watchdog (see repro.sim.watchdog): observation-only
        # progress monitor; run() dispatches to _run_watched when attached.
        self._watchdog = None

    def attach_sanitizer(self, ledger) -> None:
        """Attach a :class:`repro.analysis.sanitizer.ResourceLedger`."""
        self._sanitizer = ledger

    def attach_watchdog(self, watchdog) -> None:
        """Attach a :class:`repro.sim.watchdog.StallWatchdog`."""
        self._watchdog = watchdog

    def schedule(
        self,
        time: float,
        callback: Callable[[Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(payload)`` to run at simulated ``time``.

        ``priority`` breaks timestamp ties (lower runs first); equal
        priorities fall back to FIFO insertion order.  Pass it only when
        the same-cycle order against another handler is a semantic
        requirement of the model — it documents (and enforces) the order,
        and exempts the pair from SimRace's accidental-order findings.

        Scheduling in the past is a modelling bug and raises immediately.
        So does a NaN or infinite timestamp: NaN compares False against
        everything (a bare ``time < now`` check silently admits it) and
        would corrupt the heap's ordering invariant for every later event.
        The chained comparison below rejects past, NaN and +/-inf times in
        one branch on the hot path.
        """
        if not (self.now <= time < _INF):
            raise ValueError(
                f"cannot schedule event at {time!r} (now={self.now}): "
                "event times must be finite and not in the past"
            )
        if self._sanitizer is not None and self._drained:
            self._sanitizer.scheduled_after_drain(time, callback, payload)
        heapq.heappush(self._heap, (time, priority, self._seq, callback, payload))
        self._seq += 1

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(payload)`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback, payload, priority)

    def empty(self) -> bool:
        """True when no events remain."""
        return not self._heap

    def run(self) -> float:
        """Drain the event queue; returns the final simulated time."""
        if self._shuffle_rng is not None:
            # Shuffle replays are short diagnostic runs; shuffle wins over
            # the watchdog when both are configured.
            return self._run_shuffled()
        if self._watchdog is not None:
            return self._run_watched()
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _prio, _seq, callback, payload = pop(heap)
            self.now = time
            callback(payload)
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise RuntimeError(
                    f"event budget exceeded ({self.max_events}); "
                    "likely a livelock in the request state machine"
                )
        self._drained = True
        return self.now

    def run_until(self, deadline: float) -> float:
        """Process events with timestamps <= ``deadline``; returns current time."""
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= deadline:
            time, _prio, _seq, callback, payload = pop(heap)
            self.now = time
            callback(payload)
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise RuntimeError(f"event budget exceeded ({self.max_events})")
        if self.now < deadline:
            self.now = deadline
        # Keep the drain flag consistent with run(): a deadline loop that
        # happens to empty the heap IS a full drain, and one that leaves
        # events behind is not — even if an earlier run() had drained.
        # Without this, the sanitizer's scheduled-after-drain check
        # false-positives on legitimate scheduling after a partial drain.
        self._drained = not heap
        return self.now

    def _run_watched(self) -> float:
        """Drain the queue with the stall watchdog observing every event.

        Identical event order to :meth:`run` — the watchdog only counts
        (time advances reset the same-cycle counter; completions reset
        the window via :meth:`~repro.sim.watchdog.StallWatchdog.progress`)
        and raises ``SimStallError`` when a livelock signature appears.
        """
        heap = self._heap
        pop = heapq.heappop
        watchdog = self._watchdog
        while heap:
            time, _prio, _seq, callback, payload = pop(heap)
            if time > self.now:
                watchdog.advanced(time)
            self.now = time
            callback(payload)
            self.events_processed += 1
            watchdog.event(time)
            if self.events_processed > self.max_events:
                raise RuntimeError(
                    f"event budget exceeded ({self.max_events}); "
                    "likely a livelock in the request state machine"
                )
        self._drained = True
        return self.now

    # ------------------------------------------------------- shadow shuffle

    def _run_shuffled(self) -> float:
        """Drain the queue with same-(time, priority) handler blocks
        deterministically permuted (SimRace dynamic confirmer)."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, prio, _seq, callback, payload = pop(heap)
            batch: List[Tuple[Callable[[Any], None], Any]] = [(callback, payload)]
            # Events already queued at exactly this (time, priority) form an
            # unordered batch: their FIFO order is an accident of call order.
            # Exact float equality is intended here — only bit-identical
            # timestamps are simultaneous.
            while heap and heap[0][0] == time and heap[0][1] == prio:  # simlint: disable=SL103
                _t, _p, _s, cb, pl = pop(heap)
                batch.append((cb, pl))
            if len(batch) > 1:
                batch = self._permute_batch(batch)
            self.now = time
            for cb, pl in batch:
                cb(pl)
                self.events_processed += 1
                if self.events_processed > self.max_events:
                    raise RuntimeError(
                        f"event budget exceeded ({self.max_events}); "
                        "likely a livelock in the request state machine"
                    )
        self._drained = True
        return self.now

    def _permute_batch(
        self, batch: List[Tuple[Callable[[Any], None], Any]]
    ) -> List[Tuple[Callable[[Any], None], Any]]:
        """Permute the distinct-handler blocks of one same-time batch.

        FIFO order is preserved *within* each handler (two pending
        ``_l1_access`` events stay in arrival order — self-pairs are
        resolved by arbitration in any real design and are out of
        SimRace's scope); only the relative order of *different* handlers
        is permuted, which is exactly the order an innocent refactor of
        ``schedule()`` call sites could change.
        """
        groups: Dict[Any, List[Tuple[Callable[[Any], None], Any]]] = {}
        order: List[Any] = []
        for cb, pl in batch:
            key = getattr(cb, "__func__", cb)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((cb, pl))
        if len(order) > 1:
            self._record_batch(order)
            self._shuffle_rng.shuffle(order)
            self.shuffled_batches += 1
        out: List[Tuple[Callable[[Any], None], Any]] = []
        for key in order:
            out.extend(groups[key])
        return out

    def _record_batch(self, handler_keys: List[Any]) -> None:
        names = sorted(getattr(k, "__qualname__", repr(k)) for k in handler_keys)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                pair = (a, b)
                self.batch_pairs[pair] = self.batch_pairs.get(pair, 0) + 1
