"""Persistent, content-addressed simulation-result store.

Every paper figure is a grid of (application x design) simulations, and
the same points recur across figures, pytest workers, CLI invocations and
benchmark re-runs.  The in-process memo inside
:class:`repro.experiments.base.Runner` only helps within one process;
this module adds the cross-process layer: a content-addressed on-disk
cache keyed by the *inputs* of a simulation.

Key derivation
--------------
:func:`sim_cache_key` hashes the full frozen configuration triple —
:class:`~repro.workloads.profile.AppProfile`,
:class:`~repro.core.designs.DesignSpec` and
:class:`~repro.sim.config.SimConfig` (including the nested
:class:`~repro.sim.config.GPUConfig`) — plus the cache schema version
into one SHA-256 hex digest.  All three are frozen dataclasses, so
``dataclasses.fields`` enumerates every field; the JSON serialization is
canonical (sorted keys, no whitespace), which makes the key stable across
processes and platforms.  Any changed field changes the key; unknown
field types fail loudly rather than hash ambiguously.

The one deliberate exception: fields a class names in its
``FINGERPRINT_NEUTRAL_FIELDS`` class variable (e.g.
``SimConfig.watchdog``, ``AppProfile.suite``) are *excluded* from the
key.  These are observation-only knobs proven never to change a result
bit, so keying them would only fragment the shared cache — the same
simulation stored twice.  The declaration is machine-checked from both
sides by SimPure (``repro purity``): statically, that the sim core
cannot read an input that is not keyed (SP401), and dynamically
(``--confirm``), that mutating a neutral field leaves the result
fingerprint bit-identical while mutating any keyed field changes the
key.  :func:`cache_key_manifest` exports the declared domain for the
analyzer.

Layout and versioning
---------------------
``<root>/v<SCHEMA>/<key[:2]>/<key>.json`` — one JSON document per result,
fanned out over 256 subdirectories.  ``SCHEMA`` is
:data:`CACHE_SCHEMA_VERSION`; it participates in both the key and the
directory path, so bumping it orphans every old entry at once (stale
trees can simply be deleted).  Bump it whenever the simulator's observable
behaviour changes (new :class:`~repro.sim.results.SimResult` fields,
model fixes, config-field semantics).

Robustness
----------
Writes are atomic (temp file + ``os.replace``) so concurrent processes
never observe a half-written entry.  Reads treat *any* failure —
missing, truncated, corrupted, schema-mismatched or stale-field files —
as a cache miss, never an error; the entry is re-simulated and
overwritten.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.core.designs import DesignSpec
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.results import SimResult
from repro.workloads.profile import AppProfile

#: Version of the (key, payload) schema.  Part of every key and of the
#: on-disk path; bump to invalidate all previously cached results.
#: v2: fingerprint-neutral fields (SimConfig sanitize/watchdog knobs,
#: AppProfile.suite) left the key domain and the dead ``SimConfig.seed``
#: field was removed, so v1 keys no longer correspond to v2 keys.
CACHE_SCHEMA_VERSION = 2

#: Environment variable naming the default cache directory.  Unset (or
#: empty) means the persistent cache is off unless a directory is passed
#: explicitly.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _neutral_fields(obj: object) -> frozenset:
    """A dataclass's declared fingerprint-neutral field names (none by
    default) — the only fields :func:`_canonical` skips when keying."""
    return getattr(type(obj), "FINGERPRINT_NEUTRAL_FIELDS", frozenset())


def _canonical(obj: object) -> object:
    """Recursively reduce dataclasses/enums/containers to JSON-safe data,
    dropping declared fingerprint-neutral fields (see module docstring)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        neutral = _neutral_fields(obj)
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.name not in neutral
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for cache keying")


#: The dataclasses whose fields make up the cache-key domain, in payload
#: order.  SimPure reads this through :func:`cache_key_manifest`.
_KEYED_CLASSES: Tuple[Tuple[str, type], ...] = (
    ("profile", AppProfile),
    ("design", DesignSpec),
    ("config", SimConfig),
    ("gpu", GPUConfig),
)


def cache_key_manifest() -> Dict[str, Dict[str, object]]:
    """Declared cache-key domain, derived from the keyed dataclasses.

    Returns one entry per keyed class::

        {"config": {"class": "SimConfig",
                    "keyed": ("gpu", "scale", ...),
                    "neutral": ("sanitize", "watchdog", ...)}, ...}

    ``keyed`` fields flow into :func:`sim_cache_key`; ``neutral`` fields
    are the class's declared ``FINGERPRINT_NEUTRAL_FIELDS`` (excluded
    from the key, proven fingerprint-invariant by
    ``repro purity --confirm``).  SimPure's SP401/SP402 diff this
    manifest against what the simulator core actually reads.
    """
    manifest: Dict[str, Dict[str, object]] = {}
    for role, cls in _KEYED_CLASSES:
        neutral = getattr(cls, "FINGERPRINT_NEUTRAL_FIELDS", frozenset())
        names = tuple(f.name for f in dataclasses.fields(cls))
        manifest[role] = {
            "class": cls.__name__,
            "keyed": tuple(n for n in names if n not in neutral),
            "neutral": tuple(sorted(neutral)),
        }
    return manifest


def sim_cache_key(profile: AppProfile, spec: DesignSpec, cfg: SimConfig) -> str:
    """Stable content-addressed key for one simulation point.

    Same logical (profile, spec, config) -> same hex key in every
    process; any changed field -> a different key.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "profile": _canonical(profile),
        "design": _canonical(spec),
        "config": _canonical(cfg),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def profile_cache_key(profile: AppProfile) -> str:
    """Content-addressed key of the *profile component* of
    :func:`sim_cache_key` alone.

    Two grid points share this key exactly when they would generate the
    same workload at the same scale — the sharing SimFleet's per-worker
    stream cache exploits to materialize access streams once per worker
    instead of once per point.  Canonicalization matches the full key
    (fingerprint-neutral fields like ``AppProfile.suite`` are excluded),
    so two profiles differing only in neutral fields share streams.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "profile": _canonical(profile),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DiskResultCache:
    """Content-addressed on-disk :class:`SimResult` cache.

    ``get`` returns ``None`` on any miss *or* unreadable entry; ``put``
    writes atomically so concurrent writers are safe (last writer wins
    with identical content, since keys are content-addressed).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def path_for(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        """Load a cached result, or ``None`` (corrupt entries are misses)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            if doc.get("schema") != CACHE_SCHEMA_VERSION or doc.get("key") != key:
                raise ValueError("cache entry schema/key mismatch")
            result = SimResult.from_jsonable(doc["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, truncated, corrupted or written by an incompatible
            # schema: behave exactly like a cold miss.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        """Atomically persist one result under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "result": result.to_jsonable(),
        }
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        """Drop every entry of the *current* schema version."""
        shutil.rmtree(self.version_dir, ignore_errors=True)

    def __len__(self) -> int:
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*/*.json"))

    def __repr__(self) -> str:
        return (
            f"DiskResultCache({str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def cache_from_env() -> Optional[DiskResultCache]:
    """Cache named by ``REPRO_CACHE_DIR``, or ``None`` when unset/empty."""
    root = os.environ.get(CACHE_DIR_ENV, "").strip()
    return DiskResultCache(root) if root else None
