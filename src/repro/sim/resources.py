"""Reservation servers — the timing primitive of the simulator.

Every finite-bandwidth hardware resource (a crossbar port, a cache bank, a
DRAM channel) is modelled as a :class:`Server`: a pipelined unit with a
per-transaction *occupancy* (``service`` cycles, during which no other
transaction may start) and a *latency* (cycles between the start of service
and the transaction emerging at the other side).

A transaction arriving at time ``t`` starts at ``max(t, next_free)``; the
server is then busy for ``service * size`` cycles (``size`` is the
transaction size in service units, e.g. flits), and the transaction emerges
``latency`` cycles after its service *begins*.  This is the classical
"latency + occupancy" model: it captures throughput ceilings and queueing
delay under contention without simulating individual cycles.

Frequencies are handled by expressing ``service`` and ``latency`` in *core*
cycles.  A NoC running at half the core clock has its per-flit service time
doubled; the paper's ``+Boost`` optimization (doubling NoC#1 frequency)
halves it again.
"""

from __future__ import annotations

# SimHeat twin-path manifest (see docs/analysis.md): every fast variant in
# this module and its canonical slow twin, plus the comparison mode the
# analyzer applies.  "lockstep" means the two bodies must match statement
# for statement once the declared elidable instrumentation (owner/ledger
# hooks) is removed.
FAST_PATH_PAIRS = [
    ("Server.reserve_fast", "Server.reserve", "lockstep", {}),
    # SimVec batched reservations: one call per *batch* of transactions,
    # arithmetic in lockstep with Server.reserve per item.  Structural
    # equivalence is delegated to the differential confirmer and the
    # fingerprint-identity tests (the loop shape defeats statement-level
    # matching); SH603/SH604 wiring checks still apply.
    ("reserve_run_fast", "Server.reserve", "delegated", {}),
    ("reserve_run_fast_sized", "Server.reserve", "delegated", {}),
]


class Server:
    """A single pipelined resource with occupancy-based contention.

    Parameters
    ----------
    name:
        Human-readable identifier used in utilization reports.
    service:
        Cycles of occupancy per service unit (per flit / per access).
    latency:
        Pipeline latency in cycles from start of service to completion.
    """

    __slots__ = (
        "name", "service", "latency", "next_free", "busy_cycles", "num_served",
        "holder", "holder_since", "ledger",
    )

    def __init__(self, name: str, service: float, latency: float = 0.0):
        if service < 0 or latency < 0:
            raise ValueError(f"negative timing for server {name!r}")
        self.name = name
        self.service = float(service)
        self.latency = float(latency)
        self.next_free = 0.0
        self.busy_cycles = 0.0
        self.num_served = 0
        # Holder attribution (sanitizer/watchdog mirror): the last owner
        # to reserve the port and when its service started.  Servers are
        # time-released by construction (next_free expires), so there is
        # no ledger hold to leak — the mirror exists purely so the stall
        # watchdog's wait graph can say *who* a camped port is serving.
        self.holder = None
        self.holder_since = 0.0
        self.ledger = None

    def attach_sanitizer(self, ledger) -> None:
        """Attach a :class:`repro.analysis.sanitizer.ResourceLedger`;
        every reservation is then validated via ``check_reservation``."""
        self.ledger = ledger

    def reserve(self, now: float, size: float = 1.0, owner=None) -> float:
        """Reserve the server for a transaction arriving at ``now``.

        Returns the completion time (when the transaction emerges on the
        far side of the resource).  ``owner`` (optional) records who the
        port is serving, for watchdog/sanitizer attribution.
        """
        start = now if now > self.next_free else self.next_free
        occupancy = self.service * size
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        self.num_served += 1
        completion = start + occupancy + self.latency
        if owner is not None:
            self.holder = owner
            self.holder_since = start
        if self.ledger is not None:
            self.ledger.check_reservation(self.name, start, size, completion)
        return completion

    def reserve_fast(self, now: float, size: float = 1.0) -> float:
        """Uninstrumented :meth:`reserve`: identical arithmetic (and
        therefore identical timing results), minus the owner/ledger
        branches.  Selected once at wiring time by the system's hot-path
        setup when no sanitizer is attached — never chosen per event.
        Keep the arithmetic in lockstep with :meth:`reserve`; the
        fingerprint-identity tests guard the pairing.
        """
        start = now if now > self.next_free else self.next_free
        occupancy = self.service * size
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        self.num_served += 1
        return start + occupancy + self.latency

    def current_holder(self, now: float):
        """Owner the port is busy serving at ``now`` (None when idle or
        when reservations carried no owner)."""
        return self.holder if self.next_free > now else None

    def peek_start(self, now: float) -> float:
        """Earliest time a transaction arriving at ``now`` could start service."""
        return now if now > self.next_free else self.next_free

    def utilization(self, total_cycles: float) -> float:
        """Fraction of ``total_cycles`` this server spent busy."""
        if total_cycles <= 0:
            return 0.0
        u = self.busy_cycles / total_cycles
        return u if u < 1.0 else 1.0

    def reset(self) -> None:
        """Clear all reservation and accounting state, including the
        sanitizer/watchdog holder mirror — a stale holder on a reset
        server would otherwise surface as a phantom leak in the next
        run's wait graph.  The attached ledger is wiring, not state, and
        survives the reset."""
        self.next_free = 0.0
        self.busy_cycles = 0.0
        self.num_served = 0
        self.holder = None
        self.holder_since = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Server({self.name!r}, service={self.service}, latency={self.latency}, "
            f"served={self.num_served})"
        )


def reserve_run_fast(servers, indices, now, out) -> None:
    """Batched :meth:`Server.reserve_fast` for unit-size transactions.

    Reserves ``servers[indices[i]]`` for a transaction arriving at ``now``
    for every ``i``, in order, appending each completion time to ``out``.
    One Python frame per *batch* instead of one per transaction — the
    SimVec twin of a loop of ``reserve_fast(now)`` calls.

    The arithmetic must stay in lockstep with :meth:`Server.reserve`:
    per item it is exactly ``reserve_fast(now, 1.0)`` (``service * 1.0``
    is ``service`` bit-for-bit under IEEE-754, so the multiply is elided).
    Repeated indices are well-defined — each reservation sees the
    ``next_free`` its predecessor wrote, identical to sequential calls.
    """
    append = out.append
    for idx in indices:
        srv = servers[idx]
        nf = srv.next_free
        start = now if now > nf else nf
        occupancy = srv.service
        srv.next_free = start + occupancy
        srv.busy_cycles += occupancy
        srv.num_served += 1
        append(start + occupancy + srv.latency)


def reserve_run_fast_sized(servers, indices, now, sizes, out) -> None:
    """Batched :meth:`Server.reserve_fast` with a per-transaction size.

    Same contract as :func:`reserve_run_fast` with ``sizes[i]`` service
    units for item ``i`` (e.g. issue-port occupancies of ``1 + gap``).
    """
    append = out.append
    for i, idx in enumerate(indices):
        srv = servers[idx]
        nf = srv.next_free
        start = now if now > nf else nf
        occupancy = srv.service * sizes[i]
        srv.next_free = start + occupancy
        srv.busy_cycles += occupancy
        srv.num_served += 1
        append(start + occupancy + srv.latency)


class ServerGroup:
    """A named, indexable collection of identical :class:`Server` objects.

    Used for things like "the 40 DC-L1 bank ports" or "the 32 L2 slice
    ports".  Provides aggregate accounting used by the utilization figures
    (Figure 2 and Figure 17 report the *maximum* utilization across the
    group).
    """

    def __init__(self, name: str, count: int, service: float, latency: float = 0.0):
        if count <= 0:
            raise ValueError(f"server group {name!r} must have at least one server")
        self.name = name
        self.servers = [Server(f"{name}[{i}]", service, latency) for i in range(count)]

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, idx: int) -> Server:
        return self.servers[idx]

    def __iter__(self):
        return iter(self.servers)

    def max_utilization(self, total_cycles: float) -> float:
        """Maximum utilization across the group (paper's Fig. 2 / Fig. 17 metric)."""
        return max(s.utilization(total_cycles) for s in self.servers)

    def mean_utilization(self, total_cycles: float) -> float:
        """Average utilization across the group."""
        return sum(s.utilization(total_cycles) for s in self.servers) / len(self.servers)

    def total_served(self) -> int:
        """Total transactions served by the whole group."""
        return sum(s.num_served for s in self.servers)

    def attach_sanitizer(self, ledger) -> None:
        """Attach one ledger to every server in the group."""
        for s in self.servers:
            s.attach_sanitizer(ledger)

    def reset(self) -> None:
        """Reset every server, holder mirrors included (see
        :meth:`Server.reset`)."""
        for s in self.servers:
            s.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServerGroup({self.name!r}, n={len(self.servers)})"
