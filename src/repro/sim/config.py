"""Platform and simulation configuration (the paper's Table II).

:class:`GPUConfig` captures the simulated hardware platform — the 80-core
baseline with per-core 16 KB L1s, 32 address-sliced L2 banks, 16 memory
channels, and a 700 MHz 32 B-flit crossbar NoC under a 1400 MHz core
clock.  All times in the simulator are **core cycles**; the NoC clock
ratio appears as ``noc_cycles_per_flit = 2.0`` (one flit occupies a port
for two core cycles), which frequency multipliers divide.

:class:`SimConfig` bundles a platform with run parameters (workload scale,
CTA scheduler, ablation knobs, observability toggles).  The environment
variables ``REPRO_SANITIZE`` / ``REPRO_WATCHDOG`` are resolved **once**,
here at construction time (:func:`sanitize_env_enabled` /
:func:`watchdog_env_enabled`) — never inside the simulator core — so
every behavioural input of a run is visible in its config object.

The paper's Section VIII-A system-size study (120 cores / 60 DC-L1s /
48 L2 slices / 24 channels) is :meth:`GPUConfig.scaled_up`.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import ClassVar, FrozenSet, Optional


def watchdog_env_enabled() -> bool:
    """Resolve the ``REPRO_WATCHDOG`` environment variable **once**, at
    :class:`SimConfig` construction (any value other than empty or ``0``
    enables the stall watchdog).

    This is a *declared input resolver* (SimPure SP401): the simulator
    core never reads the environment at run time — the value is frozen
    into ``SimConfig.watchdog``, which is declared fingerprint-neutral
    (watchdog-on runs are bit-identical to watchdog-off runs).  An
    explicit ``SimConfig(watchdog=...)`` always beats the environment.
    """
    return os.environ.get("REPRO_WATCHDOG", "") not in ("", "0")


def sanitize_env_enabled() -> bool:
    """Resolve the ``REPRO_SANITIZE`` environment variable once, at
    :class:`SimConfig` construction — the sanitizer twin of
    :func:`watchdog_env_enabled`, with the same declared-input and
    fingerprint-neutrality contract."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


@dataclass(frozen=True)
class GPUConfig:
    """Hardware platform parameters (Table II plus timing details)."""

    # Topology
    num_cores: int = 80
    num_l2_slices: int = 32
    num_channels: int = 16

    # L1 (per core, baseline)
    l1_size_bytes: int = 16 * 1024
    l1_assoc: int = 4
    line_bytes: int = 128
    l1_latency: float = 28.0
    l1_mshr_entries: int = 32
    # Added DC-L1 access latency per capacity doubling (the paper's Sh40+C10
    # DC-L1 is 2x the baseline L1 and takes 30 vs 28 cycles).
    l1_latency_per_doubling: float = 2.0

    # L2 (per slice)
    l2_slice_bytes: int = 128 * 1024
    l2_assoc: int = 8
    l2_latency: float = 120.0
    l2_service: float = 2.0
    l2_mshr_entries: int = 64

    # DRAM
    dram_service: float = 16.0
    dram_latency: float = 220.0
    dram_bank_groups: int = 4

    # NoC (baseline 700 MHz vs 1400 MHz core; 32 B flits)
    flit_bytes: int = 32
    noc_cycles_per_flit: float = 2.0
    noc_latency: float = 16.0
    # Link lengths for the dynamic-energy model (Section VIII estimates).
    short_link_mm: float = 3.3
    long_link_mm: float = 12.3

    # CDXBar comparator geometry (Figure 19a)
    cdxbar_group_size: int = 8
    cdxbar_columns: int = 8

    def __post_init__(self):
        if self.num_cores <= 0 or self.num_l2_slices <= 0 or self.num_channels <= 0:
            raise ValueError("core/L2/channel counts must be positive")
        if self.num_l2_slices % self.num_channels != 0:
            raise ValueError("channels must evenly divide L2 slices")

    # -- derived -----------------------------------------------------------

    @property
    def total_l1_bytes(self) -> int:
        """Aggregate L1 capacity, preserved across every DC-L1 design."""
        return self.l1_size_bytes * self.num_cores

    @property
    def l1_lines(self) -> int:
        """Lines per baseline L1."""
        return self.l1_size_bytes // self.line_bytes

    def dcl1_size_bytes(self, num_dcl1: int, size_mult: float = 1.0) -> int:
        """Per-node DC-L1 capacity: total L1 budget split over the nodes,
        rounded to a valid power-of-two set count."""
        raw = self.total_l1_bytes * size_mult / num_dcl1
        unit = self.l1_assoc * self.line_bytes
        sets = max(1, int(raw / unit))
        sets = 2 ** int(round(math.log2(sets)))
        return sets * unit

    def l1_level_latency(self, size_bytes: int) -> float:
        """Access latency of an L1-level cache of ``size_bytes``: baseline
        latency plus ``l1_latency_per_doubling`` per capacity doubling."""
        if size_bytes <= self.l1_size_bytes:
            return self.l1_latency
        doublings = math.log2(size_bytes / self.l1_size_bytes)
        return self.l1_latency + self.l1_latency_per_doubling * doublings

    def scaled_up(self, factor: float = 1.5) -> "GPUConfig":
        """The Section VIII-A larger system (default: 120 cores, 48 L2
        slices, 24 channels)."""
        return replace(
            self,
            num_cores=int(self.num_cores * factor),
            num_l2_slices=int(self.num_l2_slices * factor),
            num_channels=int(self.num_channels * factor),
        )


@dataclass(frozen=True)
class SimConfig:
    """A platform plus run parameters.

    Every field participates in :func:`repro.sim.store.sim_cache_key`
    **except** the ones named in :data:`FINGERPRINT_NEUTRAL_FIELDS`:
    observation-only knobs (sanitizer ledger, stall watchdog) that are
    proven never to change a single result bit, so keying them would only
    fragment the shared result cache.  SimPure (``repro purity``) checks
    the declaration both ways: statically (SP401/SP402) and dynamically
    (``--confirm`` mutates each neutral field and asserts bit-exact
    fingerprint invariance).

    The simulation itself is fully deterministic given the workload (the
    trace RNG is seeded from :attr:`AppProfile.name` /
    :attr:`AppProfile.trace_variant`); there is deliberately no free
    run-level RNG seed here — an earlier ``seed`` field was never read by
    the sim core and only split the cache (the SP402 over-keying bug
    class).
    """

    #: Fields excluded from the cache key: observation-only, bit-identical
    #: by contract (enforced by tests/test_watchdog.py, tests/test_simturbo.py
    #: and ``repro purity --confirm``).  ``race_check``/``race_seed`` stay
    #: keyed on purpose: shadow-shuffle deliberately perturbs event order,
    #: and conflating shuffled with FIFO entries would mask the very
    #: hazards SimRace exists to find.
    FINGERPRINT_NEUTRAL_FIELDS: ClassVar[FrozenSet[str]] = frozenset({
        "sanitize",
        "watchdog",
        "watchdog_window",
        "watchdog_same_cycle_limit",
    })

    gpu: GPUConfig = field(default_factory=GPUConfig)
    # Workload scale: multiplies CTA counts (1.0 = benchmark scale).
    scale: float = 1.0
    cta_scheduler: str = "round_robin"
    # Override the L1/DC-L1 access latency (Figure 19b sweep); None = model.
    l1_latency_override: Optional[float] = None

    # ---- ablation knobs (Section 6 of DESIGN.md) ----
    # Home-DC-L1 selection: "interleave" (default, works for any M) or
    # "bits" (explicit home-bit extraction; power-of-two M only).
    home_strategy: str = "interleave"
    # Bit position of the home bits above the line offset ("bits" strategy).
    home_bit_shift: int = 0
    # Send full 128 B lines on NoC#1 replies instead of only the requested
    # data (the paper argues this wastes NoC#1 bandwidth, Section III).
    full_line_noc1_replies: bool = False
    # Replacement policies per level.
    l1_policy: str = "lru"
    l2_policy: str = "lru"
    # Adaptive streaming bypass at the (DC-)L1 fills — the complementary
    # per-cache capacity-management extension the paper's related work
    # points at (see repro.cache.bypass).
    l1_bypass: bool = False
    # Finite DC-L1 node request-queue depth (the paper's Q1 holds four
    # entries).  None = infinite (the default first-order model: queueing
    # is carried by reservation delays); an int enables credit-based
    # backpressure — cores stall when a node's queue is full, which
    # sharpens camping hotspots.
    dcl1_queue_depth: Optional[int] = None

    # Enable the SimSanitizer resource ledger: continuous leak /
    # double-free / schedule-after-drain checking with per-request
    # attribution (see repro.analysis.sanitizer and docs/analysis.md).
    # Defaults from REPRO_SANITIZE, resolved once at construction — an
    # explicit sanitize= argument always beats the environment, and the
    # sim core never consults os.environ at run time (SimPure SP401).
    sanitize: bool = field(default_factory=sanitize_env_enabled)

    # Enable the stall watchdog (see repro.sim.watchdog and
    # docs/analysis.md): diagnose a wedged/livelocked run with a
    # SimStallError carrying a resource wait-graph dump instead of an
    # opaque hang or count mismatch.  Implies the sanitizer ledger (for
    # holder attribution); observation-only — results stay bit-identical.
    # Defaults from REPRO_WATCHDOG, resolved once at construction (same
    # declared-input contract as ``sanitize`` above).
    watchdog: bool = field(default_factory=watchdog_env_enabled)
    # No-completion window in cycles before the watchdog declares a
    # livelock (generous: the deepest healthy round trip is ~1k cycles).
    watchdog_window: float = 50_000.0
    # Events allowed at one simulated cycle without a completion or time
    # advance before the watchdog declares a same-cycle livelock.
    watchdog_same_cycle_limit: int = 1_000_000

    # SimRace shadow-shuffle mode (see repro.analysis.simrace and
    # docs/analysis.md): deterministically permute same-cycle handler
    # blocks in the event engine under ``race_seed``.  A run whose results
    # change under shuffle depends on accidental schedule() call order —
    # a same-cycle ordering hazard.  ``repro race --confirm`` replays a
    # config across K seeds and diffs the result fingerprints.
    race_check: bool = False
    race_seed: int = 1

    max_events: int = 200_000_000

    def with_scale(self, scale: float) -> "SimConfig":
        return replace(self, scale=scale)

    def with_scheduler(self, name: str) -> "SimConfig":
        return replace(self, cta_scheduler=name)
