"""SimFleet: a persistent, warm, process-wide worker pool for sweeps.

:meth:`repro.experiments.base.Runner.run_many` historically constructed a
fresh ``ProcessPoolExecutor`` per call.  Every sweep then paid the full
spin-up tax again — interpreter forks/spawns, module imports, payload
pickling — which is how the ROADMAP's 24-point measurement ended up with
parallel-cold *slower* than serial-cold.  This module amortizes that tax
into reusable batch machinery:

* :class:`WorkerFleet` — a process-wide registry of live pools keyed by
  ``(start-method, width)``.  The first ``acquire()`` for a key pays the
  cold start (pool construction plus a warm barrier that forces every
  worker to spawn and pre-import the sim stack); every later ``acquire()``
  returns the same live pool in microseconds.  ``shutdown()`` is explicit
  and also registered via ``atexit``, and ``REPRO_FLEET=0`` opts back out
  to the legacy per-call pool.
* **Worker-side stream caching** — :func:`_fleet_run` materializes each
  point's NumPy access streams through a small per-worker LRU keyed by
  the *profile* component of the cache key, so a grid that visits the
  same :class:`~repro.workloads.profile.AppProfile` under many designs
  generates its workload once per worker, not once per point.  Cache
  hits are bit-identical to recomputation (generation is a pure function
  of the profile and scale), so results cannot depend on hit/miss luck.
* **Slim result transport** — when the parent runs a
  :class:`~repro.sim.store.DiskResultCache`, workers persist their own
  result and return only ``(tag, cache_key, fingerprint sha, wall s,
  events/s)`` instead of pickling the full :class:`SimResult` across the
  pipe; the parent rehydrates from disk and audits the fingerprint.
* **Adaptive chunking and largest-first ordering** —
  :func:`adaptive_chunksize` replaces the old hard-coded ``chunksize=1``
  and :func:`order_by_estimated_work` fronts the heaviest points so the
  straggler tail shrinks.

Everything here is sweep *orchestration*: none of the knobs (fleet
on/off, chunk size, stream-cache capacity) can change what a simulation
computes, only how fast the grid drains — the identity tests pin
``result_fingerprints()`` equality across serial, fleet and legacy paths.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.store import DiskResultCache, profile_cache_key, sim_cache_key
from repro.sim.system import simulate
from repro.workloads.generator import Workload, generate_workload

__all__ = [
    "FLEET_ENV",
    "CHUNK_ENV",
    "STREAM_CACHE_ENV",
    "SLIM_TAG",
    "WorkerFleet",
    "fleet_env_enabled",
    "chunksize_from_env",
    "stream_cache_cap_from_env",
    "adaptive_chunksize",
    "estimate_work",
    "order_by_estimated_work",
    "materialize_workload",
    "get_fleet",
    "shutdown_fleet",
]

#: ``REPRO_FLEET=0`` opts out of the persistent fleet: ``run_many`` falls
#: back to constructing one pool per call (the pre-fleet behaviour).
FLEET_ENV = "REPRO_FLEET"

#: ``REPRO_CHUNK=N`` pins the ``pool.map`` chunksize; unset means
#: :func:`adaptive_chunksize` picks one from the miss count and width.
CHUNK_ENV = "REPRO_CHUNK"

#: ``REPRO_STREAM_CACHE=N`` caps the per-worker workload LRU (number of
#: distinct (profile, scale) stream sets kept alive); ``0`` disables it.
STREAM_CACHE_ENV = "REPRO_STREAM_CACHE"

#: First element of a slim-transport payload returned by :func:`_fleet_run`
#: in place of a full pickled :class:`SimResult`.
SLIM_TAG = "__simfleet_slim__"

#: SimShard worker-root manifest: module-level functions of *this* module
#: that cross a pool boundary as worker callables from other modules
#: (``Runner.run_many`` maps :func:`_fleet_run`), so the static
#: worker-reachability closure starts from them even though no
#: ``pool.map`` call site is visible here.
SIMSHARD_WORKERS: Tuple[str, ...] = ("_fleet_run",)


# ----------------------------------------------------------- env resolvers


def fleet_env_enabled(default: bool = True) -> bool:
    """Resolve ``REPRO_FLEET`` once (declared input resolver, SimPure
    SP401): the persistent fleet is on unless the variable is ``0``.

    The value is pure orchestration — fleet and legacy pools run the same
    worker logic on the same frozen points, so it is fingerprint-neutral
    by construction (pinned by the fleet identity tests).
    """
    raw = os.environ.get(FLEET_ENV)
    if raw is None or raw == "":
        return default
    return raw != "0"


def chunksize_from_env(default: Optional[int] = None) -> Optional[int]:
    """Resolve ``REPRO_CHUNK`` once: an explicit ``pool.map`` chunksize,
    or ``None`` to let :func:`adaptive_chunksize` choose.  Malformed
    values warn and fall back (mirroring ``env_jobs``); values below 1
    are clamped to 1.
    """
    raw = os.environ.get(CHUNK_ENV)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {CHUNK_ENV}={raw!r} (not an int); "
            "using adaptive chunking",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return max(1, value)


def stream_cache_cap_from_env(default: int = 8) -> int:
    """Resolve ``REPRO_STREAM_CACHE`` once: the per-worker workload-LRU
    capacity.  ``0`` disables the cache (every point regenerates its
    streams); malformed values warn and fall back; negatives clamp to 0.
    """
    raw = os.environ.get(STREAM_CACHE_ENV)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {STREAM_CACHE_ENV}={raw!r} (not an int); "
            f"using capacity {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return max(0, value)


# ------------------------------------------------------- scheduling helpers


def adaptive_chunksize(n_tasks: int, width: int) -> int:
    """Chunksize for ``pool.map`` over ``n_tasks`` misses on ``width``
    workers: about four waves per worker, capped at 8.

    ``chunksize=1`` maximizes balance but pays one IPC round trip per
    point; huge chunks amortize IPC but let one unlucky worker hold the
    whole tail.  Four waves keeps the tail short even when per-point cost
    varies by the ~10x spread real grids show, while cutting round trips
    by the chunk factor.
    """
    if n_tasks <= 0 or width <= 0:
        return 1
    return max(1, min(8, -(-n_tasks // (max(1, width) * 4))))


def estimate_work(point: Tuple) -> int:
    """Relative cost estimate of one resolved (profile, spec, config)
    point: its total access count at the configured scale.  Event count
    tracks accesses closely enough for scheduling (it only needs rank
    order, not absolute cost)."""
    profile, _spec, cfg = point
    return int(profile.scaled(cfg.scale).total_accesses)


def order_by_estimated_work(points: Sequence[Tuple]) -> List[Tuple]:
    """Misses reordered largest-estimated-work-first (ties keep submission
    order, so the ordering is deterministic).  Heavy points dispatched
    first cannot land at the end of the schedule and stretch the tail."""
    indexed = list(enumerate(points))
    indexed.sort(key=lambda pair: (-estimate_work(pair[1]), pair[0]))
    return [p for _i, p in indexed]


# ------------------------------------------------------ worker-side helpers

#: Per-worker workload LRU: (profile key, scale) -> materialized
#: :class:`Workload`.  Declared in SimShard's ``WORKER_SAFE_GLOBALS``
#: (and its memo subset): generation is a pure function of the key, so a
#: hit is bit-identical to recomputation, and entries never flow back to
#: the parent — each pool process simply avoids regenerating streams it
#: has already built.
_STREAM_CACHE: "OrderedDict[Tuple[str, float], Workload]" = OrderedDict()


def materialize_workload(profile, scale: float) -> Workload:
    """The workload for ``profile`` at ``scale``, served from the
    per-process LRU when possible.

    Safe to share across simulations in one process: ``GPUSystem`` only
    *reads* a workload's streams (wavefronts copy the line/kind arrays at
    bind time), and generation is deterministic, so a cached workload is
    indistinguishable from a fresh one.
    """
    cap = stream_cache_cap_from_env()
    if cap <= 0:
        return generate_workload(profile, scale)
    key = (profile_cache_key(profile), float(scale))
    wl = _STREAM_CACHE.get(key)
    if wl is None:
        wl = generate_workload(profile, scale)
        _STREAM_CACHE[key] = wl
        while len(_STREAM_CACHE) > cap:
            _STREAM_CACHE.popitem(last=False)
    else:
        _STREAM_CACHE.move_to_end(key)
    return wl


def _fleet_warm_init() -> None:
    """Pool initializer: pre-import the sim stack so the first real task
    a worker receives does not pay import latency.  Everything imported
    here is already a (transitive) import of this module, so under fork
    this is a no-op and under spawn it front-loads the worker's import
    cost into the warm barrier."""
    import repro.experiments.base      # noqa: F401
    import repro.sim.system            # noqa: F401
    import repro.workloads.suite       # noqa: F401


def _fleet_warm(index: int) -> int:
    """Warm-barrier task: forces worker processes to actually spawn (the
    executor creates them lazily) and proves each can round-trip a task.
    Returns its pid so the barrier can report how many workers answered."""
    return os.getpid()


def _fleet_run(task: Tuple) -> object:
    """Fleet pool worker: one simulation from its frozen inputs.

    ``task`` is ``(point, cache_root)`` where ``point`` is the resolved
    (profile, spec, config) triple and ``cache_root`` is the parent's
    :class:`DiskResultCache` root (or ``None`` when no disk cache is
    active).  With a cache root the worker persists the result itself and
    returns the slim ``(SLIM_TAG, key, fingerprint sha, wall s,
    events/s)`` tuple — the parent rehydrates from disk instead of
    unpickling a heavy :class:`SimResult`; without one it returns the
    full result exactly like the legacy ``_simulate_point`` worker.
    """
    point, cache_root = task
    profile, spec, cfg = point
    workload = materialize_workload(profile, cfg.scale)
    result = simulate(workload, spec, cfg)
    if cache_root is None:
        return result
    key = sim_cache_key(profile, spec, cfg)
    DiskResultCache(cache_root).put(key, result)
    return (
        SLIM_TAG,
        key,
        result.fingerprint_sha256(),
        result.wall_time_s,
        result.events_per_s,
    )


# ------------------------------------------------------------ the fleet


class WorkerFleet:
    """Process-wide registry of live, warm process pools.

    Pools are keyed by ``(start-method, width)`` so a fork sweep and a
    spawn sweep (or different widths) never share workers, and are
    created lazily on first :meth:`acquire`.  The fleet never shrinks on
    its own: pools live until :meth:`shutdown` (or :meth:`invalidate`
    after a broken-pool error), which is what makes the second sweep of a
    session nearly spin-up-free.
    """

    def __init__(self) -> None:
        self._pools: Dict[Tuple[str, int], ProcessPoolExecutor] = {}
        #: Cold pool constructions (spin-up paid) vs warm reuses.
        self.cold_starts = 0
        self.warm_acquires = 0
        #: Total wall seconds spent constructing + warming pools.
        self.spinup_wall_s = 0.0

    @staticmethod
    def _method_of(
        mp_context: Union[str, multiprocessing.context.BaseContext, None],
    ) -> str:
        if isinstance(mp_context, str):
            return mp_context
        if mp_context is not None:
            return mp_context.get_start_method()
        return multiprocessing.get_start_method()

    def acquire(
        self,
        width: int,
        mp_context: Union[str, multiprocessing.context.BaseContext, None] = None,
    ) -> ProcessPoolExecutor:
        """A live pool of ``width`` workers under ``mp_context``'s start
        method — warm when one exists, freshly constructed (and warmed
        through the barrier) otherwise."""
        width = max(1, int(width))
        method = self._method_of(mp_context)
        key = (method, width)
        pool = self._pools.get(key)
        if pool is not None:
            self.warm_acquires += 1
            return pool
        ctx = multiprocessing.get_context(method)
        # Spin-up is host observability (recorded in fleet stats and the
        # sweep baseline), never simulated behaviour.
        t0 = time.perf_counter()  # simlint: disable=SL101
        pool = ProcessPoolExecutor(
            max_workers=width, mp_context=ctx, initializer=_fleet_warm_init
        )
        # Warm barrier: one trivial task per worker forces the executor
        # to spawn its full complement now (it creates processes lazily),
        # so the first real sweep is not serialized behind worker starts.
        list(pool.map(_fleet_warm, range(width)))
        self.spinup_wall_s += time.perf_counter() - t0  # simlint: disable=SL101
        self._pools[key] = pool
        self.cold_starts += 1
        return pool

    def stats(self) -> Dict[str, float]:
        """Reuse counters snapshot (consumed by ``Runner`` accounting)."""
        return {
            "cold_starts": float(self.cold_starts),
            "warm_acquires": float(self.warm_acquires),
            "spinup_wall_s": self.spinup_wall_s,
            "live_pools": float(len(self._pools)),
        }

    def invalidate(
        self,
        width: Optional[int] = None,
        mp_context: Union[str, multiprocessing.context.BaseContext, None] = None,
    ) -> None:
        """Tear down one pool (or all, when ``width`` is ``None``): the
        recovery path after a ``BrokenProcessPool``, where the dead
        executor must not be handed out again."""
        if width is None:
            doomed = list(self._pools)
        else:
            doomed = [(self._method_of(mp_context), max(1, int(width)))]
        for key in doomed:
            pool = self._pools.pop(key, None)
            if pool is not None:
                pool.shutdown(wait=False)

    def shutdown(self) -> None:
        """Shut every pool down and forget it (stats are kept)."""
        for pool in self._pools.values():
            pool.shutdown(wait=True)
        self._pools.clear()

    def __repr__(self) -> str:
        return (
            f"WorkerFleet(pools={sorted(self._pools)}, "
            f"cold={self.cold_starts}, warm={self.warm_acquires}, "
            f"spinup={self.spinup_wall_s:.2f}s)"
        )


_FLEET: Optional[WorkerFleet] = None


def get_fleet() -> WorkerFleet:
    """The process-wide fleet, created on first use.

    The singleton holds live pools only — never results or simulated
    state — so it cannot bypass the cache key; results flow exclusively
    through the frozen grid points and the worker return values.
    """
    global _FLEET  # simpure: disable=SP401 -- pool registry, not sim state
    if _FLEET is None:
        _FLEET = WorkerFleet()
        atexit.register(shutdown_fleet)
    return _FLEET


def shutdown_fleet() -> None:
    """Explicitly shut the fleet down (idempotent; also the atexit hook).

    Tests use this to force a cold fleet; long-lived hosts can call it to
    release worker processes between sweep bursts."""
    global _FLEET  # simpure: disable=SP401 -- pool registry, not sim state
    if _FLEET is not None:
        _FLEET.shutdown()
        _FLEET = None
