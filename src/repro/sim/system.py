"""Full-system wiring and the request lifecycle.

:class:`GPUSystem` assembles one (workload, design, platform) triple into a
runnable simulation: cores with wavefront slots, the L1 level (per-core
private L1s or DC-L1 nodes, per the design), the two NoCs, L2 slices and
memory controllers — then drives the request state machine of Section III:

Baseline::

    core issue → local L1 bank → hit? done : NoC#2 → L2 → (DRAM) → NoC#2 → fill

DC-L1 designs::

    core issue → NoC#1 → DC-L1 node (Q1, bank) → hit? NoC#1 reply
                                               : NoC#2 → L2 → (DRAM) →
                                                 NoC#2 → fill (Q4) → NoC#1 reply

Stores are write-evict / no-write-allocate at the L1 level and always
travel to L2 (with their data, plus the evicted line on a hit); their ACK
returns over the reply networks but the issuing wavefront does not block
on it.  Atomics and "non-L1" bypass traffic (instruction/texture/constant
misses) skip the (DC-)L1 cache and are resolved at the L2/MC — in DC-L1
designs they still pass *through* the home node (Q1→Q3), so they ride
NoC#1 and NoC#2 exactly as the paper describes.

Hot-path architecture (SimTurbo, see docs/performance.md)
---------------------------------------------------------
The request lifecycle is the simulator's inner loop; every per-event cost
here multiplies by hundreds of thousands.  ``_wire_hot_path`` resolves
the fast/slow split once, at build time:

* ``self._fast`` is True iff no sanitizer ledger is attached (the stall
  watchdog implies the ledger).  Fast runs use pre-bound route closures
  (:meth:`NoCTopology.make_fast_routes`), per-bank ``reserve_fast`` bound
  methods, a pre-bound :meth:`HomeMapper.make_fast_home_of` closure and a
  ``MemoryRequest`` free list; instrumented runs keep the original
  owner/ledger-attributed calls.  Both share one callable signature per
  hop, so the handlers have a single code path per event kind.
* ``_wf_issue`` splits into a lean LOAD fast path (the dominant kind)
  and a cold path for STORE/ATOMIC/BYPASS/ledger runs.
* Result counters are batched into plain integer attributes and flushed
  once, in ``_collect`` — nothing reads them mid-run (the live audit
  inspects structural state only).

Every specialization preserves arithmetic exactly; the fingerprint
identity of fast vs. instrumented runs is enforced by
``tests/test_simturbo.py``.
"""

from __future__ import annotations

import gc
import math
from collections import deque
from heapq import heappush as _heappush
from time import perf_counter
from typing import List, Optional, Union

from repro.cache.cache import SetAssociativeCache
from repro.cache.directory import ReplicationDirectory
from repro.cache.mshr import MSHRFile
from repro.core.clusters import ClusterGeometry
from repro.core.designs import DesignKind, DesignSpec
from repro.core.home import HomeMapper
from repro.gpu.core import CoreState
from repro.gpu.cta import make_scheduler
from repro.gpu.request import AccessKind, MemoryRequest
from repro.gpu.wavefront import Wavefront
from repro.mem.dram import MemoryController
from repro.mem.interleave import AddressMap
from repro.mem.l2 import L2Slice
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.resources import Server, reserve_run_fast, reserve_run_fast_sized
from repro.sim.results import SimResult
from repro.sim.watchdog import StallWatchdog, build_wait_graph
from repro.workloads.generator import Workload, generate_workload
from repro.workloads.profile import AppProfile

# NumPy backs the SimVec vector phase (batched issue math); the scalar
# per-item fallback below produces identical Python ints, so the batched
# core degrades gracefully when NumPy is absent.
try:
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always ships numpy
    _np = None

# Below this batch size the NumPy round-trip (array build + .tolist())
# costs more than the pure-Python loop it replaces; both compute
# identical ints, so the threshold is a pure perf knob.
_VEC_MIN = 8

# Access kinds as plain ints: streams already deliver ints (see
# Wavefront.next_access) and IntEnum comparisons cost an extra call on
# the hottest lines in the simulator.
_LOAD = int(AccessKind.LOAD)
_STORE = int(AccessKind.STORE)
_ATOMIC = int(AccessKind.ATOMIC)
_BYPASS = int(AccessKind.BYPASS)

# SimHeat twin-path manifest: the issue-path split is a *specialization*
# (the fast side handles LOADs only), so the analyzer checks that every
# handler the fast side schedules is also scheduled by the slow twin, that
# assignments both sides make to the same request fields agree, and that
# counter updates differ only by the declared slow-only kinds.
FAST_PATH_PAIRS = [
    ("GPUSystem._issue_load_fast", "GPUSystem._issue_cold", "specialized",
     {"slow_only_counters": ["_n_stores", "_n_atomics", "_n_bypasses"]}),
    # SimVec batch twins: each drains one same-(time, priority) run of
    # its scalar handler as a single call, preserving per-event effect
    # and schedule-call order exactly.  The loop/phase structure defeats
    # statement-level matching, so equivalence is delegated to the
    # differential confirmer (force_scalar_dispatch) and the
    # fingerprint-identity tests; SH603/SH604 wiring checks still apply.
    ("GPUSystem._wf_issue_batch", "GPUSystem._wf_issue", "delegated", {}),
    ("GPUSystem._l1_access_batch", "GPUSystem._l1_access", "delegated", {}),
    ("GPUSystem._complete_batch", "GPUSystem._complete", "delegated", {}),
    # Fused single-cluster specializations of the issue/L1 batch twins:
    # the factory resolves every per-design decision at wiring time and
    # its closures inline the reservation/traversal/probe/push blocks
    # (each mirroring its canonical twin statement for statement).
    ("GPUSystem._make_spec_twins",
     ("GPUSystem._wf_issue", "GPUSystem._l1_access", "GPUSystem._complete"),
     "delegated", {}),
]

# SimHeat SH614 allowlist: self-rooted containers a pooled MemoryRequest
# may legitimately enter — the free list itself, and the Q1 credit queue
# whose entries are always drained back into the lifecycle.
SIMHEAT_REQUEST_SAFE_SINKS = ("_req_pool", "_node_waiters")


class GPUSystem:
    """One runnable simulation instance (single-use: build, run, read)."""

    def __init__(
        self,
        workload: Union[Workload, AppProfile],
        spec: DesignSpec,
        config: Optional[SimConfig] = None,
    ):
        self.cfg = config or SimConfig()
        gpu = self.cfg.gpu
        if isinstance(workload, AppProfile):
            workload = generate_workload(workload, self.cfg.scale)
        self.workload = workload
        self.spec = spec
        self.engine = Engine(
            max_events=self.cfg.max_events,
            # SimRace shadow-shuffle mode: permute same-cycle handler
            # blocks under a seeded RNG (see repro.analysis.simrace).
            shuffle_seed=self.cfg.race_seed if self.cfg.race_check else None,
        )
        self.amap = AddressMap(gpu.line_bytes, gpu.num_l2_slices, gpu.num_channels)
        self._line_flits = gpu.line_bytes // gpu.flit_bytes
        self._req_flits = max(1, math.ceil(workload.profile.request_bytes / gpu.flit_bytes))
        # Reply size on NoC#1: the requested data only (Section III), or the
        # whole line under the wasteful-reply ablation.
        self._noc1_reply_flits = (
            self._line_flits if self.cfg.full_line_noc1_replies else self._req_flits
        )

        self.decoupled = spec.is_decoupled
        if self.decoupled:
            self.geometry = ClusterGeometry.from_design(spec, gpu.num_cores, gpu.num_l2_slices)
            self.home = HomeMapper(
                self.geometry,
                strategy=self.cfg.home_strategy,
                bit_shift=self.cfg.home_bit_shift,
            )
        else:
            self.geometry = None
            self.home = None

        self._build_l1_level()
        self._build_topology()
        self._build_l2_and_memory()
        self._build_cores()

        self.outstanding = 0
        self.result = SimResult(app=workload.name, design=spec.label or str(spec))
        self._ran = False

        # Optional credit-based Q1 backpressure (Figure 3's node queues).
        depth = self.cfg.dcl1_queue_depth
        if self.decoupled and depth is not None:
            if depth < 1:
                raise ValueError("dcl1_queue_depth must be >= 1")
            self._node_credits = [depth] * self.geometry.num_dcl1
            self._node_waiters = [deque() for _ in range(self.geometry.num_dcl1)]
        else:
            self._node_credits = None
            self._node_waiters = None

        # Opt-in SimSanitizer: mirror every acquire/release-shaped resource
        # in a central ledger so leaks/double-frees/lifecycle bugs surface
        # immediately, attributed to the owning request (docs/analysis.md).
        # The REPRO_SANITIZE / REPRO_WATCHDOG environment variables were
        # already resolved into the config at SimConfig construction; the
        # sim core itself never reads the environment (SimPure SP401).
        self._ledger = None
        self._sanitized_completions = 0
        if self.cfg.sanitize:
            self._attach_sanitizer()

        # Opt-in stall watchdog (see repro.sim.watchdog): diagnose a
        # wedged/livelocked run with a SimStallError + wait-graph dump.
        self._watchdog = None
        if self.cfg.watchdog:
            self._attach_watchdog()

        # SimHeat differential-confirmer knob (see force_slow_path): when
        # set, _wire_hot_path keeps the instrumented slow twins even with
        # no ledger attached.  Deliberately *not* a SimConfig field — it
        # must never perturb sim_cache_key or the fingerprint contract.
        self._force_slow = False
        # SimVec confirmer knob (see force_scalar_dispatch): when set,
        # the fast wiring skips batch-handler registration so every event
        # runs the scalar fast twin.  Same non-config rationale as above.
        self._force_scalar = False

        # Resolve the fast/slow hot-path split — must run last: it
        # captures the post-attach engine.schedule and keys everything
        # on whether a ledger ended up attached.
        self._wire_hot_path()

    def _wire_hot_path(self) -> None:
        """Bind the per-event hot path once (see the module docstring).

        Fast pre-bound callables keep the *same signatures* as the plain
        methods they replace, so every handler has exactly one code shape;
        which implementation runs was decided here, not per event.
        """
        self._fast = self._ledger is None and not self._force_slow
        # Captures the sanitizer-checked wrapper when a ledger swapped it
        # in.  Named ``schedule`` (not ``_schedule``) on purpose: the
        # static analyzers (SimFlow/SimRace/SimLint) recognize scheduling
        # by attribute name, and the prebound hop must stay visible to
        # their handler-reachability closures.
        self.schedule = self.engine.schedule
        amap = self.amap
        self._line_bits = amap.line_bits
        self._num_l2_slices = amap.num_l2_slices
        self._slices_per_chan = amap.num_l2_slices // amap.num_channels
        self._request_bytes = self.workload.profile.request_bytes
        self._home_of = self.home.make_fast_home_of() if self.decoupled else None
        if self._fast:
            routes = self.topo.make_fast_routes()
            self._rt_core_to_dcl1, self._rt_dcl1_to_core = routes[0], routes[1]
            self._rt_to_l2, self._rt_from_l2 = routes[2], routes[3]
            self._l1_reserve = [b.reserve_fast for b in self.l1_banks]
            self._l2_reserve = [b.reserve_fast for b in self.l2_banks]
        else:
            self._rt_core_to_dcl1 = self.topo.core_to_dcl1
            self._rt_dcl1_to_core = self.topo.dcl1_to_core
            self._rt_to_l2 = self.topo.to_l2
            self._rt_from_l2 = self.topo.from_l2
            self._l1_reserve = None
            self._l2_reserve = None
        # SimVec batched dispatch (see docs/performance.md): registered
        # only on uninstrumented runs — instrumented drains outrank it in
        # the engine anyway, and the scalar twins are the ground truth the
        # batch twins are checked against (force_scalar_dispatch).
        self._vec = self._fast and not self._force_scalar
        eng = self.engine
        eng.clear_batch_handlers()
        self._home_of_batch = None
        self._rt_c2d_batch = None
        if self._vec:
            if self.decoupled:
                self._home_of_batch = self.home.make_fast_home_of_batch()
            self._rt_c2d_batch = self.topo.make_batch_routes()
            self._issue_ports = [c.issue_port for c in self.cores]
            eng.register_batch_handler(self._wf_issue, self._wf_issue_batch)
            eng.register_batch_handler(self._l1_access, self._l1_access_batch)
            eng.register_batch_handler(self._complete, self._complete_batch)
        # Pooled scratch buffers for the batch twins: allocated once here
        # so the hot bodies never construct containers (SimHeat SH611);
        # cleared and refilled per batch.
        self._vb_lines: list = []
        self._vb_kinds: list = []
        self._vb_cores: list = []
        self._vb_sizes: list = []
        self._vb_addrs: list = []
        self._vb_l2s: list = []
        self._vb_mcs: list = []
        self._vb_homes: list = []
        self._vb_ts: list = []
        self._vb_arr: list = []
        self._vb_idx: list = []
        self._vb_pend: list = []
        # MemoryRequest free list — only recycled on uninstrumented runs
        # (the ledger keys live holds and hop traces by id(request)).
        self._req_pool: List[MemoryRequest] = []
        # Result counters, batched into locals and flushed in _collect().
        self._n_loads = 0
        self._n_stores = 0
        self._n_atomics = 0
        self._n_bypasses = 0
        self._n_dram_accesses = 0
        self._n_dram_writebacks = 0
        self._n_node_queue_stalls = 0
        self._n_bypassed_fills = 0
        self._rtt_sum = 0.0
        self._rtt_count = 0
        # Specialized fused twins (see _make_spec_twins) override the
        # generic registrations for the single-cluster fast shape.  Must
        # resolve last: the closures capture the pool and scratch state
        # rebuilt above.
        if self._vec:
            spec = self._make_spec_twins()
            if spec is not None:
                eng.register_batch_handler(self._wf_issue, spec[0])
                eng.register_batch_handler(self._l1_access, spec[1])
                eng.register_batch_handler(self._complete, spec[2])

    def force_slow_path(self) -> None:
        """Re-wire the system onto the instrumented slow twins (SimHeat's
        differential confirmer).  Safe before the first event: all batched
        counters are still zero, and the slow twins run correctly with no
        ledger attached (``_note`` no-ops, ``_issue_cold`` skips the
        acquire, the owner mirror on ``reserve`` is inert).  The resulting
        run must be bit-identical to the fast wiring — that identity *is*
        the twin-path contract."""
        if self._ran:
            raise RuntimeError("force_slow_path() must be called before run()")
        self._force_slow = True
        self._wire_hot_path()

    def force_scalar_dispatch(self) -> None:
        """Re-wire with SimVec batched dispatch disabled: the fast wiring
        stays, but every event runs its scalar fast twin individually
        (the SimVec differential confirmer).  The resulting run must be
        bit-identical to batched dispatch — that identity *is* the batch
        twins' contract, enforced by tests/test_simturbo.py.  Like
        :meth:`force_slow_path`, deliberately not a SimConfig field: it
        must never perturb sim_cache_key or the fingerprint contract."""
        if self._ran:
            raise RuntimeError("force_scalar_dispatch() must be called before run()")
        self._force_scalar = True
        self._wire_hot_path()

    def _attach_watchdog(self) -> None:
        if self._ledger is None:
            # Wait-graph holder attribution rides the sanitizer ledger;
            # watchdog mode implies it (sanitized runs are bit-identical).
            self._attach_sanitizer()
        watchdog = StallWatchdog(
            window=self.cfg.watchdog_window,
            same_cycle_limit=self.cfg.watchdog_same_cycle_limit,
            inflight=lambda: self.outstanding,
            graph=lambda: build_wait_graph(self),
        )
        self._watchdog = watchdog
        self.engine.attach_watchdog(watchdog)

    def _attach_sanitizer(self) -> None:
        from repro.analysis.sanitizer import ResourceLedger

        ledger = ResourceLedger(clock=lambda: self.engine.now)
        self._ledger = ledger
        self.engine.attach_sanitizer(ledger)
        for i, mshr in enumerate(self.l1_mshrs):
            mshr.ledger = ledger
            mshr.ledger_scope = f"l1-mshr[{i}]"
        for s in self.l2_slices:
            s.mshr.ledger = ledger
            s.mshr.ledger_scope = f"l2-mshr[{s.slice_id}]"
        for cache in self.l1_caches:
            cache.ledger = ledger
        for xb in (
            self.topo.noc1_req + self.topo.noc1_rep
            + self.topo.noc2_req + self.topo.noc2_rep
            + self.topo.cdx2_req + self.topo.cdx2_rep
        ):
            xb.attach_sanitizer(ledger)
        # Bank/channel servers: reservation validation plus the holder
        # mirror the stall watchdog's wait graph reads.
        for bank in self.l1_banks + self.l2_banks:
            bank.attach_sanitizer(ledger)
        for mc in self.mcs:
            mc.attach_sanitizer(ledger)

    # ------------------------------------------------------------------ build

    def _build_l1_level(self) -> None:
        gpu, spec = self.cfg.gpu, self.spec
        self.l1_directory = ReplicationDirectory()
        if self.decoupled:
            count = self.geometry.num_dcl1
            size = gpu.dcl1_size_bytes(count, spec.l1_size_mult)
            if spec.kind == DesignKind.SINGLE_L1:
                # Section II-A's idealization keeps the baseline latency and
                # the aggregate bank bandwidth.
                latency = gpu.l1_latency
                bank_service = 1.0 / gpu.num_cores
            else:
                latency = gpu.l1_level_latency(size)
                bank_service = 1.0
            mshr_entries = gpu.l1_mshr_entries * max(1, gpu.num_cores // count)
            index_divisor = self.geometry.dcl1_per_cluster
        else:
            count = gpu.num_cores
            size = int(gpu.l1_size_bytes * spec.l1_size_mult)
            size = max(gpu.l1_assoc * gpu.line_bytes, size)
            latency = gpu.l1_level_latency(size)
            bank_service = 1.0
            mshr_entries = gpu.l1_mshr_entries
            index_divisor = 1
        if self.cfg.l1_latency_override is not None:
            latency = self.cfg.l1_latency_override
        self.l1_caches: List[SetAssociativeCache] = [
            SetAssociativeCache(
                name=f"L1[{i}]",
                size_bytes=size,
                assoc=gpu.l1_assoc,
                line_bytes=gpu.line_bytes,
                policy=self.cfg.l1_policy,
                cache_id=i,
                directory=self.l1_directory,
                perfect=spec.perfect_l1,
                index_divisor=index_divisor,
            )
            for i in range(count)
        ]
        self.l1_banks: List[Server] = [
            Server(f"L1bank[{i}]", bank_service, latency) for i in range(count)
        ]
        self.l1_mshrs: List[MSHRFile] = [MSHRFile(mshr_entries) for _ in range(count)]
        if self.cfg.l1_bypass:
            from repro.cache.bypass import StreamingBypassFilter

            self.l1_filters = [StreamingBypassFilter() for _ in range(count)]
        else:
            self.l1_filters = None

    def _build_topology(self) -> None:
        from repro.noc.topology import NoCTopology

        gpu = self.cfg.gpu
        self.topo = NoCTopology(
            self.spec,
            gpu.num_cores,
            gpu.num_l2_slices,
            gpu.noc_cycles_per_flit,
            gpu.noc_latency,
            geometry=self.geometry,
            cdxbar_group_size=gpu.cdxbar_group_size,
            cdxbar_columns=gpu.cdxbar_columns,
            short_link_mm=gpu.short_link_mm,
            long_link_mm=gpu.long_link_mm,
        )

    def _build_l2_and_memory(self) -> None:
        gpu = self.cfg.gpu
        self.l2_slices = [
            L2Slice(
                s,
                gpu.l2_slice_bytes,
                gpu.l2_assoc,
                gpu.line_bytes,
                mshr_entries=gpu.l2_mshr_entries,
                policy=self.cfg.l2_policy,
                num_slices=gpu.num_l2_slices,
            )
            for s in range(gpu.num_l2_slices)
        ]
        self.l2_banks = [
            Server(f"L2bank[{s}]", gpu.l2_service, gpu.l2_latency)
            for s in range(gpu.num_l2_slices)
        ]
        self.mcs = [
            MemoryController(c, gpu.dram_service, gpu.dram_latency, gpu.dram_bank_groups)
            for c in range(gpu.num_channels)
        ]

    def _build_cores(self) -> None:
        gpu = self.cfg.gpu
        prof = self.workload.profile
        self.cores = [
            CoreState(c, prof.wavefront_slots, prof.compute_gap, prof.mlp)
            for c in range(gpu.num_cores)
        ]
        scheduler = make_scheduler(self.cfg.cta_scheduler)
        weights = self.workload.core_weights(gpu.num_cores)
        queues = scheduler.assign(self.workload.num_ctas, gpu.num_cores, weights)
        for core, queue in zip(self.cores, queues):
            core.assign_ctas(queue)

    # ------------------------------------------------------------------- run

    def run(self) -> SimResult:
        """Execute the simulation to completion and return its result."""
        if self._ran:
            raise RuntimeError("GPUSystem instances are single-use; build a new one")
        self._ran = True
        seeds = []
        for core in self.cores:
            for wf in core.slots:
                stream = core.next_stream(self.workload.streams)
                if stream is not None:
                    wf.bind(stream)
                    core.active_wavefronts += 1
                    seeds.append(wf)
        # Vector seeding: identical to one schedule() per wavefront in
        # the same order (consecutive seqs), minus the per-call overhead.
        self.engine.schedule_batch(0.0, self._wf_issue, seeds)
        # Wall-clock observability only — never part of the result's
        # fingerprint (see repro.sim.results._OBSERVABILITY_FIELDS).
        # GC pause for the drain: the steady-state event loop recycles
        # requests through the free list and never drops reference
        # cycles, so collector sweeps over the (large, static) object
        # graph are pure overhead.  Restored unconditionally — a raising
        # run must not leave the collector off for the caller.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        t0 = perf_counter()  # simlint: disable=SL101
        try:
            self.engine.run()
        finally:
            if gc_was_enabled:
                gc.enable()
        wall = perf_counter() - t0  # simlint: disable=SL101
        if self._watchdog is not None and self.outstanding != 0:
            # Checked before the ledger's drain assertion: a wedged drain
            # should surface as a wait-graph-carrying SimStallError (who
            # holds what, who waits on what), not as a bare leak list.
            self._watchdog.drained(self.engine.now)
        if self._ledger is not None:
            # Checked before the bare outstanding-count guard below: a
            # leak that strands requests should surface as an attributed
            # per-resource report, not as an opaque count mismatch.
            self._ledger.assert_drained()
        if self.outstanding != 0:
            raise RuntimeError(
                f"simulation drained with {self.outstanding} requests outstanding"
            )
        self._collect()
        self.result.wall_time_s = wall
        self.result.events_per_s = (
            self.engine.events_processed / wall if wall > 0 else 0.0
        )
        return self.result

    # -------------------------------------------------------- wavefront side

    def _schedule_issue(self, wf: Wavefront, t: float) -> None:
        """Arrange for ``wf`` to attempt its next issue at ``t`` (idempotent)."""
        if not wf.issue_pending:
            wf.issue_pending = True
            self.schedule(t, self._wf_issue, wf)

    def _wf_issue(self, wf: Wavefront) -> None:
        wf.issue_pending = False
        access = wf.next_access()
        if access is None:
            # Stream exhausted: refill once the last reply lands.
            if wf.outstanding == 0:
                self._wf_refill(wf)
            return
        line, kind = access
        core = self.cores[wf.core_id]
        core.count_access(wf.compute_gap)
        # The core's single issue pipeline carries the memory instruction
        # plus this wavefront's trailing ALU instructions, so one memory
        # access occupies it for 1 + compute_gap cycles — this is what
        # bounds per-core L1 demand the way a real SIMT front-end does.
        # (The issue port never carries a ledger or an owner, so the fast
        # reservation is always equivalent.)
        t = core.issue_port.reserve_fast(self.engine.now, 1.0 + wf.compute_gap)
        if kind == _LOAD and self._fast:
            self._issue_load_fast(wf, line, t)
        else:
            self._issue_cold(wf, line, kind, t)

    def _issue_load_fast(self, wf: Wavefront, line: int, t: float) -> None:
        """Lean LOAD issue path (uninstrumented runs; the dominant kind).

        Same schedule-call order as :meth:`_issue_cold` — the MLP-headroom
        re-issue is enqueued *before* the route hop, so same-cycle FIFO
        ties break identically in both paths.
        """
        pool = self._req_pool
        if pool:
            req = pool.pop()
            req.l1_hit = False
            req.l2_hit = False
            req.merged = False
        else:
            req = MemoryRequest(0, _LOAD, self._request_bytes, 0)
        req.addr = line << self._line_bits
        req.kind = _LOAD
        req.core_id = wf.core_id
        req.wavefront = wf
        req.issue_time = t
        req.line = line
        l2 = line % self._num_l2_slices
        req.l2_id = l2
        req.mc_id = l2 // self._slices_per_chan
        self.outstanding += 1
        self._n_loads += 1
        wf.outstanding += 1
        if wf.outstanding < wf.mlp:
            self._schedule_issue(wf, t)
        if self.decoupled:
            home = self._home_of(wf.core_id, line)
            req.dcl1_id = home
            if self._node_credits is None:
                self.schedule(
                    self._rt_core_to_dcl1(t, wf.core_id, home, 1), self._l1_access, req
                )
            else:
                self._enter_node(req, t)
        else:
            self.schedule(t, self._l1_access, req)

    def _issue_cold(self, wf: Wavefront, line: int, kind: int, t: float) -> None:
        """Issue path for STORE/ATOMIC/BYPASS and every instrumented run."""
        if self._fast and self._req_pool:
            req = self._req_pool.pop().reinit(
                line << self._line_bits, kind, self._request_bytes, wf.core_id
            )
        else:
            req = MemoryRequest(line << self._line_bits, kind, self._request_bytes, wf.core_id)
        req.line = line
        l2 = line % self._num_l2_slices
        req.l2_id = l2
        req.mc_id = l2 // self._slices_per_chan
        req.wavefront = wf
        req.issue_time = t
        self.outstanding += 1
        if self._ledger is not None:
            # The ledger keeps a reference to req, so the id() key cannot
            # be recycled while the hold is live.
            self._ledger.acquire("request", id(req), req)
        if kind == _LOAD:
            self._n_loads += 1
        elif kind == _STORE:
            self._n_stores += 1
        elif kind == _ATOMIC:
            self._n_atomics += 1
        else:
            self._n_bypasses += 1

        if kind != _STORE:
            wf.outstanding += 1
        # Keep issuing while the wavefront has MLP headroom (stores never
        # block, so they always leave headroom).
        if wf.outstanding < wf.mlp:
            self._schedule_issue(wf, t)

        if self.decoupled:
            req.dcl1_id = self._home_of(wf.core_id, line)
            self._enter_node(req, t)
        else:
            if kind == _ATOMIC or kind == _BYPASS:
                t2 = self._rt_to_l2(t, wf.core_id, l2, 1)
                self.schedule(t2, self._at_l2, req)
            else:
                self.schedule(t, self._l1_access, req)

    def _wf_refill(self, wf: Wavefront) -> None:
        core = self.cores[wf.core_id]
        stream = core.next_stream(self.workload.streams)
        if stream is not None:
            wf.bind(stream)
            self._wf_issue(wf)
        else:
            core.active_wavefronts -= 1
            core.finish_time = self.engine.now

    # ------------------------------------------------------- SimVec batch twins

    def _wf_issue_batch(self, bucket, lo, hi) -> None:
        """SimVec twin of :meth:`_wf_issue` for one same-cycle run.

        Receives the engine's run view — the wavefronts sit at the odd
        slots ``bucket[lo + 1 : hi : 2]`` (see
        :meth:`~repro.sim.engine.Engine.register_batch_handler`).

        Three phases, each preserving the scalar per-event order where it
        is observable:

        1. Advance every wavefront's stream cursor (pure, wavefront-local)
           and collect lines/kinds/cores into scratch buffers.
        2. Vectorized math: addresses, L2/MC routing and home-node lookups
           over NumPy int64 arrays (bit-exact vs Python ints); issue-port
           reservations and — when every access is a LOAD — the NoC#1
           request traversals resolved per-batch.  Port state chains are
           per-server and evolve in item order, identical to sequential
           calls; issue ports, NoC#1 ports and pass-3 state are disjoint,
           so phase-splitting them cannot reorder any single server's
           float chain.
        3. Stateful effects per wavefront, in run order — pool, counters,
           MLP re-issue and the L1 hop — making exactly the schedule()
           calls the scalar twin would, in the same order (seq numbers
           break same-cycle ties, so call order is part of the contract).

        Rare shapes (an exhausted wavefront, whose refill can issue
        inline) fall back to scalar dispatch for the whole run before any
        cursor moves, keeping the interleaving exactly scalar.
        """
        for s in range(lo + 1, hi, 2):
            if bucket[s].done:
                for w in range(lo + 1, hi, 2):
                    self._wf_issue(bucket[w])  # simheat: disable=SH604
                return
        lines = self._vb_lines
        kinds = self._vb_kinds
        cores = self._vb_cores
        sizes = self._vb_sizes
        lines.clear()
        kinds.clear()
        cores.clear()
        sizes.clear()
        nonload = 0
        for s in range(lo + 1, hi, 2):
            wf = bucket[s]
            wf.issue_pending = False
            pc = wf.pc
            lines.append(wf._lines[pc])
            kind = wf._kinds[pc]
            kinds.append(kind)
            nonload |= kind
            cores.append(wf.core_id)
            sizes.append(wf._issue_size)
            pc += 1
            wf.pc = pc
            if pc >= wf._length:
                wf.done = True

        # Phase 2a: address/route math (identical ints either way).
        k = (hi - lo) >> 1
        addrs = self._vb_addrs
        l2s = self._vb_l2s
        mcs = self._vb_mcs
        homes = self._vb_homes
        addrs.clear()
        l2s.clear()
        mcs.clear()
        homes.clear()
        line_bits = self._line_bits
        num_l2 = self._num_l2_slices
        spc = self._slices_per_chan
        decoupled = self.decoupled
        if _np is not None and k >= _VEC_MIN:
            arr = _np.array(lines, dtype=_np.int64)
            addrs.extend((arr << line_bits).tolist())
            l2arr = arr % num_l2
            l2s.extend(l2arr.tolist())
            mcs.extend((l2arr // spc).tolist())
            if decoupled:
                homes.extend(self._home_of_batch(
                    _np.array(cores, dtype=_np.int64), arr
                ).tolist())
        else:
            for line in lines:
                addrs.append(line << line_bits)
                l2 = line % num_l2
                l2s.append(l2)
                mcs.append(l2 // spc)
            if decoupled:
                home_of = self._home_of
                for i in range(k):
                    homes.append(home_of(cores[i], lines[i]))

        # Phase 2b: issue-port reservations, per-batch (wavefronts on one
        # core share its port; repeats chain exactly like scalar calls).
        now = self.engine.now
        ts = self._vb_ts
        ts.clear()
        reserve_run_fast_sized(self._issue_ports, cores, now, sizes, ts)

        # Phase 2c: NoC#1 request hop per-batch — only when every access
        # is a LOAD (mixed runs interleave cold-kind traversals on the
        # same crossbar, so they route per item in phase 3) and Q1
        # credits are off (admission can park requests).
        credits = self._node_credits
        arrivals = self._vb_arr
        arrivals.clear()
        rt_batch = self._rt_c2d_batch
        batched_route = (
            decoupled and not nonload and credits is None and rt_batch is not None
        )
        if batched_route:
            rt_batch(ts, cores, homes, 1, arrivals)

        # Phase 3: stateful effects, in run order.
        cores_list = self.cores
        pool = self._req_pool
        schedule = self.schedule
        issue_cb = self._wf_issue
        l1_cb = self._l1_access
        rt_c2d = self._rt_core_to_dcl1
        req_bytes = self._request_bytes
        load = _LOAD
        outst = 0
        n_loads = 0
        i = -1
        for s in range(lo + 1, hi, 2):
            wf = bucket[s]
            i += 1
            kind = kinds[i]
            t = ts[i]
            core = cores_list[cores[i]]
            # count_access inlined (_instr_inc is 1 + int(gap), matching
            # the scalar rounding).
            core.mem_instructions += 1
            core.instructions += wf._instr_inc
            if kind == load:
                if pool:
                    req = pool.pop()
                    req.l1_hit = False
                    req.l2_hit = False
                    req.merged = False
                else:
                    req = MemoryRequest(0, load, req_bytes, 0)
                req.addr = addrs[i]
                req.kind = load
                req.core_id = cores[i]
                req.wavefront = wf
                req.issue_time = t
                req.line = lines[i]
                req.l2_id = l2s[i]
                req.mc_id = mcs[i]
                outst += 1
                n_loads += 1
                wf.outstanding += 1
                if wf.outstanding < wf.mlp and not wf.issue_pending:
                    wf.issue_pending = True
                    schedule(t, issue_cb, wf)
                if decoupled:
                    home = homes[i]
                    req.dcl1_id = home
                    if credits is None:
                        if batched_route:
                            schedule(arrivals[i], l1_cb, req)
                        else:
                            schedule(rt_c2d(t, cores[i], home, 1), l1_cb, req)
                    else:
                        self._enter_node(req, t)
                else:
                    schedule(t, l1_cb, req)
            else:
                self._issue_cold(wf, lines[i], kind, t)  # simheat: disable=SH604
        self.outstanding += outst
        self._n_loads += n_loads

    def _l1_access_batch(self, bucket, lo, hi) -> None:
        """SimVec twin of :meth:`_l1_access` for one same-cycle run
        (requests at the odd slots of ``bucket[lo:hi]``).

        Bank reservations resolve per-batch (phase A; bank chains are
        per-server and evolve in item order, and nothing in phase B
        touches bank state), then cache accesses, credit releases and the
        reply/miss hops run per request in run order — same schedule-call
        order as the scalar twin.
        """
        now = self.engine.now
        decoupled = self.decoupled
        idxs = self._vb_idx
        idxs.clear()
        if decoupled:
            for s in range(lo + 1, hi, 2):
                idxs.append(bucket[s].dcl1_id)
        else:
            for s in range(lo + 1, hi, 2):
                idxs.append(bucket[s].core_id)
        ts = self._vb_ts
        ts.clear()
        banks = self.l1_banks
        reserve_run_fast(banks, idxs, now, ts)

        credits = self._node_credits
        caches = self.l1_caches
        filters = self.l1_filters
        schedule = self.schedule
        complete_cb = self._complete
        at_l2_cb = self._at_l2
        rel_cb = self._release_node
        rt_d2c = self._rt_dcl1_to_core
        rt_to_l2 = self._rt_to_l2
        reply_flits = self._noc1_reply_flits
        req_flits = self._req_flits
        line_flits = self._line_flits
        load = _LOAD
        i = -1
        for s in range(lo + 1, hi, 2):
            req = bucket[s]
            i += 1
            idx = idxs[i]
            t = ts[i]
            if credits is not None:
                free_at = max(now, t - banks[idx].latency)
                schedule(free_at, rel_cb, req, -1)
            cache = caches[idx]
            if req.kind == load:
                if cache.access_load(req.line):
                    req.l1_hit = True
                    if filters is not None:
                        filters[idx].on_hit(req.line)
                    if decoupled:
                        t = rt_d2c(t, idx, req.core_id, reply_flits)
                    schedule(t, complete_cb, req)
                else:
                    self._l1_miss(req, t, idx)
            else:  # STORE: write-evict + no-write-allocate, always to L2
                hit = cache.access_store(req.line)
                req.l1_hit = hit
                if hit and filters is not None:
                    filters[idx].on_evict(req.line)
                flits = req_flits + (line_flits if hit else 0)
                src = idx if decoupled else req.core_id
                schedule(rt_to_l2(t, src, req.l2_id, flits), at_l2_cb, req)

    def _complete_batch(self, bucket, lo, hi) -> None:
        """SimVec twin of :meth:`_complete` for one same-cycle run
        (requests at the odd slots of ``bucket[lo:hi]``; fast-path body
        only — batch dispatch is never wired on instrumented runs).

        Re-issues collect into a scratch list and schedule in one
        ``schedule_batch`` call: the scalar twin makes no other schedule
        calls between completions, so the deferred pushes get the same
        seq numbers in the same order.
        """
        now = self.engine.now
        pool = self._req_pool
        pend = self._vb_pend
        pend.clear()
        rtt_sum = self._rtt_sum
        rtt_count = 0
        load = _LOAD
        store = _STORE
        for s in range(lo + 1, hi, 2):
            req = bucket[s]
            kind = req.kind
            if kind == load:
                rtt_sum += now - req.issue_time
                rtt_count += 1
                wf = req.wavefront
                wf.outstanding -= 1
                if not wf.issue_pending:
                    wf.issue_pending = True
                    pend.append(wf)
            elif kind != store:
                wf = req.wavefront
                wf.outstanding -= 1
                if not wf.issue_pending:
                    wf.issue_pending = True
                    pend.append(wf)
            req.wavefront = None
            pool.append(req)
        self.outstanding -= (hi - lo) >> 1
        self._rtt_sum = rtt_sum
        self._rtt_count += rtt_count
        if pend:
            self.engine.schedule_batch(now, self._wf_issue, pend)

    def _make_spec_twins(self):
        """Build fused batch twins for the single-cluster decoupled fast
        shape (the paper's ShY family at Z = 1, credits/filters off, LRU,
        no directory — what the headline Sh40 runs are), or ``None`` when
        any feature the fusion elides is active.

        The generic batch twins above stay correct for every design by
        phasing their work through scratch arrays and prebound closures;
        these closures instead fuse the whole per-item pipeline — stream
        advance, issue-port reservation, NoC#1 hop, cache probe, reply
        hop and the event push — into one loop with every per-design
        decision resolved here, at wiring time.  Each inlined block
        mirrors its canonical twin statement for statement:

        * port reservations — ``Server.reserve_fast``;
        * crossbar hops — ``Crossbar.traverse_fast`` (request flits are
          always 1, so the ``service * flits`` multiply is elided there;
          bit-exact under IEEE-754);
        * home lookup — the ``interleave`` branch of
          ``HomeMapper.make_fast_home_of`` with the Z = 1 cluster term
          dropped (``core_id // n * m == 0``);
        * cache probe — ``SetAssociativeCache.access_load`` with the
          LRU set's ``OrderedDict`` addressed directly;
        * event pushes — ``Engine.schedule``'s bucket append.  The
          validation branch is vacuous here: every push time sits at the
          far end of a strictly-positive occupancy chain starting at
          ``now``, so it is finite and never in the past.

        Equivalence with the scalar twins is enforced by the SimVec
        differential confirmer (``force_scalar_dispatch``) and the
        fingerprint-identity tests; runs containing any shape the fusion
        does not handle (exhausted wavefront, non-LOAD issue) delegate to
        the generic twin before touching state.
        """
        if not (self._vec and self.decoupled):
            return None
        if self._node_credits is not None or self.l1_filters is not None:
            return None
        geo = self.geometry
        topo = self.topo
        if len(topo.noc1_req) != 1 or geo.cores_per_cluster != topo.num_cores:
            return None
        if self.home.strategy != "interleave":
            return None
        c0 = self.l1_caches[0]
        for c in self.l1_caches:
            if (
                c.perfect
                or c.policy_name != "lru"
                or c.index_divisor != c0.index_divisor
                or c._set_mask != c0._set_mask
            ):
                return None

        sysm = self
        eng = self.engine
        heap = eng._heap
        buckets = eng._buckets
        hpush = _heappush
        m = geo.dcl1_per_cluster
        line_bits = self._line_bits
        num_l2 = self._num_l2_slices
        spc = self._slices_per_chan
        req_bytes = self._request_bytes
        load = _LOAD
        ports = self._issue_ports
        cores_list = self.cores
        pool = self._req_pool
        issue_cb = self._wf_issue
        l1_cb = self._l1_access
        complete_cb = self._complete
        at_l2_cb = self._at_l2
        generic_issue = self._wf_issue_batch
        req_xb = topo.noc1_req[0]
        qin = req_xb._in
        qout = req_xb._out
        rep_xb = topo.noc1_rep[0]
        rin = rep_xb._in
        rout = rep_xb._out
        reply_flits = self._noc1_reply_flits
        caches = self.l1_caches
        banks = self.l1_banks
        div = c0.index_divisor
        strip = div > 1
        smask = c0._set_mask
        rt_to_l2 = self._rt_to_l2
        req_flits = self._req_flits
        line_flits = self._line_flits

        refill = self._wf_refill

        def issue_run(bucket, lo, hi):
            # Delegate runs with a shape the fusion elides (non-LOAD) to
            # the generic twin before any cursor moves, keeping the
            # interleaving exactly scalar.  Exhausted wavefronts are
            # handled inline below — delegating those would push every
            # end-of-stream run (and its co-scheduled live issues) back
            # onto the scalar path.
            for s in range(lo + 1, hi, 2):
                wf = bucket[s]
                if not wf.done and wf._kinds[wf.pc] != load:
                    generic_issue(bucket, lo, hi)
                    return
            now = eng.now
            outst = 0
            for s in range(lo + 1, hi, 2):
                wf = bucket[s]
                wf.issue_pending = False
                if wf.done:
                    # _wf_issue's exhausted-stream branch: refill once
                    # the last reply lands (CTA replacement re-enters
                    # the scalar issue path, which is the canonical
                    # behaviour — refills are rare).
                    if wf.outstanding == 0:
                        refill(wf)
                    continue
                pc = wf.pc
                line = wf._lines[pc]
                pc += 1
                wf.pc = pc
                if pc >= wf._length:
                    wf.done = True
                c = wf.core_id
                # Issue-port reservation (Server.reserve_fast).
                srv = ports[c]
                nf = srv.next_free
                start = now if now > nf else nf
                occ = srv.service * wf._issue_size
                srv.next_free = start + occ
                srv.busy_cycles += occ
                srv.num_served += 1
                t = start + occ + srv.latency
                # CoreState.count_access (_instr_inc is 1 + int(gap)).
                core = cores_list[c]
                core.mem_instructions += 1
                core.instructions += wf._instr_inc
                if pool:
                    req = pool.pop()
                    req.l1_hit = False
                    req.l2_hit = False
                    req.merged = False
                else:
                    req = MemoryRequest(0, load, req_bytes, 0)
                l2 = line % num_l2
                home = line % m
                req.addr = line << line_bits
                req.kind = load
                req.core_id = c
                req.wavefront = wf
                req.issue_time = t
                req.line = line
                req.l2_id = l2
                req.mc_id = l2 // spc
                req.dcl1_id = home
                outst += 1
                wf.outstanding += 1
                # (_schedule_issue's issue_pending guard is vacuous here:
                # it was cleared at the top of this item and nothing set
                # it since.)
                if wf.outstanding < wf.mlp:
                    wf.issue_pending = True
                    key = (t, 0)
                    b = buckets.get(key)
                    if b is None:
                        buckets[key] = [issue_cb, wf]
                        hpush(heap, key)
                    else:
                        b.append(issue_cb)
                        b.append(wf)
                # NoC#1 request hop, one flit (Crossbar.traverse_fast).
                p = qin[c]
                nf = p.next_free
                sx = t if t > nf else nf
                occ = p.service
                p.next_free = sx + occ
                p.busy_cycles += occ
                p.num_served += 1
                t1 = sx + occ + p.latency
                p = qout[home]
                nf = p.next_free
                sx = t1 if t1 > nf else nf
                occ = p.service
                p.next_free = sx + occ
                p.busy_cycles += occ
                p.num_served += 1
                arr = sx + occ + p.latency
                key = (arr, 0)
                b = buckets.get(key)
                if b is None:
                    buckets[key] = [l1_cb, req]
                    hpush(heap, key)
                else:
                    b.append(l1_cb)
                    b.append(req)
            req_xb.flit_hops += outst
            sysm.outstanding += outst
            sysm._n_loads += outst

        def l1_run(bucket, lo, hi):
            now = eng.now
            nhits = 0
            for s in range(lo + 1, hi, 2):
                req = bucket[s]
                idx = req.dcl1_id
                # DC-L1 bank reservation (Server.reserve_fast).
                srv = banks[idx]
                nf = srv.next_free
                start = now if now > nf else nf
                occ = srv.service
                srv.next_free = start + occ
                srv.busy_cycles += occ
                srv.num_served += 1
                t = start + occ + srv.latency
                cache = caches[idx]
                if req.kind == load:
                    line = req.line
                    # SetAssociativeCache.access_load over the LRU set.
                    od = cache._sets[
                        ((line // div) & smask) if strip else (line & smask)
                    ]._order
                    if line in od:
                        od.move_to_end(line)
                        cache.stats.load_hits += 1
                        req.l1_hit = True
                        # NoC#1 reply hop (Crossbar.traverse_fast).
                        p = rin[idx]
                        nf = p.next_free
                        sx = t if t > nf else nf
                        occ = p.service * reply_flits
                        p.next_free = sx + occ
                        p.busy_cycles += occ
                        p.num_served += 1
                        t1 = sx + occ + p.latency
                        p = rout[req.core_id]
                        nf = p.next_free
                        sx = t1 if t1 > nf else nf
                        occ = p.service * reply_flits
                        p.next_free = sx + occ
                        p.busy_cycles += occ
                        p.num_served += 1
                        t2 = sx + occ + p.latency
                        nhits += 1
                        key = (t2, 0)
                        b = buckets.get(key)
                        if b is None:
                            buckets[key] = [complete_cb, req]
                            hpush(heap, key)
                        else:
                            b.append(complete_cb)
                            b.append(req)
                    else:
                        # access_load's miss branch, directory included
                        # (replication-ratio metric; shared DC-L1 levels
                        # always carry one).
                        stats = cache.stats
                        stats.load_misses += 1
                        d = cache.directory
                        if d is not None and d.held_elsewhere(line, cache.cache_id):
                            stats.replicated_misses += 1
                        sysm._l1_miss(req, t, idx)
                else:
                    # STORE: write-evict + no-write-allocate, always to
                    # L2 — same statements as the scalar twin's branch.
                    hit = cache.access_store(req.line)
                    req.l1_hit = hit
                    flits = req_flits + (line_flits if hit else 0)
                    t2 = rt_to_l2(t, idx, req.l2_id, flits)
                    key = (t2, 0)
                    b = buckets.get(key)
                    if b is None:
                        buckets[key] = [at_l2_cb, req]
                        hpush(heap, key)
                    else:
                        b.append(at_l2_cb)
                        b.append(req)
            rep_xb.flit_hops += nhits * reply_flits

        store = _STORE

        def complete_run(bucket, lo, hi):
            # Fused _complete_batch: same statements, with the re-issue
            # pushes inlined (Engine.schedule's bucket append — all of a
            # run's re-issues land at the one key ``(now, 0)``, so the
            # target bucket is resolved once, on first use).  The push
            # sequence is the item order either way; interleaving the
            # pushes with the free-list appends is unobservable because
            # the pool's append order itself never changes.
            now = eng.now
            rtt_sum = 0.0
            rtt_count = 0
            key = (now, 0)
            b = None
            for s in range(lo + 1, hi, 2):
                req = bucket[s]
                kind = req.kind
                if kind == load:
                    rtt_sum += now - req.issue_time
                    rtt_count += 1
                    wf = req.wavefront
                    wf.outstanding -= 1
                    if not wf.issue_pending:
                        wf.issue_pending = True
                        if b is None:
                            b = buckets.get(key)
                            if b is None:
                                b = []
                                buckets[key] = b
                                hpush(heap, key)
                        b.append(issue_cb)
                        b.append(wf)
                elif kind != store:
                    wf = req.wavefront
                    wf.outstanding -= 1
                    if not wf.issue_pending:
                        wf.issue_pending = True
                        if b is None:
                            b = buckets.get(key)
                            if b is None:
                                b = []
                                buckets[key] = b
                                hpush(heap, key)
                        b.append(issue_cb)
                        b.append(wf)
                req.wavefront = None
                pool.append(req)
            sysm.outstanding -= (hi - lo) >> 1
            sysm._rtt_sum += rtt_sum
            sysm._rtt_count += rtt_count

        return issue_run, l1_run, complete_run

    # ---------------------------------------------------------- node admission

    def _enter_node(self, req: MemoryRequest, t: float) -> None:
        """Admit a request into its home DC-L1 node, honouring Q1 credits
        when finite node queues are enabled."""
        credits = self._node_credits
        if credits is None:
            self._dispatch_to_node(req, t)
            return
        n = req.dcl1_id
        if credits[n] > 0:
            credits[n] -= 1
            if self._ledger is not None:
                self._ledger.acquire("dcl1-q1", (n, id(req)), req)
                self._note(req, f"admitted to dcl1-q1[{n}]")
            self._dispatch_to_node(req, t)
        else:
            self._node_waiters[n].append(req)
            self._n_node_queue_stalls += 1
            if self._ledger is not None:
                self._note(req, f"parked waiting for a dcl1-q1[{n}] credit")

    def _dispatch_to_node(self, req: MemoryRequest, t: float) -> None:
        flits = self._req_flits if req.kind == _STORE else 1
        t1 = self._rt_core_to_dcl1(t, req.core_id, req.dcl1_id, flits)
        kind = req.kind
        if kind == _ATOMIC or kind == _BYPASS:
            # Q1 -> Q3 pass-through: no DC-L1$ access; the Q1 slot frees as
            # soon as the request moves on toward L2.
            t2 = self._rt_to_l2(t1, req.dcl1_id, req.l2_id, 1)
            self.schedule(t2, self._at_l2, req)
            if self._node_credits is not None:
                # Release-before-acquire: a Q1 credit freed at t1 must be
                # visible to any _l1_access arriving at the same cycle, so
                # the order is declared with a priority, not call order.
                self.schedule(t1, self._release_node, req, priority=-1)
        else:
            self.schedule(t1, self._l1_access, req)

    def _release_node(self, req: MemoryRequest) -> None:
        """Free the Q1 slot held by ``req``; admit the oldest waiter if any
        (the freed credit transfers directly to the admitted waiter)."""
        if self._node_credits is None:
            return
        n = req.dcl1_id
        if self._ledger is not None:
            self._ledger.release("dcl1-q1", (n, id(req)))
        waiters = self._node_waiters[n]
        if waiters:
            nxt = waiters.popleft()
            if self._ledger is not None:
                self._ledger.acquire("dcl1-q1", (n, id(nxt)), nxt)
            self._dispatch_to_node(nxt, self.engine.now)
        else:
            self._node_credits[n] += 1

    # ---------------------------------------------------------- L1-level side

    def _l1_index(self, req: MemoryRequest) -> int:
        return req.dcl1_id if self.decoupled else req.core_id

    def _l1_access(self, req: MemoryRequest) -> None:
        idx = req.dcl1_id if self.decoupled else req.core_id
        now = self.engine.now
        if self._fast:
            t = self._l1_reserve[idx](now)
        else:
            self._note(req, f"L1[{idx}] bank access")
            t = self.l1_banks[idx].reserve(now, owner=req)
        if self._node_credits is not None:
            # The request leaves Q1 once the (pipelined) bank accepts it —
            # occupancy, not access latency, holds the queue slot.  The
            # priority declares release-before-acquire against same-cycle
            # _l1_access arrivals (see _dispatch_to_node).
            free_at = max(now, t - self.l1_banks[idx].latency)
            self.schedule(free_at, self._release_node, req, priority=-1)
        cache = self.l1_caches[idx]
        filters = self.l1_filters
        if req.kind == _LOAD:
            if cache.access_load(req.line):
                req.l1_hit = True
                if filters is not None:
                    filters[idx].on_hit(req.line)
                # _l1_reply, inlined for the (dominant) hit case.
                if self.decoupled:
                    t = self._rt_dcl1_to_core(
                        t, idx, req.core_id, self._noc1_reply_flits
                    )
                self.schedule(t, self._complete, req)
            else:
                self._l1_miss(req, t, idx)
        else:  # STORE: write-evict + no-write-allocate, always to L2
            hit = cache.access_store(req.line)
            req.l1_hit = hit
            if hit and filters is not None:
                filters[idx].on_evict(req.line)
            flits = self._req_flits + (self._line_flits if hit else 0)
            src = idx if self.decoupled else req.core_id
            t2 = self._rt_to_l2(t, src, req.l2_id, flits)
            self.schedule(t2, self._at_l2, req)

    def _l1_miss(self, req: MemoryRequest, t: float, idx: int) -> None:
        outcome = self.l1_mshrs[idx].allocate(req.line, req)
        if self._ledger is not None:
            self._note(req, f"L1[{idx}] miss ({outcome})")
        if outcome == "new":
            src = idx if self.decoupled else req.core_id
            t2 = self._rt_to_l2(t, src, req.l2_id, 1)
            self.schedule(t2, self._at_l2, req)
        elif outcome == "merged":
            req.merged = True
        # "stalled": the request sits in the MSHR's stall queue and is
        # re-injected by _l1_fill after an entry frees.

    def _l1_reply(self, req: MemoryRequest, t: float) -> None:
        """Deliver a load's data to its core (NoC#1 hop when decoupled)."""
        if self.decoupled:
            t = self._rt_dcl1_to_core(t, req.dcl1_id, req.core_id, self._noc1_reply_flits)
        self.schedule(t, self._complete, req)

    def _l1_fill(self, req: MemoryRequest) -> None:
        """A load fill arrived back at the L1 level (Q4): install, wake the
        merged waiters, reply to every requesting core."""
        now = self.engine.now
        idx = self._l1_index(req)
        cache = self.l1_caches[idx]
        if self.l1_filters is not None:
            fil = self.l1_filters[idx]
            if fil.should_install():
                victim = cache.install(req.line)
                fil.on_install(req.line)
                if victim is not None:
                    fil.on_evict(victim)
            else:
                self._n_bypassed_fills += 1
        else:
            cache.install(req.line)
        mshr = self.l1_mshrs[idx]
        for waiter in mshr.release(req.line):
            self._l1_reply(waiter, now)
        self._drain_l1_stalls(idx, now)

    def _drain_l1_stalls(self, idx: int, now: float) -> None:
        """Replay stalled requests into freed MSHR entries.

        Replays allocate synchronously (one bank replay per freed entry),
        so a full MSHR costs each stalled request one replay — not a
        retry storm racing for the same entry.
        """
        mshr = self.l1_mshrs[idx]
        cache = self.l1_caches[idx]
        while mshr.has_stalled() and not mshr.full:
            retry = mshr.pop_stalled()
            if self._fast:
                t = self._l1_reserve[idx](now)
            else:
                t = self.l1_banks[idx].reserve(now, owner=retry)
            if cache.access_load(retry.line):
                retry.l1_hit = True
                if self.l1_filters is not None:
                    self.l1_filters[idx].on_hit(retry.line)
                self._l1_reply(retry, t)
                continue
            outcome = mshr.allocate(retry.line, retry)
            if outcome == "new":
                src = idx if self.decoupled else retry.core_id
                t2 = self._rt_to_l2(t, src, retry.l2_id, 1)
                self.schedule(t2, self._at_l2, retry)
            elif outcome == "stalled":
                break

    # ----------------------------------------------------------- L2 and DRAM

    def _charge_writebacks(self, s: int, t: float) -> None:
        """Charge DRAM bandwidth for dirty L2 victims (fire-and-forget)."""
        slice_ = self.l2_slices[s]
        channel = self.mcs[s // self._slices_per_chan]
        for victim in slice_.drain_writebacks():
            channel.access(t, victim)
            self._n_dram_writebacks += 1

    def _at_l2(self, req: MemoryRequest) -> None:
        s = req.l2_id
        slice_ = self.l2_slices[s]
        now = self.engine.now
        fast = self._fast
        if not fast:
            self._note(req, f"at L2 slice {s}")
        kind = req.kind
        if kind == _STORE:
            t = self._l2_reserve[s](now) if fast else self.l2_banks[s].reserve(now, owner=req)
            slice_.access_store(req.line)
            self._charge_writebacks(s, t)
            self._reply_from_l2(req, t)
        elif kind == _ATOMIC:
            # Read-modify-write at the L2/MC: double bank occupancy, DRAM
            # fill on miss, no MSHR merging (atomics serialize).
            if fast:
                t = self._l2_reserve[s](now, 2.0)
            else:
                t = self.l2_banks[s].reserve(now, 2.0, owner=req)
            if slice_.access_load(req.line):
                req.l2_hit = True
                self._reply_from_l2(req, t)
            else:
                t2 = self.mcs[req.mc_id].access(t, req.line, owner=req)
                self._n_dram_accesses += 1
                slice_.install(req.line)
                self._charge_writebacks(s, t)
                self._reply_from_l2(req, t2)
        else:  # LOAD or BYPASS fill
            t = self._l2_reserve[s](now) if fast else self.l2_banks[s].reserve(now, owner=req)
            if slice_.access_load(req.line):
                req.l2_hit = True
                self._reply_from_l2(req, t)
            else:
                outcome = slice_.mshr.allocate(req.line, req)
                if outcome == "new":
                    t2 = self.mcs[req.mc_id].access(t, req.line, owner=req)
                    self._n_dram_accesses += 1
                    # Fill-before-access: a DRAM fill landing at the same
                    # cycle as a demand access to its L2 slice installs
                    # first (see the SimRace note in DESIGN/docs).
                    self.schedule(t2, self._dram_fill, req, priority=-1)
                elif outcome == "merged":
                    req.merged = True

    def _dram_fill(self, req: MemoryRequest) -> None:
        now = self.engine.now
        slice_ = self.l2_slices[req.l2_id]
        slice_.install(req.line)
        self._charge_writebacks(req.l2_id, now)
        for waiter in slice_.mshr.release(req.line):
            self._reply_from_l2(waiter, now)
        self._drain_l2_stalls(req.l2_id, now)

    def _drain_l2_stalls(self, s: int, now: float) -> None:
        """Replay stalled L2 requests into freed MSHR entries (see
        :meth:`_drain_l1_stalls` for why this is synchronous)."""
        slice_ = self.l2_slices[s]
        mshr = slice_.mshr
        while mshr.has_stalled() and not mshr.full:
            retry = mshr.pop_stalled()
            if self._fast:
                t = self._l2_reserve[s](now)
            else:
                t = self.l2_banks[s].reserve(now, owner=retry)
            if slice_.access_load(retry.line):
                retry.l2_hit = True
                self._reply_from_l2(retry, t)
                continue
            outcome = mshr.allocate(retry.line, retry)
            if outcome == "new":
                t2 = self.mcs[retry.mc_id].access(t, retry.line, owner=retry)
                self._n_dram_accesses += 1
                self.schedule(t2, self._dram_fill, retry, priority=-1)
            elif outcome == "stalled":
                break

    def _reply_from_l2(self, req: MemoryRequest, t: float) -> None:
        """Route an L2 reply (fill / ACK / atomic result) back up."""
        if self._ledger is not None:
            self._note(req, f"reply from L2 slice {req.l2_id}")
        kind = req.kind
        if kind == _LOAD or kind == _BYPASS:
            flits = self._line_flits  # fills carry the whole line
        else:
            flits = 1  # store ACK / atomic result
        dst = req.dcl1_id if self.decoupled else req.core_id
        t2 = self._rt_from_l2(t, req.l2_id, dst, flits)
        if kind == _LOAD:
            # Fill-before-access: a Q4 fill landing at the same cycle as a
            # demand access to its L1 node installs (and replays stalled
            # MSHR requests) first, so the same-cycle outcome is a policy,
            # not an accident of schedule() call order.
            self.schedule(t2, self._l1_fill, req, priority=-1)
        else:
            if self.decoupled:
                # ACK / atomic / bypass replies ride NoC#1 back to the core
                # (Q4 -> Q2 pass-through for non-L1 traffic).
                up_flits = self._line_flits if kind == _BYPASS else 1
                t3 = self._rt_dcl1_to_core(t2, req.dcl1_id, req.core_id, up_flits)
                self.schedule(t3, self._complete, req)
            else:
                self.schedule(t2, self._complete, req)

    # ------------------------------------------------------------- completion

    def _note(self, req: MemoryRequest, message: str) -> None:
        """Hop-trace breadcrumb on the request's ledger hold (single
        ``is None`` check when the sanitizer is off)."""
        if self._ledger is not None:
            self._ledger.note("request", id(req), message)

    def _complete(self, req: MemoryRequest) -> None:
        now = self.engine.now
        self.outstanding -= 1
        kind = req.kind
        if self._fast:
            # Lean path: the request is dead after this handler, so it
            # goes back on the free list (recycling is safe here and only
            # here — no ledger holds id(req), and the last event carrying
            # it as a payload is this one).
            if kind == _LOAD:
                self._rtt_sum += now - req.issue_time
                self._rtt_count += 1
                wf = req.wavefront
                wf.outstanding -= 1
                self._schedule_issue(wf, now)
            elif kind != _STORE:
                wf = req.wavefront
                wf.outstanding -= 1
                self._schedule_issue(wf, now)
            req.wavefront = None
            self._req_pool.append(req)
            return
        if self._watchdog is not None:
            self._watchdog.progress(now)
        if self._ledger is not None:
            self._ledger.release("request", id(req))
            self._sanitized_completions += 1
            if self._sanitized_completions % 4096 == 0:
                self._live_audit()
        if kind == _LOAD:
            self._rtt_sum += now - req.issue_time
            self._rtt_count += 1
        if kind != _STORE:
            wf = req.wavefront
            wf.outstanding -= 1
            self._schedule_issue(wf, now)

    def _live_audit(self) -> None:
        """Continuous (mid-run) audit in sanitize mode: structural checks
        that must hold at every point of the run, not only at drain (the
        in-flight counterpart of :func:`repro.sim.validation.audit`)."""
        from repro.sim.validation import live_audit

        findings = live_audit(self)
        tracked = self._ledger.outstanding("request")
        if tracked != self.outstanding:
            findings.append(
                f"ledger tracks {tracked} in-flight requests "
                f"but system.outstanding={self.outstanding}"
            )
        if findings:
            self._ledger.violation("live audit failed:\n  " + "\n  ".join(findings))

    # -------------------------------------------------------------- collect

    def _collect(self) -> None:
        res = self.result
        cycles = self.engine.now
        res.cycles = cycles
        res.instructions = sum(c.instructions for c in self.cores)

        # Flush the batched hot-path counters (accumulated in the same
        # order the original per-event increments ran, so the float RTT
        # sum is bit-identical).
        res.loads = self._n_loads
        res.stores = self._n_stores
        res.atomics = self._n_atomics
        res.bypasses = self._n_bypasses
        res.dram_accesses = self._n_dram_accesses
        res.dram_writebacks = self._n_dram_writebacks
        res.node_queue_stalls = self._n_node_queue_stalls
        res.bypassed_fills = self._n_bypassed_fills
        res.load_rtt_sum = self._rtt_sum
        res.load_rtt_count = self._rtt_count

        for cache in self.l1_caches:
            res.l1.merge(cache.stats)
        misses = res.l1.misses
        res.replication_ratio = res.l1.replicated_misses / misses if misses else 0.0
        res.mean_replicas = self.l1_directory.mean_replicas_sampled()

        for slice_ in self.l2_slices:
            res.l2.merge(slice_.stats)

        if cycles > 0:
            utils = [b.utilization(cycles) for b in self.l1_banks]
            # Normalize DC-L1 bank utilization to requests-per-cycle against
            # the bank's peak (service may be < 1 for the SingleL1 ideal).
            res.l1_port_util_max = max(utils)
            res.l1_port_util_mean = sum(utils) / len(utils)
            res.core_reply_link_util_max = self.topo.max_core_reply_link_utilization(cycles)
            res.dram_util_mean = sum(mc.utilization(cycles) for mc in self.mcs) / len(self.mcs)

        for xb in self.topo.noc1_req + self.topo.noc1_rep:
            res.noc_traffic.append((xb.flit_hops, xb.link_mm, self.spec.noc1_freq_mult))
        for xb in self.topo.noc2_req + self.topo.noc2_rep + self.topo.cdx2_req + self.topo.cdx2_rep:
            res.noc_traffic.append((xb.flit_hops, xb.link_mm, self.spec.noc2_freq_mult))

        for mshr in self.l1_mshrs:
            res.mshr_primary += mshr.primary_misses
            res.mshr_secondary += mshr.secondary_misses
            res.mshr_stalls += mshr.stall_events


def simulate(
    workload: Union[Workload, AppProfile],
    spec: DesignSpec,
    config: Optional[SimConfig] = None,
) -> SimResult:
    """Build and run one simulation; the one-call public entry point."""
    return GPUSystem(workload, spec, config).run()
