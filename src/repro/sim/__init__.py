"""Timing-simulation substrate: event engine, reservation servers, system wiring."""

from repro.sim.config import (
    GPUConfig,
    SimConfig,
    sanitize_env_enabled,
    watchdog_env_enabled,
)
from repro.sim.engine import Engine
from repro.sim.profiler import EventProfiler, ProfileRow, profile_simulation
from repro.sim.resources import Server
from repro.sim.results import NON_IDENTITY_FIELDS, SimResult, identity_manifest
from repro.sim.store import (
    CACHE_SCHEMA_VERSION,
    DiskResultCache,
    cache_key_manifest,
    sim_cache_key,
)
from repro.sim.system import GPUSystem, simulate
from repro.sim.validation import GridValidationError, validate_grid
from repro.sim.watchdog import (
    SimStallError,
    StallWatchdog,
    WaitGraph,
    build_wait_graph,
    watchdog_from_env,
)

__all__ = [
    "GPUConfig",
    "SimConfig",
    "sanitize_env_enabled",
    "watchdog_env_enabled",
    "NON_IDENTITY_FIELDS",
    "identity_manifest",
    "cache_key_manifest",
    "Engine",
    "EventProfiler",
    "ProfileRow",
    "profile_simulation",
    "Server",
    "SimResult",
    "CACHE_SCHEMA_VERSION",
    "DiskResultCache",
    "sim_cache_key",
    "GPUSystem",
    "simulate",
    "GridValidationError",
    "validate_grid",
    "SimStallError",
    "StallWatchdog",
    "WaitGraph",
    "build_wait_graph",
    "watchdog_from_env",
]
