"""Runtime stall watchdog — liveness diagnosis for wedged simulations.

SimFlow (:mod:`repro.analysis.simflow`) proves liveness properties the
AST can show; this module diagnoses the ones it cannot.  A leaked Q1
credit, a camped MSHR or a circular wait does not crash a discrete-event
simulation — it *wedges* it: the event queue drains (or spins at one
cycle) while requests are still in flight, and the run either dies as an
opaque ``outstanding != 0`` count mismatch or burns the whole event
budget.  With the watchdog attached (``SimConfig(watchdog=True)``,
``repro simulate --watchdog``, or ``REPRO_WATCHDOG=1``), a wedged run
raises :class:`SimStallError` carrying a :class:`WaitGraph` — who holds
what, who waits on what, and the oldest in-flight request's hop trace —
at the moment the stall is detectable.

Three triggers, all conservative (a healthy run never trips them):

* **wedged drain** — the event queue drained while requests are still in
  flight: every pending request waits on a resource no future event will
  ever release.  This is the definitive deadlock symptom and is checked
  by :meth:`StallWatchdog.drained` from ``GPUSystem.run``.
* **completion window** — simulated time keeps advancing but no request
  has completed for ``window`` cycles while requests are in flight
  (livelock through e.g. a retry storm).
* **same-cycle limit** — more than ``same_cycle_limit`` events execute
  at one simulated cycle without a completion or a time advance (a
  zero-delay event loop).

The watchdog is observation-only on the hot path (two counter updates per
event) and never changes simulation outcomes: watchdog-on runs are
bit-identical (``SimResult.fingerprint()``) to watchdog-off runs.

Holder attribution comes from the SimSanitizer ledger (watchdog mode
auto-attaches one) plus the holder hooks on
:class:`repro.sim.resources.Server`; wait edges come from the Q1 waiter
queues and the L1/L2 MSHR stall queues.  See ``docs/analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.analysis.sanitizer import describe_owner
from repro.sim.config import watchdog_env_enabled

__all__ = [
    "SimStallError",
    "StallWatchdog",
    "WaitGraph",
    "build_wait_graph",
    "watchdog_from_env",
]

#: Cap per wait-graph section so a massively-stalled run stays readable.
_MAX_SECTION_LINES = 16


def watchdog_from_env() -> bool:
    """True when the ``REPRO_WATCHDOG`` environment variable enables the
    watchdog (any value other than empty or ``0``).

    Kept as a compatibility alias: the environment is resolved by
    :func:`repro.sim.config.watchdog_env_enabled` at :class:`SimConfig`
    construction, never by the sim core at run time (SimPure SP401).
    """
    return watchdog_env_enabled()


class SimStallError(RuntimeError):
    """A simulation stopped making progress; carries the wait graph."""

    def __init__(self, message: str, wait_graph: Optional["WaitGraph"] = None):
        self.wait_graph = wait_graph
        if wait_graph is not None and not wait_graph.empty:
            message = f"{message}\n{wait_graph.render()}"
        super().__init__(message)


@dataclass
class WaitGraph:
    """Resource hold/wait snapshot of a stalled system.

    ``holds``: who holds what (ledger holds + camped server ports).
    ``waits``: who waits on what (Q1 waiter queues, MSHR stall queues).
    ``starved``: resources with zero availability *and* waiters — the
    direct suspects.  ``oldest``: the oldest in-flight request and its
    hop-trace breadcrumbs (ledger note history).
    """

    now: float = 0.0
    holds: List[str] = field(default_factory=list)
    waits: List[str] = field(default_factory=list)
    starved: List[str] = field(default_factory=list)
    oldest: List[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.holds or self.waits or self.starved or self.oldest)

    def _section(self, lines: List[str], title: str) -> List[str]:
        if not lines:
            return []
        shown = lines[:_MAX_SECTION_LINES]
        out = [f"{title}:"] + [f"  {line}" for line in shown]
        if len(lines) > len(shown):
            out.append(f"  ... and {len(lines) - len(shown)} more")
        return out

    def render(self) -> str:
        out = [f"resource wait graph at t={self.now:.1f}:"]
        out += self._section(self.starved, "starved resources")
        out += self._section(self.waits, "waiting")
        out += self._section(self.holds, "holding")
        out += self._section(self.oldest, "oldest in-flight request")
        if len(out) == 1:
            out.append("  (no holds or waiters recorded — attach the "
                       "sanitizer ledger for attribution)")
        return "\n".join(out)


class StallWatchdog:
    """Progress monitor wired between the engine and the system.

    The engine calls :meth:`event` after every dispatched event and
    :meth:`advanced` when simulated time moves; the system calls
    :meth:`progress` on every request completion and :meth:`drained`
    after the event queue empties.  ``inflight`` reports the in-flight
    request count; ``graph`` builds the wait-graph dump lazily (only on
    the failure path).
    """

    def __init__(
        self,
        window: float = 50_000.0,
        same_cycle_limit: int = 1_000_000,
        inflight: Optional[Callable[[], int]] = None,
        graph: Optional[Callable[[], "WaitGraph"]] = None,
    ):
        if not window > 0:
            raise ValueError("watchdog window must be positive")
        if same_cycle_limit < 1:
            raise ValueError("watchdog same-cycle limit must be >= 1")
        self.window = float(window)
        self.same_cycle_limit = int(same_cycle_limit)
        self._inflight = inflight if inflight is not None else (lambda: 0)
        self._graph = graph
        self.last_progress = 0.0
        self.completions = 0
        self.events_at_cycle = 0

    # -- notifications -----------------------------------------------------

    def progress(self, now: float) -> None:
        """A request completed: the system is live."""
        self.last_progress = now
        self.completions += 1
        self.events_at_cycle = 0

    def advanced(self, now: float) -> None:
        """Simulated time moved forward."""
        self.events_at_cycle = 0

    def event(self, now: float) -> None:
        """One event dispatched; trips on livelock signatures."""
        self.events_at_cycle += 1
        if self.events_at_cycle > self.same_cycle_limit:
            self._stall(
                f"simulated time pinned at t={now:.1f}: "
                f"{self.events_at_cycle} events without a completion or "
                "time advance (same-cycle livelock)"
            )
        if now - self.last_progress > self.window and self._inflight() > 0:
            self._stall(
                f"no request completed for {now - self.last_progress:.1f} "
                f"cycles (window={self.window:g}) with "
                f"{self._inflight()} request(s) in flight"
            )

    def drained(self, now: float) -> None:
        """The event queue emptied; wedged if requests remain in flight."""
        inflight = self._inflight()
        if inflight > 0:
            self._stall(
                f"event queue drained at t={now:.1f} with {inflight} "
                "request(s) still in flight — every pending request waits "
                "on a resource no future event will release (deadlock)"
            )

    # -- failure path ------------------------------------------------------

    def _stall(self, message: str) -> None:
        graph = self._graph() if self._graph is not None else None
        raise SimStallError(message, graph)


def build_wait_graph(system: Any) -> WaitGraph:
    """Snapshot the resource hold/wait state of a :class:`GPUSystem`.

    Reads only — safe to call from the failure path at any point of a
    run.  Works with partial instrumentation: sections whose source is
    absent (no ledger, no finite Q1) simply come out empty.
    """
    graph = WaitGraph(now=system.engine.now)

    ledger = getattr(system, "_ledger", None)
    request_holds = []
    if ledger is not None:
        for hold in ledger.holds():
            if hold.kind == "request":
                request_holds.append(hold)
            else:
                graph.holds.append(hold.describe())

    # Camped server ports (holder attribution on Server.reserve).
    now = graph.now
    banks = list(getattr(system, "l1_banks", ())) + list(getattr(system, "l2_banks", ()))
    for mc in getattr(system, "mcs", ()):
        banks.extend(mc.banks)
    for bank in banks:
        holder = bank.current_holder(now)
        if holder is not None:
            graph.holds.append(
                f"{bank.name} busy until t={bank.next_free:.1f}, "
                f"serving {describe_owner(holder)} since t={bank.holder_since:.1f}"
            )

    # Q1 credit waiters (finite node queues).
    credits = getattr(system, "_node_credits", None)
    waiters = getattr(system, "_node_waiters", None)
    if credits is not None and waiters is not None:
        for n, queue in enumerate(waiters):
            if not queue:
                continue
            head = describe_owner(queue[0])
            graph.waits.append(
                f"dcl1-q1[{n}]: {len(queue)} request(s) queued for a "
                f"credit; oldest {head}"
            )
            if credits[n] == 0:
                holders = []
                if ledger is not None:
                    holders = [
                        describe_owner(h.owner)
                        for h in ledger.holds("dcl1-q1")
                        if isinstance(h.key, tuple) and h.key and h.key[0] == n
                    ]
                held_by = ("; credits held by " + ", ".join(holders)) if holders else ""
                graph.starved.append(
                    f"dcl1-q1[{n}]: 0 credit(s) free, {len(queue)} "
                    f"waiter(s){held_by}"
                )

    # MSHR stall queues.
    def _mshr_waits(name: str, mshr: Any) -> None:
        stalled = getattr(mshr, "stalled", None)
        if not stalled:
            return
        graph.waits.append(
            f"{name}: {len(stalled)} request(s) stalled for an entry; "
            f"oldest {describe_owner(stalled[0])}"
        )
        if getattr(mshr, "full", False):
            graph.starved.append(
                f"{name}: all entries in use, {len(stalled)} waiter(s)"
            )

    for i, mshr in enumerate(getattr(system, "l1_mshrs", ())):
        _mshr_waits(f"l1-mshr[{i}]", mshr)
    for slice_ in getattr(system, "l2_slices", ()):
        _mshr_waits(f"l2-mshr[{slice_.slice_id}]", slice_.mshr)

    # Oldest in-flight request plus its hop-trace breadcrumbs.
    if request_holds:
        oldest = min(request_holds, key=lambda h: (h.acquired_at, str(h.key)))
        graph.oldest.append(
            f"{describe_owner(oldest.owner)} in flight since "
            f"t={oldest.acquired_at:.1f}"
        )
        graph.oldest.extend(f"hop {line}" for line in oldest.history)
    return graph
