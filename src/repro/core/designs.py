"""Design specifications for the DC-L1 design space.

A :class:`DesignSpec` is a small, immutable description of one point in the
paper's design space.  Everything else — topology, home mapping, cache
sizing, peak bandwidth — is *derived* from the spec plus the platform
configuration, so a spec is cheap to construct, hash and sweep over.

The design space (Sections III–VI):

=================  =====================================================
``baseline()``     Conventional private per-core L1s; one 80x32 NoC.
``private(Y)``     ``PrY`` — L1s decoupled and aggregated into Y private
                   DC-L1 nodes, each serving ``80/Y`` cores (Section IV).
``shared(Y)``      ``ShY`` — fully shared DC-L1s; each line has a single
                   home node selected by home bits (Section V).
``clustered(Y,Z)`` ``ShY+CZ`` — shared only within each of Z clusters;
                   replication bounded to <= Z copies (Section VI).
``+Boost``         ``noc1_freq_mult=2`` on a clustered spec: doubles the
                   small NoC#1 crossbars' clock (Section VI-C).
``cdxbar()``       Hierarchical two-stage crossbar comparator of Zhao et
                   al., with private per-core L1s (Figure 19a).
``single_l1()``    Hypothetical all-cores-one-L1 design of Section II-A
                   (capacity and aggregate bandwidth preserved).
=================  =====================================================

Note ``PrY`` == ``clustered(Y, Y)`` and ``ShY`` == ``clustered(Y, 1)``
(the paper's C40/C1 endpoints in Figure 11); the constructors normalize to
the clustered formulation so downstream code handles a single geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum


class DesignKind(Enum):
    """Top-level family of a design point."""

    BASELINE = "baseline"
    DCL1 = "dcl1"  # the PrY / ShY / ShY+CZ family (geometry distinguishes them)
    CDXBAR = "cdxbar"
    SINGLE_L1 = "single_l1"


@dataclass(frozen=True)
class DesignSpec:
    """One point in the design space.

    Attributes
    ----------
    kind:
        Design family.
    num_dcl1:
        Y — number of DC-L1 nodes (ignored for BASELINE/CDXBAR, where the
        L1s stay in the cores).
    num_clusters:
        Z — number of shared clusters.  ``Z == num_dcl1`` makes every
        DC-L1 private (PrY); ``Z == 1`` makes the whole level shared (ShY).
    noc1_freq_mult / noc2_freq_mult:
        Clock multipliers relative to the baseline NoC clock.  The paper's
        ``+Boost`` sets ``noc1_freq_mult=2.0``.
    l1_size_mult:
        Total L1 capacity multiplier (the 16x study of Figure 1 and the
        2x-cache boosted baseline of Section VIII-A).
    perfect_l1:
        Model the (DC-)L1s as always hitting (Figure 4c).
    label:
        Display name; auto-generated when empty.
    """

    kind: DesignKind = DesignKind.BASELINE
    num_dcl1: int = 0
    num_clusters: int = 0
    noc1_freq_mult: float = 1.0
    noc2_freq_mult: float = 1.0
    l1_size_mult: float = 1.0
    perfect_l1: bool = False
    label: str = ""

    # -- constructors -------------------------------------------------------

    @staticmethod
    def baseline(
        l1_size_mult: float = 1.0,
        perfect_l1: bool = False,
        noc2_freq_mult: float = 1.0,
        label: str = "",
    ) -> "DesignSpec":
        """Conventional tightly-coupled private-L1 GPU."""
        return DesignSpec(
            kind=DesignKind.BASELINE,
            l1_size_mult=l1_size_mult,
            perfect_l1=perfect_l1,
            noc2_freq_mult=noc2_freq_mult,
            label=label or "Baseline",
        )

    @staticmethod
    def private(num_dcl1: int, perfect_l1: bool = False, label: str = "") -> "DesignSpec":
        """``PrY``: Y private aggregated DC-L1 nodes (Section IV)."""
        if num_dcl1 <= 0:
            raise ValueError("PrY needs a positive DC-L1 node count")
        return DesignSpec(
            kind=DesignKind.DCL1,
            num_dcl1=num_dcl1,
            num_clusters=num_dcl1,
            perfect_l1=perfect_l1,
            label=label or f"Pr{num_dcl1}",
        )

    @staticmethod
    def shared(num_dcl1: int, perfect_l1: bool = False, label: str = "") -> "DesignSpec":
        """``ShY``: fully shared DC-L1 organization (Section V)."""
        if num_dcl1 <= 0:
            raise ValueError("ShY needs a positive DC-L1 node count")
        return DesignSpec(
            kind=DesignKind.DCL1,
            num_dcl1=num_dcl1,
            num_clusters=1,
            perfect_l1=perfect_l1,
            label=label or f"Sh{num_dcl1}",
        )

    @staticmethod
    def clustered(
        num_dcl1: int,
        num_clusters: int,
        boost: float = 1.0,
        perfect_l1: bool = False,
        label: str = "",
    ) -> "DesignSpec":
        """``ShY+CZ`` (optionally ``+Boost``): clustered shared DC-L1s."""
        if num_dcl1 <= 0 or num_clusters <= 0:
            raise ValueError("clustered design needs positive Y and Z")
        if num_dcl1 % num_clusters != 0:
            raise ValueError(
                f"cluster count {num_clusters} must divide DC-L1 count {num_dcl1}"
            )
        if not label:
            label = f"Sh{num_dcl1}+C{num_clusters}"
            if boost != 1.0:
                label += "+Boost" if boost == 2.0 else f"+Boost{boost:g}x"
        return DesignSpec(
            kind=DesignKind.DCL1,
            num_dcl1=num_dcl1,
            num_clusters=num_clusters,
            noc1_freq_mult=boost,
            perfect_l1=perfect_l1,
            label=label,
        )

    @staticmethod
    def cdxbar(
        noc1_freq_mult: float = 1.0,
        noc2_freq_mult: float = 1.0,
        label: str = "",
    ) -> "DesignSpec":
        """Hierarchical two-stage crossbar baseline (Figure 19a).

        ``noc1_freq_mult`` boosts the first (core-side) stage, matching the
        paper's CDXBar+2xNoC1; boosting both stages gives CDXBar+2xNoC.
        """
        if not label:
            label = "CDXBar"
            if noc1_freq_mult == 2.0 and noc2_freq_mult == 2.0:
                label += "+2xNoC"
            elif noc1_freq_mult == 2.0:
                label += "+2xNoC1"
        return DesignSpec(
            kind=DesignKind.CDXBAR,
            noc1_freq_mult=noc1_freq_mult,
            noc2_freq_mult=noc2_freq_mult,
            label=label,
        )

    @staticmethod
    def single_l1(label: str = "") -> "DesignSpec":
        """Section II-A's hypothetical: every core accesses one L1 holding
        the total L1 capacity, with aggregate bandwidth preserved."""
        return DesignSpec(
            kind=DesignKind.SINGLE_L1,
            num_dcl1=1,
            num_clusters=1,
            label=label or "SingleL1",
        )

    # -- derived helpers -----------------------------------------------------

    @property
    def is_decoupled(self) -> bool:
        """True when L1s live in DC-L1 nodes rather than in the cores."""
        return self.kind in (DesignKind.DCL1, DesignKind.SINGLE_L1)

    @property
    def is_private(self) -> bool:
        """True when each DC-L1 is private to its core group (PrY)."""
        return self.kind == DesignKind.DCL1 and self.num_clusters == self.num_dcl1

    @property
    def is_fully_shared(self) -> bool:
        """True for ShY (a single cluster)."""
        return self.kind == DesignKind.DCL1 and self.num_clusters == 1

    @property
    def boosted(self) -> bool:
        return self.noc1_freq_mult > 1.0

    def with_boost(self, boost: float = 2.0) -> "DesignSpec":
        """Return this spec with NoC#1 frequency multiplied by ``boost``."""
        label = self.label
        if label and boost != 1.0 and "Boost" not in label:
            label += "+Boost" if boost == 2.0 else f"+Boost{boost:g}x"
        return replace(self, noc1_freq_mult=boost, label=label)

    def with_perfect_l1(self) -> "DesignSpec":
        """Return this spec with perfect (always-hit) L1s."""
        label = self.label + "+PerfectL1" if self.label else ""
        return replace(self, perfect_l1=True, label=label)

    def __str__(self) -> str:
        return self.label or self.kind.value
