"""The paper's contribution: DC-L1 design space (PrY / ShY / ShY+CZ / +Boost)."""

from repro.core.clusters import ClusterGeometry
from repro.core.designs import DesignKind, DesignSpec
from repro.core.home import HomeMapper
from repro.core.peak_bw import PeakBandwidth, peak_l1_bandwidth, table1_rows

__all__ = [
    "DesignKind",
    "DesignSpec",
    "ClusterGeometry",
    "HomeMapper",
    "PeakBandwidth",
    "peak_l1_bandwidth",
    "table1_rows",
]
