"""Cluster geometry: how cores, DC-L1 nodes, clusters and L2 slices relate.

The clustered design ``ShY+CZ`` (Section VI-A, Figure 10) partitions:

* the ``X`` cores into ``Z`` clusters of ``N = X/Z`` cores,
* the ``Y`` DC-L1 nodes into ``Z`` clusters of ``M = Y/Z`` nodes,

and builds:

* NoC#1 — one ``N x M`` crossbar per cluster,
* NoC#2 — when ``M`` divides the ``L`` L2 slices, ``M`` crossbars of
  ``Z x O`` with ``O = L/M`` (each address range ``r`` has its own
  crossbar connecting the ``Z`` DC-L1s homing ``r`` to the ``O`` L2
  slices serving ``r``); otherwise a single full ``Y x L`` crossbar (the
  Sh40 case, where ``M = 40 > L = 32``).

``PrY`` is the ``Z = Y`` endpoint (``M = 1``; the per-cluster crossbar
degenerates to ``N x 1``) and ``ShY`` is the ``Z = 1`` endpoint, so a
single geometry class covers Figures 5, 7 and 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.designs import DesignKind, DesignSpec


@dataclass(frozen=True)
class ClusterGeometry:
    """Derived geometry of a DC-L1 design point on a concrete platform."""

    num_cores: int
    num_dcl1: int  # Y
    num_clusters: int  # Z
    num_l2: int  # L
    cores_per_cluster: int = field(init=False)  # N
    dcl1_per_cluster: int = field(init=False)  # M

    def __post_init__(self):
        if self.num_cores % self.num_clusters != 0:
            raise ValueError(
                f"{self.num_clusters} clusters must evenly divide {self.num_cores} cores"
            )
        if self.num_dcl1 % self.num_clusters != 0:
            raise ValueError(
                f"{self.num_clusters} clusters must evenly divide {self.num_dcl1} DC-L1s"
            )
        object.__setattr__(self, "cores_per_cluster", self.num_cores // self.num_clusters)
        object.__setattr__(self, "dcl1_per_cluster", self.num_dcl1 // self.num_clusters)

    # -- construction --------------------------------------------------------

    @staticmethod
    def from_design(spec: DesignSpec, num_cores: int, num_l2: int) -> "ClusterGeometry":
        """Geometry for a DC-L1 family spec (including SINGLE_L1)."""
        if spec.kind == DesignKind.SINGLE_L1:
            return ClusterGeometry(num_cores, 1, 1, num_l2)
        if spec.kind != DesignKind.DCL1:
            raise ValueError(f"{spec} does not have DC-L1 cluster geometry")
        return ClusterGeometry(num_cores, spec.num_dcl1, spec.num_clusters, num_l2)

    # -- membership ----------------------------------------------------------

    def cluster_of_core(self, core_id: int) -> int:
        """Cluster that a core belongs to (contiguous grouping)."""
        return core_id // self.cores_per_cluster

    def cluster_of_dcl1(self, dcl1_id: int) -> int:
        return dcl1_id // self.dcl1_per_cluster

    def dcl1_range_of(self, dcl1_id: int) -> int:
        """Address range ``r`` in [0, M) homed by this DC-L1 node."""
        return dcl1_id % self.dcl1_per_cluster

    def core_port_in_cluster(self, core_id: int) -> int:
        """Input-port index of a core on its cluster's NoC#1 crossbar."""
        return core_id % self.cores_per_cluster

    def dcl1_port_in_cluster(self, dcl1_id: int) -> int:
        """Output-port index of a DC-L1 on its cluster's NoC#1 crossbar."""
        return dcl1_id % self.dcl1_per_cluster

    def dcl1s_of_cluster(self, cluster: int) -> range:
        start = cluster * self.dcl1_per_cluster
        return range(start, start + self.dcl1_per_cluster)

    def cores_of_cluster(self, cluster: int) -> range:
        start = cluster * self.cores_per_cluster
        return range(start, start + self.cores_per_cluster)

    # -- home bits (Sections V-A / VI-A) --------------------------------------

    @property
    def home_bits(self) -> int:
        """Number of physical-address bits selecting the home DC-L1 within a
        cluster: ``ceil(log2(Y/Z))``."""
        return max(0, math.ceil(math.log2(self.dcl1_per_cluster)))

    @property
    def max_replicas(self) -> int:
        """Upper bound on copies of one line across the level (= Z)."""
        return self.num_clusters

    # -- NoC#2 partitioning ----------------------------------------------------

    @property
    def noc2_partitioned(self) -> bool:
        """True when NoC#2 splits into M range crossbars of Z x O."""
        return (
            self.dcl1_per_cluster <= self.num_l2
            and self.num_l2 % self.dcl1_per_cluster == 0
            and self.dcl1_per_cluster > 1
        )

    @property
    def l2_per_range(self) -> int:
        """O — L2 slices behind each address range's NoC#2 crossbar."""
        if not self.noc2_partitioned:
            return self.num_l2
        return self.num_l2 // self.dcl1_per_cluster

    # -- crossbar inventories (for the DSENT area/power model) -----------------

    def noc1_shapes(self) -> List[Tuple[int, int, int]]:
        """NoC#1 crossbars as ``(count, n_in, n_out)`` tuples."""
        return [(self.num_clusters, self.cores_per_cluster, self.dcl1_per_cluster)]

    def noc2_shapes(self) -> List[Tuple[int, int, int]]:
        """NoC#2 crossbars as ``(count, n_in, n_out)`` tuples."""
        if self.noc2_partitioned:
            return [(self.dcl1_per_cluster, self.num_clusters, self.l2_per_range)]
        return [(1, self.num_dcl1, self.num_l2)]

    def __str__(self) -> str:
        return (
            f"{self.num_cores} cores / {self.num_dcl1} DC-L1s / "
            f"{self.num_clusters} clusters (N={self.cores_per_cluster}, "
            f"M={self.dcl1_per_cluster})"
        )
