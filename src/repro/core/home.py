"""Home DC-L1 selection.

Under a shared (or clustered shared) DC-L1 organization, every cache line
has exactly one *home* DC-L1 per cluster, selected from the physical
address (Section V-A).  The address range is interleaved across the ``M``
DC-L1s of a cluster at line granularity, aligned with the L2 slice
interleaving so the clustered NoC#2 invariant holds: the home of range
``r`` only ever talks to the L2 slices whose index is congruent to ``r``
modulo ``M`` (Figure 10's per-range crossbars).

Two selection strategies are provided:

* ``"interleave"`` (default) — ``range = line mod M``.  Works for any
  ``M`` including the paper's non-power-of-two Sh40 (``M = 40``), and is
  exactly the bit-selection scheme when ``M`` is a power of two.
* ``"bits"`` — explicit home-bit extraction ``(line >> shift) & (M-1)``;
  requires power-of-two ``M``.  Exposed for the home-bit-position ablation.
"""

from __future__ import annotations

from typing import Callable

from repro.core.clusters import ClusterGeometry

# SimHeat twin-path manifest: the factory's specialized closures must stay
# bit-equivalent to the canonical ``home_of`` with ``range_of_line`` inlined
# ("closure" mode — the analyzer substitutes the factory-local bindings and
# compares each closure against the matching canonical branch).
FAST_PATH_PAIRS = [
    ("HomeMapper.make_fast_home_of", "HomeMapper.home_of", "closure",
     {"inline_helpers": ["range_of_line"]}),
    # SimVec array twin: the same three specialized closures, evaluated
    # elementwise over NumPy int64 arrays (``//``/``%``/``>>``/``&`` on
    # int64 are bit-exact vs Python ints for the non-negative operands
    # used here).  The closures never import NumPy — they are pure
    # operator code over whatever array type is passed in — so structural
    # equivalence is delegated to the fingerprint-identity tests.
    ("HomeMapper.make_fast_home_of_batch", "HomeMapper.home_of",
     "delegated", {}),
]


class HomeMapper:
    """Maps (core, line) to the DC-L1 node that may cache the line."""

    def __init__(self, geometry: ClusterGeometry, strategy: str = "interleave", bit_shift: int = 0):
        if strategy not in ("interleave", "bits"):
            raise ValueError(f"unknown home strategy {strategy!r}")
        m = geometry.dcl1_per_cluster
        if strategy == "bits" and (m & (m - 1)) != 0:
            raise ValueError(f"'bits' home selection requires power-of-two M, got {m}")
        self.geometry = geometry
        self.strategy = strategy
        self.bit_shift = bit_shift
        self._m = m
        self._n = geometry.cores_per_cluster

    def range_of_line(self, line: int) -> int:
        """Address range r in [0, M) of a cache line."""
        if self._m == 1:
            return 0
        if self.strategy == "bits":
            return (line >> self.bit_shift) & (self._m - 1)
        return line % self._m

    def home_of(self, core_id: int, line: int) -> int:
        """The DC-L1 node a request from ``core_id`` for ``line`` targets.

        The cluster comes from the issuing core; the range from the line.
        For private designs (M = 1) this degenerates to "the core group's
        own DC-L1", and for fully shared designs (Z = 1) the cluster term
        vanishes — both exactly as in the paper.
        """
        cluster = core_id // self._n
        return cluster * self._m + self.range_of_line(line)

    def make_fast_home_of(self) -> Callable[[int, int], int]:
        """Build a closure equivalent to :meth:`home_of` with the strategy
        branch and the ``M``/``N`` lookups resolved once (hot-path route
        pre-binding; ``home_of`` runs once per issued request)."""
        m, n = self._m, self._n
        if m == 1:
            def home_of(core_id: int, line: int) -> int:
                return core_id // n
        elif self.strategy == "bits":
            shift, mask = self.bit_shift, m - 1

            def home_of(core_id: int, line: int) -> int:
                return (core_id // n) * m + ((line >> shift) & mask)
        else:
            def home_of(core_id: int, line: int) -> int:
                return (core_id // n) * m + line % m
        return home_of

    def make_fast_home_of_batch(self) -> Callable:
        """Array twin of :meth:`make_fast_home_of` (SimVec).

        Returns ``home_of_batch(core_ids, lines) -> homes`` where the
        arguments are parallel NumPy integer arrays and the result is the
        elementwise :meth:`home_of`.  The closure bodies are the same
        expressions as the scalar fast closures — integer ``//``, ``%``,
        ``>>`` and ``&`` on int64 arrays produce bit-identical values to
        Python ints for non-negative core ids and line indices.
        """
        m, n = self._m, self._n
        if m == 1:
            def home_of_batch(core_ids, lines):
                return core_ids // n
        elif self.strategy == "bits":
            shift, mask = self.bit_shift, m - 1

            def home_of_batch(core_ids, lines):
                return (core_ids // n) * m + ((lines >> shift) & mask)
        else:
            def home_of_batch(core_ids, lines):
                return (core_ids // n) * m + lines % m
        return home_of_batch

    def homes_of_line(self, line: int):
        """All DC-L1 nodes across clusters that may hold ``line``."""
        r = self.range_of_line(line)
        m = self._m
        return [z * m + r for z in range(self.geometry.num_clusters)]
