"""Peak L1 bandwidth analytics (Table I).

The baseline L1 sits inside the core and can return a full 128 B line per
cycle, so the peak aggregate L1 bandwidth is ``line_bytes x num_cores`` per
core cycle.  A DC-L1 node returns data to cores over its NoC#1 reply port
— a 32 B link — so each node sustains ``flit_bytes x noc1_freq_mult``
bytes per core-clock... relative to the 128 B/cycle core-side port this is
where Table I's "Peak L1 BW drop" factors come from:

=========  =====================  =====
Config     Peak L1 BW             Drop
=========  =====================  =====
Baseline   128 B x 80             --
Pr80       32 B x 80              4x
Pr40       32 B x 40              8x
Pr20       32 B x 20              16x
Pr10       32 B x 10              32x
=========  =====================  =====

``+Boost`` doubles the NoC#1 clock, halving the drop (Section VI-C: 8x →
4x for Sh40+C10+Boost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.designs import DesignKind, DesignSpec


@dataclass(frozen=True)
class PeakBandwidth:
    """Peak aggregate L1-level bandwidth of a design point."""

    label: str
    bytes_per_cycle: float
    drop_vs_baseline: float

    def __str__(self) -> str:
        drop = "-" if self.drop_vs_baseline <= 1.0 else f"{self.drop_vs_baseline:g}x"
        return f"{self.label}: {self.bytes_per_cycle:g} B/cycle (drop {drop})"


def peak_l1_bandwidth(
    spec: DesignSpec,
    num_cores: int,
    line_bytes: int = 128,
    flit_bytes: int = 32,
) -> PeakBandwidth:
    """Peak aggregate L1 bandwidth (bytes per core cycle) for ``spec``."""
    baseline_bw = float(line_bytes * num_cores)
    if spec.kind in (DesignKind.BASELINE, DesignKind.CDXBAR):
        bw = baseline_bw * spec.l1_size_mult ** 0  # capacity does not change ports
    elif spec.kind == DesignKind.SINGLE_L1:
        # Section II-A's hypothetical preserves aggregate bandwidth.
        bw = baseline_bw
    else:
        bw = float(flit_bytes) * spec.num_dcl1 * spec.noc1_freq_mult
    drop = baseline_bw / bw if bw < baseline_bw else 1.0
    return PeakBandwidth(spec.label or str(spec), bw, drop)


def table1_rows(
    num_cores: int = 80,
    num_l2: int = 32,
    line_bytes: int = 128,
    flit_bytes: int = 32,
    node_counts: List[int] = (80, 40, 20, 10),
) -> List[dict]:
    """Regenerate Table I: NoC shapes + peak bandwidth for each PrY."""
    from repro.core.clusters import ClusterGeometry

    rows = [
        {
            "config": "Baseline",
            "noc1": "NA",
            "noc2": f"{num_cores}x{num_l2} XBar",
            "peak_bw": f"{line_bytes} Bytes x {num_cores}",
            "drop": "-",
        }
    ]
    for y in node_counts:
        spec = DesignSpec.private(y)
        geo = ClusterGeometry.from_design(spec, num_cores, num_l2)
        (count1, n_in1, n_out1), = geo.noc1_shapes()
        (count2, n_in2, n_out2), = geo.noc2_shapes()
        bw = peak_l1_bandwidth(spec, num_cores, line_bytes, flit_bytes)
        noc1 = (
            f"{count1}x ({n_in1}x{n_out1})"
            if n_in1 > 1
            else f"{count1} direct {flit_bytes}B links"
        )
        rows.append(
            {
                "config": spec.label,
                "noc1": noc1,
                "noc2": f"{count2}x ({n_in2}x{n_out2}) XBar",
                "peak_bw": f"{flit_bytes} Bytes x {y}",
                "drop": f"{bw.drop_vs_baseline:g}x",
            }
        )
    return rows
