"""Adapters for externally supplied traces.

The simulator does not care where access streams come from; these helpers
wrap raw per-CTA address/kind arrays — e.g. collected from an instrumented
real application — into a :class:`~repro.workloads.generator.Workload`
with an explicit :class:`~repro.workloads.profile.AppProfile` describing
the *timing* parameters the trace itself cannot carry (wavefront slots,
compute gap, MLP, coalescing width).

Addresses may be given either as byte addresses (``unit="bytes"``) or
directly as cache-line indices (``unit="lines"``).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpu.request import AccessKind
from repro.workloads.generator import CTAStream, Workload
from repro.workloads.profile import AppProfile

_KIND_NAMES = {
    "load": AccessKind.LOAD,
    "store": AccessKind.STORE,
    "atomic": AccessKind.ATOMIC,
    "bypass": AccessKind.BYPASS,
}


def _coerce_kinds(kinds, length: int) -> np.ndarray:
    if kinds is None:
        return np.zeros(length, dtype=np.uint8)
    out = np.empty(length, dtype=np.uint8)
    for i, k in enumerate(kinds):
        if isinstance(k, str):
            try:
                out[i] = int(_KIND_NAMES[k.lower()])
            except KeyError:
                raise ValueError(f"unknown access kind {k!r}") from None
        else:
            value = int(k)
            if not 0 <= value <= 3:
                raise ValueError(f"access kind {value} out of range")
            out[i] = value
    return out


def timing_profile(
    name: str,
    wavefront_slots: int = 8,
    compute_gap: float = 4.0,
    mlp: int = 3,
    request_bytes: int = 32,
) -> AppProfile:
    """A minimal profile carrying only the timing parameters an external
    trace needs (the address-generation fields are unused)."""
    return AppProfile(
        name=name,
        num_ctas=1,
        accesses_per_cta=1,
        wavefront_slots=wavefront_slots,
        compute_gap=compute_gap,
        mlp=mlp,
        request_bytes=request_bytes,
    )


def workload_from_streams(
    streams: Iterable[Union[Sequence[int], Tuple[Sequence[int], Sequence]]],
    profile: Optional[AppProfile] = None,
    name: str = "external",
    unit: str = "lines",
    line_bytes: int = 128,
    **timing,
) -> Workload:
    """Build a workload from per-CTA access sequences.

    Each element of ``streams`` is either a sequence of addresses, or an
    ``(addresses, kinds)`` pair where kinds are ints or names
    (``"load"``/``"store"``/``"atomic"``/``"bypass"``).
    """
    if unit not in ("lines", "bytes"):
        raise ValueError(f"unknown address unit {unit!r}")
    if profile is None:
        profile = timing_profile(name, **timing)
    shift = line_bytes.bit_length() - 1
    cta_streams = []
    total = 0
    for cta_id, entry in enumerate(streams):
        if isinstance(entry, tuple) and len(entry) == 2:
            addrs, kinds = entry
        else:
            addrs, kinds = entry, None
        lines = np.asarray(list(addrs), dtype=np.int64)
        if len(lines) == 0:
            raise ValueError(f"CTA {cta_id} has an empty access stream")
        if (lines < 0).any():
            raise ValueError(f"CTA {cta_id} has negative addresses")
        if unit == "bytes":
            lines >>= shift
        cta_streams.append(CTAStream(cta_id, lines, _coerce_kinds(kinds, len(lines))))
        total += len(lines)
    if not cta_streams:
        raise ValueError("no streams given")
    # Reflect real volume in the profile so scale/statistics make sense.
    profile = dataclasses.replace(
        profile,
        num_ctas=len(cta_streams),
        accesses_per_cta=max(len(s) for s in cta_streams),
    )
    return Workload(profile, cta_streams)


def workload_from_arrays(
    lines: np.ndarray,
    cta_of: np.ndarray,
    kinds: Optional[np.ndarray] = None,
    profile: Optional[AppProfile] = None,
    name: str = "external",
    **timing,
) -> Workload:
    """Build a workload from flat arrays: ``lines[i]`` accessed by CTA
    ``cta_of[i]``; order within a CTA is preserved."""
    lines = np.asarray(lines, dtype=np.int64)
    cta_of = np.asarray(cta_of, dtype=np.int64)
    if lines.shape != cta_of.shape:
        raise ValueError("lines and cta_of must have identical shapes")
    if kinds is not None:
        kinds = np.asarray(kinds, dtype=np.uint8)
        if kinds.shape != lines.shape:
            raise ValueError("kinds must match lines")
    streams = []
    for cta_id in np.unique(cta_of):
        mask = cta_of == cta_id
        streams.append(
            (lines[mask], kinds[mask] if kinds is not None else None)
        )
    return workload_from_streams(streams, profile=profile, name=name, **timing)
