"""Deterministic synthetic trace generation.

Each CTA gets one access stream built from *block sweeps*: pick a block of
``block_lines`` consecutive lines in some region (shared / neighbourhood /
private / camping) and sweep it ``block_repeats`` times.  Consecutive
sweeps give controllable temporal locality (per-stream hit rate roughly
``(repeats-1)/repeats`` plus cross-CTA reuse); the region mix controls
inter-core sharing and therefore replication; camping blocks restrict the
home-selection residues of their lines.

Generation is fully deterministic: the RNG is seeded from the app name, so
every design point sees bit-identical traces — differences between designs
are never generator noise.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gpu.request import AccessKind
from repro.workloads import regions
from repro.workloads.profile import AppProfile


class CTAStream:
    """One CTA's memory-access stream (line indices + access kinds)."""

    __slots__ = ("cta_id", "lines", "kinds")

    def __init__(self, cta_id: int, lines: np.ndarray, kinds: np.ndarray):
        self.cta_id = cta_id
        self.lines = lines
        self.kinds = kinds

    def __len__(self) -> int:
        return len(self.lines)


class Workload:
    """A generated application: all CTA streams plus the profile."""

    def __init__(self, profile: AppProfile, streams: List[CTAStream]):
        self.profile = profile
        self.streams = streams

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def num_ctas(self) -> int:
        return len(self.streams)

    @property
    def total_accesses(self) -> int:
        return sum(len(s) for s in self.streams)

    def core_weights(self, num_cores: int) -> Sequence[float]:
        """CTA-assignment weights (None when balanced).

        Imbalance ``b`` produces a linear skew from ``1-b`` to ``1+b``
        across cores — the R-SC work-distribution behaviour.
        """
        b = self.profile.imbalance
        if b <= 0:
            return None
        if num_cores == 1:
            return [1.0]
        return [1.0 - b + 2.0 * b * c / (num_cores - 1) for c in range(num_cores)]

    def distinct_lines(self) -> int:
        """Footprint in distinct lines (workload characterization)."""
        if not self.streams:
            return 0
        return len(np.unique(np.concatenate([s.lines for s in self.streams])))


def _camp_block(prof: AppProfile, rng, cta_id: int, shared: bool) -> List[int]:
    """One camping block sweep (home residues restricted to camp_width)."""
    width = prof.camp_width
    if shared:
        k_span = max(1, prof.shared_lines // max(width, 1))
        k_base = 0
    else:
        k_span = max(1, prof.private_lines // max(width, 1))
        k_base = cta_id * k_span
    k0 = int(rng.integers(0, k_span))
    block = []
    for j in range(prof.block_lines):
        k = k_base + (k0 + j // width) % k_span
        r = j % width
        block.append(regions.camp_line(k, r, shared))
    return block


def _plain_block(prof: AppProfile, rng, base: int, span: int) -> List[int]:
    """One contiguous block sweep within ``[base, base + span)``."""
    size = min(prof.block_lines, span)
    start = base + int(rng.integers(0, max(1, span - size + 1)))
    return list(range(start, start + size))


def _shared_block(prof: AppProfile, rng, cta_id: int) -> List[int]:
    """A block in the shared region.

    With probability ``shared_locality`` the block is drawn from the CTA's
    locality window — a quarter-region slice centred at the CTA's position,
    so *adjacent* CTAs share almost the same window — and otherwise from
    the whole region uniformly.  The windowed share is what a
    locality-aware CTA scheduler can turn into intra-core reuse.
    """
    span = prof.shared_lines
    if prof.shared_locality > 0 and rng.random() < prof.shared_locality:
        width = min(span, max(prof.block_lines, span // 4))
        denom = max(1, prof.num_ctas - 1)
        center = int(round(cta_id / denom * (span - width)))
        return _plain_block(prof, rng, regions.SHARED_BASE + center, width)
    return _plain_block(prof, rng, regions.SHARED_BASE, span)


def _gen_stream(prof: AppProfile, cta_id: int, rng) -> CTAStream:
    n = prof.accesses_per_cta
    out: List[int] = []
    while len(out) < n:
        u = rng.random()
        if u < prof.shared_fraction:
            if prof.camp_fraction > 0 and prof.camp_shared and rng.random() < prof.camp_fraction:
                block = _camp_block(prof, rng, cta_id, shared=True)
            else:
                block = _shared_block(prof, rng, cta_id)
        elif u < prof.shared_fraction + prof.neighbor_fraction:
            base = regions.neighbor_window(cta_id, prof.neighbor_lines)
            block = _plain_block(prof, rng, base, prof.neighbor_lines)
        else:
            if (
                prof.camp_fraction > 0
                and not prof.camp_shared
                and rng.random() < prof.camp_fraction
            ):
                block = _camp_block(prof, rng, cta_id, shared=False)
            else:
                base = regions.private_window(cta_id, prof.private_lines)
                block = _plain_block(prof, rng, base, prof.private_lines)
        for _ in range(prof.block_repeats):
            out.extend(block)
            if len(out) >= n:
                break
    lines = np.asarray(out[:n], dtype=np.int64)

    kinds = np.full(n, int(AccessKind.LOAD), dtype=np.uint8)
    mix = rng.random(n)
    edge = prof.store_fraction
    kinds[mix < edge] = int(AccessKind.STORE)
    kinds[(mix >= edge) & (mix < edge + prof.atomic_fraction)] = int(AccessKind.ATOMIC)
    edge += prof.atomic_fraction
    kinds[(mix >= edge) & (mix < edge + prof.bypass_fraction)] = int(AccessKind.BYPASS)
    return CTAStream(cta_id, lines, kinds)


def generate_workload(profile: AppProfile, scale: float = 1.0) -> Workload:
    """Generate the full workload for ``profile`` at the given scale."""
    prof = profile.scaled(scale)
    rng = np.random.default_rng(prof.seed)
    streams = [_gen_stream(prof, cta, rng) for cta in range(prof.num_ctas)]
    return Workload(prof, streams)
