"""Synthetic GPGPU workload suite calibrated to the paper's Figure 1."""

from repro.workloads.generator import CTAStream, Workload, generate_workload
from repro.workloads.profile import AppProfile
from repro.workloads.suite import (
    APP_NAMES,
    REPLICATION_SENSITIVE,
    POOR_PERFORMING,
    all_apps,
    get_app,
    replication_sensitive_apps,
    replication_insensitive_apps,
)

__all__ = [
    "AppProfile",
    "CTAStream",
    "Workload",
    "generate_workload",
    "APP_NAMES",
    "REPLICATION_SENSITIVE",
    "POOR_PERFORMING",
    "all_apps",
    "get_app",
    "replication_sensitive_apps",
    "replication_insensitive_apps",
]
