"""The 28-application benchmark suite.

Synthetic stand-ins for the paper's 28 GPGPU applications from five suites
— CUDA-SDK (C), Rodinia (R), SHOC (S), PolyBench (P) and Tango (T).  Each
profile is parameterized so its *measured* characteristics land in the
band the paper's Figure 1 reports for the real application:

* the Tango DNNs (T-*) read large shared weight sets with little in-stream
  reuse → extreme replication ratios (T-AlexNet ≈ 95%) and huge wins from
  shared DC-L1s;
* S-Reduction / P-SYRK share footprints close to the *total* L1 capacity,
  so only the fully shared Sh40 captures them (their clustered-design
  behaviour in Figures 11/14);
* P-2MM camps: its hot shared lines collide on few home DC-L1s (the
  paper's partition-camping victim, called F-2MIM in Section V-B — the
  benchmark list has no "F" suite, so we use the Section VIII name);
* C-RAY / P-3MM / P-GEMM camp on *disjoint* per-CTA data: camping without
  replication (poor performers under Sh40, relieved by clustering);
* P-2DCONV / P-3DCONV request full 128 B lines at high intensity: peak-L1-
  bandwidth-sensitive (the +Boost motivation);
* C-NN runs few wavefronts with a tiny hot set: high hit rate, low latency
  tolerance (hurt by the core↔DC-L1 hop);
* R-SC's CTA assignment is skewed (work-distribution imbalance that the
  shared organization smooths out);
* the Tango/C-BFS/P-ATAX profiles carry ``shared_locality``: half their
  shared accesses stay in a per-CTA window that overlaps between adjacent
  CTAs — the inter-CTA locality a distributed CTA scheduler converts into
  intra-core reuse (the Section VIII-A scheduler study).

The classification lists below mirror the paper; the classification is
*verified* (not assumed) by ``repro.experiments.fig01_motivation``, which
measures replication ratio, miss rate and 16x-capacity speedup and applies
the paper's rule.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profile import AppProfile


def _ctas(slots: int, per_core: float = 1.5, cores: int = 80) -> int:
    """CTA count giving full occupancy plus ``per_core`` refills."""
    return int(slots * cores * per_core)


_PROFILES: List[AppProfile] = [
    # ------------------------- replication-sensitive -------------------------
    AppProfile(
        name="T-AlexNet", suite="Tango",
        num_ctas=_ctas(12), accesses_per_cta=96, wavefront_slots=12, compute_gap=2.0,
        shared_lines=400, shared_fraction=0.97, shared_locality=0.5, private_lines=256,
        block_lines=8, block_repeats=1,
    ),
    AppProfile(
        name="T-ResNet", suite="Tango",
        num_ctas=_ctas(12), accesses_per_cta=96, wavefront_slots=12, compute_gap=2.0,
        shared_lines=520, shared_fraction=0.96, shared_locality=0.5, private_lines=256,
        block_lines=8, block_repeats=1,
    ),
    AppProfile(
        name="T-SqueezeNet", suite="Tango",
        num_ctas=_ctas(10), accesses_per_cta=96, wavefront_slots=10, compute_gap=2.0,
        shared_lines=360, shared_fraction=0.95, shared_locality=0.5, private_lines=256,
        block_lines=6, block_repeats=1,
    ),
    AppProfile(
        name="T-CifarNet", suite="Tango",
        num_ctas=_ctas(10), accesses_per_cta=88, wavefront_slots=10, compute_gap=3.0,
        shared_lines=300, shared_fraction=0.90, shared_locality=0.5, private_lines=256,
        block_lines=8, block_repeats=1,
    ),
    AppProfile(
        name="T-GRU", suite="Tango",
        num_ctas=_ctas(8), accesses_per_cta=96, wavefront_slots=8, compute_gap=3.0,
        shared_lines=440, shared_fraction=0.88, shared_locality=0.5, private_lines=256,
        block_lines=8, block_repeats=1,
    ),
    AppProfile(
        name="T-LSTM", suite="Tango",
        num_ctas=_ctas(8), accesses_per_cta=96, wavefront_slots=8, compute_gap=3.0,
        shared_lines=480, shared_fraction=0.86, shared_locality=0.5, private_lines=256,
        block_lines=8, block_repeats=1,
    ),
    AppProfile(
        name="C-BFS", suite="CUDA-SDK",
        num_ctas=_ctas(8), accesses_per_cta=128, wavefront_slots=8, compute_gap=4.0,
        shared_lines=350, shared_fraction=0.70, shared_locality=0.5, private_lines=512,
        block_lines=4, block_repeats=1, store_fraction=0.10,
    ),
    AppProfile(
        name="S-Reduction", suite="SHOC",
        num_ctas=_ctas(12), accesses_per_cta=112, wavefront_slots=12, compute_gap=3.0,
        shared_lines=1600, shared_fraction=0.85, private_lines=256,
        block_lines=8, block_repeats=1, store_fraction=0.05,
    ),
    AppProfile(
        name="P-SYRK", suite="PolyBench",
        num_ctas=_ctas(10), accesses_per_cta=128, wavefront_slots=10, compute_gap=3.0,
        shared_lines=1300, shared_fraction=0.85, private_lines=256,
        block_lines=8, block_repeats=1,
    ),
    AppProfile(
        name="P-2MM", suite="PolyBench",
        num_ctas=_ctas(8), accesses_per_cta=96, wavefront_slots=8, compute_gap=3.0,
        shared_lines=400, shared_fraction=0.85, private_lines=256,
        block_lines=8, block_repeats=1,
        camp_fraction=0.70, camp_width=8, camp_shared=True,
    ),
    AppProfile(
        name="P-3DCONV", suite="PolyBench",
        num_ctas=_ctas(12), accesses_per_cta=80, wavefront_slots=12, compute_gap=1.0, mlp=4,
        request_bytes=128,
        shared_lines=420, shared_fraction=0.65, private_lines=128,
        block_lines=8, block_repeats=1,
    ),
    AppProfile(
        name="P-ATAX", suite="PolyBench",
        num_ctas=_ctas(8), accesses_per_cta=96, wavefront_slots=8, compute_gap=4.0,
        shared_lines=420, shared_fraction=0.78, shared_locality=0.5, private_lines=384,
        block_lines=6, block_repeats=1,
    ),
    # ------------------------ replication-insensitive ------------------------
    AppProfile(
        name="C-BLK", suite="CUDA-SDK",
        num_ctas=_ctas(8), accesses_per_cta=48, wavefront_slots=8, compute_gap=4.0,
        shared_fraction=0.0, private_lines=120,
        block_lines=12, block_repeats=8,
    ),
    AppProfile(
        name="C-RAY", suite="CUDA-SDK",
        num_ctas=_ctas(6), accesses_per_cta=64, wavefront_slots=6, compute_gap=3.0,
        shared_fraction=0.0, private_lines=240,
        block_lines=16, block_repeats=10,
        camp_fraction=0.70, camp_width=8, camp_shared=False,
    ),
    AppProfile(
        name="C-NN", suite="CUDA-SDK",
        num_ctas=_ctas(2), accesses_per_cta=160, wavefront_slots=2, compute_gap=2.0, mlp=1,
        shared_lines=400, shared_fraction=0.15, private_lines=56,
        block_lines=8, block_repeats=10,
    ),
    AppProfile(
        name="C-SCAN", suite="CUDA-SDK",
        num_ctas=_ctas(16), accesses_per_cta=32, wavefront_slots=16, compute_gap=2.0,
        shared_fraction=0.0, private_lines=2048,
        block_lines=32, block_repeats=1, store_fraction=0.15,
    ),
    AppProfile(
        name="C-SP", suite="CUDA-SDK",
        num_ctas=_ctas(12), accesses_per_cta=40, wavefront_slots=12, compute_gap=3.0,
        shared_lines=600, shared_fraction=0.10, private_lines=1024,
        block_lines=16, block_repeats=1, store_fraction=0.30,
    ),
    AppProfile(
        name="R-LUD", suite="Rodinia",
        num_ctas=_ctas(8), accesses_per_cta=48, wavefront_slots=8, compute_gap=4.0,
        shared_lines=700, shared_fraction=0.12, private_lines=100,
        block_lines=10, block_repeats=6,
    ),
    AppProfile(
        name="R-SC", suite="Rodinia",
        num_ctas=_ctas(8), accesses_per_cta=48, wavefront_slots=8, compute_gap=3.0,
        shared_lines=1200, shared_fraction=0.25, private_lines=256,
        block_lines=8, block_repeats=3, imbalance=0.6,
    ),
    AppProfile(
        name="R-HS", suite="Rodinia",
        num_ctas=_ctas(8), accesses_per_cta=48, wavefront_slots=8, compute_gap=4.0,
        shared_lines=300, shared_fraction=0.05,
        neighbor_lines=96, neighbor_fraction=0.45, private_lines=128,
        block_lines=8, block_repeats=4,
    ),
    AppProfile(
        name="R-NW", suite="Rodinia",
        num_ctas=_ctas(6), accesses_per_cta=64, wavefront_slots=6, compute_gap=5.0,
        shared_fraction=0.0,
        neighbor_lines=64, neighbor_fraction=0.30, private_lines=512,
        block_lines=8, block_repeats=2,
    ),
    AppProfile(
        name="R-PF", suite="Rodinia",
        num_ctas=_ctas(8), accesses_per_cta=48, wavefront_slots=8, compute_gap=4.0,
        shared_lines=500, shared_fraction=0.10,
        neighbor_lines=80, neighbor_fraction=0.35, private_lines=256,
        block_lines=6, block_repeats=3,
    ),
    AppProfile(
        name="S-FFT", suite="SHOC",
        num_ctas=_ctas(12), accesses_per_cta=40, wavefront_slots=12, compute_gap=2.0,
        shared_lines=800, shared_fraction=0.10, private_lines=1536,
        block_lines=16, block_repeats=1, store_fraction=0.20,
    ),
    AppProfile(
        name="S-MD", suite="SHOC",
        num_ctas=_ctas(8), accesses_per_cta=48, wavefront_slots=8, compute_gap=3.0,
        shared_lines=1400, shared_fraction=0.30, private_lines=200,
        block_lines=12, block_repeats=4,
    ),
    AppProfile(
        name="S-SPMV", suite="SHOC",
        num_ctas=_ctas(12), accesses_per_cta=40, wavefront_slots=12, compute_gap=2.0,
        shared_lines=16000, shared_fraction=0.45, private_lines=512,
        block_lines=4, block_repeats=1,
    ),
    AppProfile(
        name="P-2DCONV", suite="PolyBench",
        num_ctas=_ctas(8), accesses_per_cta=64, wavefront_slots=8, compute_gap=1.0, mlp=4,
        request_bytes=64,
        shared_fraction=0.0, private_lines=96,
        block_lines=12, block_repeats=8,
    ),
    AppProfile(
        name="P-3MM", suite="PolyBench",
        num_ctas=_ctas(8), accesses_per_cta=48, wavefront_slots=8, compute_gap=2.0,
        request_bytes=64,
        shared_fraction=0.0, private_lines=288,
        block_lines=12, block_repeats=8,
        camp_fraction=0.60, camp_width=8, camp_shared=False,
    ),
    AppProfile(
        name="P-GEMM", suite="PolyBench",
        num_ctas=_ctas(10), accesses_per_cta=44, wavefront_slots=10, compute_gap=2.0,
        request_bytes=64,
        shared_fraction=0.0, private_lines=256,
        block_lines=8, block_repeats=8,
        camp_fraction=0.60, camp_width=8, camp_shared=False,
    ),
]

_BY_NAME: Dict[str, AppProfile] = {p.name: p for p in _PROFILES}

APP_NAMES: List[str] = [p.name for p in _PROFILES]

#: The paper's 12 replication-sensitive applications (Figure 1's blue boxes).
REPLICATION_SENSITIVE: List[str] = [
    "T-AlexNet", "T-ResNet", "T-SqueezeNet", "T-CifarNet", "T-GRU", "T-LSTM",
    "C-BFS", "S-Reduction", "P-SYRK", "P-2MM", "P-3DCONV", "P-ATAX",
]

#: The five replication-insensitive applications that suffer most under Sh40
#: (Figure 9 / Figure 13a).
POOR_PERFORMING: List[str] = ["C-NN", "C-RAY", "P-3MM", "P-GEMM", "P-2DCONV"]


def get_app(name: str) -> AppProfile:
    """Look up an application profile by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; see APP_NAMES") from None


def all_apps() -> List[AppProfile]:
    """All 28 application profiles, in suite order."""
    return list(_PROFILES)


def replication_sensitive_apps() -> List[AppProfile]:
    return [_BY_NAME[n] for n in REPLICATION_SENSITIVE]


def replication_insensitive_apps() -> List[AppProfile]:
    return [p for p in _PROFILES if p.name not in REPLICATION_SENSITIVE]
