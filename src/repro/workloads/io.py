"""Workload serialization.

Generated workloads are deterministic, but long calibrated traces are
worth persisting: regeneration costs RNG time, and external tools (or a
real-GPU trace collector) may want to inspect or produce traces in a
stable format.  Two formats are supported:

* **npz** — compact binary: one concatenated line/kind array pair plus
  per-CTA offsets and the generating profile's parameters (so a loaded
  workload knows its timing parameters: slots, gap, mlp, request bytes).
* **csv** — one row per access (``cta,index,line,kind``), for inspection
  and interoperability; profile parameters travel in a header comment.

Round-tripping preserves traces bit-exactly; profiles are restored from
their stored fields.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Union

import numpy as np

from repro.workloads.generator import CTAStream, Workload
from repro.workloads.profile import AppProfile

PathLike = Union[str, pathlib.Path]


def _profile_to_json(profile: AppProfile) -> str:
    return json.dumps(dataclasses.asdict(profile), sort_keys=True)


def _profile_from_json(payload: str) -> AppProfile:
    return AppProfile(**json.loads(payload))


def save_npz(workload: Workload, path: PathLike) -> None:
    """Write a workload to ``path`` in npz format."""
    streams = workload.streams
    lines = (
        np.concatenate([s.lines for s in streams])
        if streams
        else np.empty(0, dtype=np.int64)
    )
    kinds = (
        np.concatenate([s.kinds for s in streams])
        if streams
        else np.empty(0, dtype=np.uint8)
    )
    lengths = np.asarray([len(s) for s in streams], dtype=np.int64)
    cta_ids = np.asarray([s.cta_id for s in streams], dtype=np.int64)
    np.savez_compressed(
        path,
        lines=lines,
        kinds=kinds,
        lengths=lengths,
        cta_ids=cta_ids,
        profile=np.frombuffer(_profile_to_json(workload.profile).encode(), dtype=np.uint8),
    )


def load_npz(path: PathLike) -> Workload:
    """Read a workload previously written by :func:`save_npz`."""
    with np.load(path) as data:
        profile = _profile_from_json(bytes(data["profile"]).decode())
        lines = data["lines"]
        kinds = data["kinds"]
        lengths = data["lengths"]
        cta_ids = data["cta_ids"]
    streams = []
    offset = 0
    for cta_id, length in zip(cta_ids, lengths):
        streams.append(
            CTAStream(
                int(cta_id),
                lines[offset : offset + length].copy(),
                kinds[offset : offset + length].copy(),
            )
        )
        offset += int(length)
    if offset != len(lines):
        raise ValueError(f"corrupt workload file {path}: trailing accesses")
    return Workload(profile, streams)


def save_csv(workload: Workload, path: PathLike) -> None:
    """Write a workload to ``path`` as CSV (header comment carries the
    profile as JSON)."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        fh.write(f"# profile: {_profile_to_json(workload.profile)}\n")
        fh.write("cta,index,line,kind\n")
        for stream in workload.streams:
            for i, (line, kind) in enumerate(zip(stream.lines, stream.kinds)):
                fh.write(f"{stream.cta_id},{i},{int(line)},{int(kind)}\n")


def load_csv(path: PathLike) -> Workload:
    """Read a workload previously written by :func:`save_csv`."""
    path = pathlib.Path(path)
    profile = None
    per_cta: dict = {}
    with path.open() as fh:
        for raw in fh:
            row = raw.strip()
            if not row:
                continue
            if row.startswith("#"):
                marker = "# profile:"
                if row.startswith(marker):
                    profile = _profile_from_json(row[len(marker):].strip())
                continue
            if row.startswith("cta,"):
                continue
            cta, _idx, line, kind = row.split(",")
            per_cta.setdefault(int(cta), []).append((int(line), int(kind)))
    if profile is None:
        raise ValueError(f"{path} has no profile header")
    streams = []
    for cta_id in sorted(per_cta):
        pairs = per_cta[cta_id]
        streams.append(
            CTAStream(
                cta_id,
                np.asarray([p[0] for p in pairs], dtype=np.int64),
                np.asarray([p[1] for p in pairs], dtype=np.uint8),
            )
        )
    return Workload(profile, streams)
