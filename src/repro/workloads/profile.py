"""Application profiles.

An :class:`AppProfile` is the synthetic stand-in for one GPGPU benchmark:
a small set of parameters from which deterministic per-CTA memory-access
streams are generated.  The parameters map one-to-one onto the behaviours
the paper's evaluation depends on:

====================  =====================================================
``shared_*``          Globally shared data (model weights, frontiers, ...):
                      the source of inter-core replication (Figure 1).
``neighbor_*``        Data shared between *adjacent* CTAs (stencils): the
                      locality a distributed CTA scheduler can capture.
``private_*``         Per-CTA data: never replicated.
``block_lines`` /     Reuse structure: streams access consecutive blocks,
``block_repeats``     each swept ``block_repeats`` times — the knob for L1
                      miss rate and capacity (16x) sensitivity.
``camp_*``            Partition-camping address patterns (Section V-B):
                      accesses whose line indices concentrate on a few
                      residues modulo the camp modulus, so their home
                      DC-L1s collide.  ``camp_shared`` decides whether all
                      CTAs camp on the *same* lines (P-2MM: replication +
                      camping) or on disjoint per-CTA lines (C-RAY, P-3MM,
                      P-GEMM: camping without replication).
``request_bytes``     Warp coalescing: bytes returned per access — full
                      128 B lines stress the NoC#1 reply links (the
                      bandwidth sensitivity of P-2DCONV / P-3DCONV).
``wavefront_slots``   Latency tolerance (C-NN has few wavefronts in
``compute_gap``       flight; Tango networks have many).
``imbalance``         CTA-assignment skew (the R-SC behaviour).
====================  =====================================================
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import ClassVar, FrozenSet


@dataclass(frozen=True)
class AppProfile:
    """Parameters describing one synthetic GPGPU application."""

    #: Fields excluded from :func:`repro.sim.store.sim_cache_key`: pure
    #: metadata the trace generator never reads (checked statically by
    #: SimPure SP402 and dynamically by ``repro purity --confirm``).
    FINGERPRINT_NEUTRAL_FIELDS: ClassVar[FrozenSet[str]] = frozenset({"suite"})

    name: str
    # Display grouping only (e.g. "polybench"); never read by the trace
    # generator, so it is fingerprint-neutral by declaration above.
    suite: str = ""

    # Volume / shape
    num_ctas: int = 320
    accesses_per_cta: int = 96
    wavefront_slots: int = 8
    compute_gap: float = 4.0
    # Memory-level parallelism: blocking loads a wavefront keeps in flight.
    # slots x mlp is the core's outstanding-request window; values >= ~3
    # make a core issue-/bandwidth-bound (GPU-like) rather than
    # latency-bound, which is the paper's latency-tolerance property.
    mlp: int = 3
    request_bytes: int = 32

    # Shared (inter-core) region
    shared_lines: int = 0
    shared_fraction: float = 0.0
    # Inter-CTA locality within the shared region: 0 = every CTA samples
    # the whole region uniformly; values toward 1 confine each CTA to a
    # window centred at its position, so *nearby* CTAs share most — the
    # structure a locality-aware (distributed) CTA scheduler exploits
    # (Section VIII-A's scheduler study).
    shared_locality: float = 0.0

    # Neighbourhood (adjacent-CTA) region
    neighbor_lines: int = 64
    neighbor_fraction: float = 0.0

    # Per-CTA private region
    private_lines: int = 256

    # Reuse structure
    block_lines: int = 16
    block_repeats: int = 2

    # Partition camping
    camp_fraction: float = 0.0
    camp_width: int = 4
    camp_shared: bool = True

    # Access mix
    store_fraction: float = 0.0
    atomic_fraction: float = 0.0
    bypass_fraction: float = 0.0

    # CTA-assignment skew in [0, 1): 0 = balanced
    imbalance: float = 0.0

    # Trace variant: changes the RNG stream without changing any
    # distributional parameter (seed-robustness studies).
    trace_variant: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValueError("profile needs a name")
        if self.num_ctas <= 0 or self.accesses_per_cta <= 0:
            raise ValueError(f"{self.name}: CTA volume must be positive")
        if not 0 <= self.shared_fraction <= 1:
            raise ValueError(f"{self.name}: shared_fraction out of range")
        if not 0 <= self.neighbor_fraction <= 1:
            raise ValueError(f"{self.name}: neighbor_fraction out of range")
        if self.shared_fraction + self.neighbor_fraction > 1:
            raise ValueError(f"{self.name}: region fractions exceed 1")
        mix = self.store_fraction + self.atomic_fraction + self.bypass_fraction
        if mix > 1:
            raise ValueError(f"{self.name}: access mix fractions exceed 1")
        if self.shared_fraction > 0 and self.shared_lines <= 0:
            raise ValueError(f"{self.name}: shared accesses need shared_lines > 0")
        if not 0 <= self.shared_locality < 1:
            raise ValueError(f"{self.name}: shared_locality must be in [0, 1)")
        if self.block_lines <= 0 or self.block_repeats <= 0:
            raise ValueError(f"{self.name}: block structure must be positive")
        if self.camp_fraction > 0 and self.camp_width <= 0:
            raise ValueError(f"{self.name}: camping needs a positive width")
        if not 0 <= self.imbalance < 1:
            raise ValueError(f"{self.name}: imbalance must be in [0, 1)")
        if self.request_bytes <= 0:
            raise ValueError(f"{self.name}: request_bytes must be positive")
        if self.mlp < 1:
            raise ValueError(f"{self.name}: mlp must be >= 1")

    @property
    def seed(self) -> int:
        """Deterministic per-app RNG seed derived from the name and the
        trace variant."""
        base = zlib.crc32(self.name.encode())
        return (base + 7919 * self.trace_variant) & 0x7FFFFFFF

    def variant(self, k: int) -> "AppProfile":
        """Same workload distribution, different RNG stream."""
        if k < 0:
            raise ValueError("variant index must be non-negative")
        return replace(self, trace_variant=k)

    @property
    def total_accesses(self) -> int:
        return self.num_ctas * self.accesses_per_cta

    def scaled(self, scale: float) -> "AppProfile":
        """Scale the CTA count (simulation length) by ``scale``."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale == 1.0:
            return self
        return replace(self, num_ctas=max(1, int(round(self.num_ctas * scale))))

    def with_cores_scaled(self, factor: float) -> "AppProfile":
        """Grow the workload with the machine (Section VIII-A's 120-core
        study keeps per-core work constant)."""
        return replace(self, num_ctas=max(1, int(round(self.num_ctas * factor))))
