"""Address-region layout for synthetic workloads.

All workload addresses are *cache-line indices* (the simulator's native
unit; byte addresses are ``line << 7`` for 128 B lines).  Four disjoint
region classes partition the line-index space:

==============  =============================================================
shared          ``[0, shared_lines)`` — one region, touched by every CTA.
camp            ``CAMP_BASE + k*CAMP_MODULUS + r`` — lines whose home-DC-L1
                selection collides: only residues ``r < camp_width`` occur,
                so under a shared organization with M homes the traffic
                concentrates on ``min(camp_width, M)`` nodes per cluster.
                The modulus (40) is aligned to the paper's DC-L1 node count
                the way real power-of-two strides align with bank counts;
                the bases ``k`` are multiplied by the modulus, which spreads
                the L2-slice selection (``line mod 32``) so the *baseline*
                does not camp at L2.
neighbor        a sliding window per CTA with 50% overlap between CTA k and
                CTA k+1 — sharing that a locality-aware (distributed) CTA
                scheduler converts into intra-core reuse.
private         ``PRIVATE_BASE + cta * private_lines`` — disjoint per CTA.
==============  =============================================================
"""

from __future__ import annotations

SHARED_BASE = 0
CAMP_MODULUS = 40
# Camp bases are exact multiples of the modulus so a camp line's home
# residue is exactly its ``r`` argument.
CAMP_BASE = CAMP_MODULUS * (1 << 16)
CAMP_PRIVATE_BASE = CAMP_MODULUS * (1 << 18)
NEIGHBOR_BASE = 1 << 26
PRIVATE_BASE = 1 << 28


def shared_line(offset: int) -> int:
    """Line index of offset ``offset`` within the shared region."""
    return SHARED_BASE + offset


def camp_line(k: int, residue: int, shared: bool) -> int:
    """A camping line: base walk index ``k``, home residue ``residue``.

    ``shared`` campers (P-2MM) draw from one global camp region; private
    campers (C-RAY / P-3MM / P-GEMM) get disjoint per-CTA regions via a
    caller-disambiguated ``k``.
    """
    base = CAMP_BASE if shared else CAMP_PRIVATE_BASE
    return base + k * CAMP_MODULUS + residue


def neighbor_window(cta: int, neighbor_lines: int) -> int:
    """First line of CTA ``cta``'s neighbourhood window (50% overlap with
    the windows of CTAs ``cta - 1`` and ``cta + 1``)."""
    half = max(1, neighbor_lines // 2)
    return NEIGHBOR_BASE + cta * half


def private_window(cta: int, private_lines: int) -> int:
    """First line of CTA ``cta``'s private region."""
    return PRIVATE_BASE + cta * max(1, private_lines)
