"""Workload composition.

GPUs time-share and co-schedule kernels; the DC-L1 question "does a
shared organization still help when unrelated kernels contend for it?" is
best asked with *mixed* workloads.  Two compositions are provided:

* :func:`interleave` — CTAs from several workloads alternate in launch
  order, so their wavefronts coexist on the cores (co-scheduled kernels
  contending for the same DC-L1s);
* :func:`concatenate` — one workload's CTAs run after the other's
  (phased execution: caches warmed by phase 1 are repurposed in phase 2).

The mixed workload's timing parameters (slots, gap, mlp, request bytes)
come from the first component; mixing is address-safe because each
component keeps its own region bases but they *share* the global shared
region — pass ``isolate=True`` to offset each component's lines into a
private address partition instead (no inter-workload sharing).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.workloads.generator import CTAStream, Workload

#: Line-index stride between isolated components (far above every region).
ISOLATION_STRIDE = 1 << 32


def _clone_streams(workload: Workload, offset_lines: int) -> List[CTAStream]:
    out = []
    for s in workload.streams:
        lines = s.lines + offset_lines if offset_lines else s.lines.copy()
        out.append(CTAStream(s.cta_id, lines, s.kinds.copy()))
    return out


def _prepare(workloads: Sequence[Workload], isolate: bool) -> List[List[CTAStream]]:
    if len(workloads) < 2:
        raise ValueError("mixing needs at least two workloads")
    prepared = []
    for i, w in enumerate(workloads):
        offset = i * ISOLATION_STRIDE if isolate else 0
        prepared.append(_clone_streams(w, offset))
    return prepared


def _renumber(streams: List[CTAStream]) -> List[CTAStream]:
    for new_id, s in enumerate(streams):
        s.cta_id = new_id
    return streams


def _mixed_profile(workloads: Sequence[Workload], streams, tag: str):
    import dataclasses

    base = workloads[0].profile
    name = tag + "(" + "+".join(w.name for w in workloads) + ")"
    return dataclasses.replace(
        base,
        name=name,
        num_ctas=len(streams),
        accesses_per_cta=max(len(s) for s in streams),
    )


def interleave(workloads: Sequence[Workload], isolate: bool = False) -> Workload:
    """Alternate CTAs from each workload in launch order."""
    prepared = _prepare(workloads, isolate)
    mixed: List[CTAStream] = []
    longest = max(len(p) for p in prepared)
    for k in range(longest):
        for p in prepared:
            if k < len(p):
                mixed.append(p[k])
    streams = _renumber(mixed)
    return Workload(_mixed_profile(workloads, streams, "mix"), streams)


def concatenate(workloads: Sequence[Workload], isolate: bool = False) -> Workload:
    """Run each workload's CTAs after the previous one's."""
    prepared = _prepare(workloads, isolate)
    mixed: List[CTAStream] = [s for p in prepared for s in p]
    streams = _renumber(mixed)
    return Workload(_mixed_profile(workloads, streams, "seq"), streams)


def footprint_overlap(a: Workload, b: Workload) -> float:
    """Jaccard overlap of two workloads' line footprints (diagnostics)."""
    la = np.unique(np.concatenate([s.lines for s in a.streams]))
    lb = np.unique(np.concatenate([s.lines for s in b.streams]))
    inter = np.intersect1d(la, lb, assume_unique=True).size
    union = la.size + lb.size - inter
    return inter / union if union else 0.0
